//! Multi-model serving through the full `fqbert-serve` stack: train once,
//! quantize to two bit-widths, persist artifacts, load them back through a
//! plain-text registry config, spin up the line-delimited-JSON TCP server
//! in-process, hammer it with concurrent clients and print the comparison
//! table — then shut down gracefully over the wire.
//!
//! Run with `cargo run -p fqbert-bench --example serve_batch --release`
//! (set `FQBERT_QUICK=1` for a fast smoke run).

use fqbert_bench::{markdown_table, ExperimentConfig};
use fqbert_quant::QuantConfig;
use fqbert_runtime::BackendKind;
use fqbert_serve::{registry, BatchPolicy, Client, ModelRegistry, Server, ServerConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::from_env();
    println!("== fqbert-serve: one process, many models, dynamic batching ==\n");

    // Train + QAT-fine-tune once; quantize twice (w4 via the QAT hook, w8
    // via post-training calibration).
    println!("training float baseline on synthetic SST-2 ...");
    let mut task = config.train_sst2();
    println!("quantization-aware fine-tuning (w4/a8) ...");
    let hook = config.qat_finetune(&mut task, QuantConfig::fq_bert());
    let w4_engine = task.engine_with_hook(BackendKind::Int, &hook)?;
    let w8_engine = task
        .engine_builder()
        .quant(QuantConfig::w8a8())
        .backend(BackendKind::Int)
        .build(&task.model)?;

    // Quantize once → serve many: artifacts on disk, registry from plain
    // config text (exactly what the `fqbert-serve` binary consumes).
    let dir = std::env::temp_dir();
    let w4_path = dir.join("fqbert_serve_demo_w4.fqbt");
    let w8_path = dir.join("fqbert_serve_demo_w8.fqbt");
    w4_engine.save(&w4_path)?;
    w8_engine.save(&w8_path)?;
    let registry_config = format!(
        "# task-and-bit-width routing table\n\
         sst2-w4=int:{w4}\n\
         sst2-w8=int:{w8}\n\
         sst2-sim=sim:{w4}\n",
        w4 = w4_path.display(),
        w8 = w8_path.display()
    );
    println!("registry config:\n{registry_config}");
    let registry = ModelRegistry::load(&registry::parse_config(&registry_config)?)?;

    // The server owns one dynamic-batching queue per model.
    let server = Server::spawn(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 16,
                max_delay: Duration::from_millis(2),
                max_queue: usize::MAX,
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("server listening on {addr}\n");

    let mut client = Client::connect(addr)?;
    for m in client.list_models()? {
        println!(
            "  model {name:<10} task {task:<7} backend {backend:<5} {precision} bits {bits} \
             kernel {kernel} resident {resident:.1} KiB",
            name = m.name,
            task = m.task,
            backend = m.backend,
            precision = m.precision,
            bits = m.bits,
            kernel = m.kernel,
            resident = m.resident_bytes as f64 / 1024.0,
        );
    }
    println!();

    // Concurrent clients: every worker opens its own connection and sends
    // several requests to its model; the per-model queues merge overlapping
    // requests into shared flushes.
    let texts: &[&str] = &[
        "pos0 pos1 filler2",
        "neg0 filler1 neg3",
        "pos2 neg0 pos4",
        "neg1 neg2 filler0",
    ];
    let models = ["sst2-w4", "sst2-w8", "sst2-sim"];
    const WORKERS_PER_MODEL: usize = 3;
    const REQUESTS_PER_WORKER: usize = 4;
    let mut workers = Vec::new();
    for &model in &models {
        for _ in 0..WORKERS_PER_MODEL {
            workers.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut latency_ms = 0.0f64;
                let mut flushed = 0usize;
                let mut sim_ms = 0.0f64;
                let mut predictions = Vec::new();
                for _ in 0..REQUESTS_PER_WORKER {
                    let response = client.classify_texts(model, texts).expect("classify");
                    latency_ms += response.latency_ms;
                    flushed += response.flushed_batch;
                    if let Some(sim) = response.sim {
                        sim_ms += sim.latency_ms;
                    }
                    predictions = response.results.iter().map(|r| r.label.clone()).collect();
                }
                (model, latency_ms, flushed, sim_ms, predictions)
            }));
        }
    }

    let mut per_model: std::collections::BTreeMap<&str, (f64, usize, f64, Vec<String>)> =
        Default::default();
    for worker in workers {
        let (model, latency_ms, flushed, sim_ms, predictions) =
            worker.join().expect("client worker");
        let entry = per_model.entry(model).or_default();
        entry.0 += latency_ms;
        entry.1 += flushed;
        entry.2 += sim_ms;
        entry.3 = predictions;
    }

    let requests_per_model = WORKERS_PER_MODEL * REQUESTS_PER_WORKER;
    let mut rows = Vec::new();
    for (model, (latency_ms, flushed, sim_ms, predictions)) in &per_model {
        rows.push(vec![
            model.to_string(),
            format!("{:.2}", latency_ms / requests_per_model as f64),
            format!("{:.1}", *flushed as f64 / requests_per_model as f64),
            if *sim_ms > 0.0 {
                format!("{sim_ms:.3}")
            } else {
                "-".to_string()
            },
            predictions.join(" "),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "model",
                "avg latency ms",
                "avg flush size",
                "sim ms",
                "labels for the probe texts"
            ],
            &rows
        )
    );

    println!("dynamic batching at work (per-model queue statistics):");
    for (name, stats) in server.queue_stats() {
        println!(
            "  {name:<10} {:>3} requests, {:>3} sequences, {:>2} flushes \
             (mean {:.1} seq/flush, largest {})",
            stats.requests,
            stats.sequences,
            stats.flushes,
            stats.mean_flush(),
            stats.largest_flush
        );
    }

    // Live telemetry over the wire: the same data (and much more — queue
    // wait, flush histograms, engine timings) via `{"cmd":"stats"}`.
    println!("\nlive `stats` snapshot (per-model end-to-end latency):");
    let stats = client.stats()?;
    for &model in &models {
        if let Some(hist) = stats.histograms.get(&format!("model.{model}.request_us")) {
            println!(
                "  {model:<10} {:>3} requests, p50 {:>6.0} us, p95 {:>6.0} us, p99 {:>6.0} us",
                hist.count, hist.p50, hist.p95, hist.p99
            );
        }
    }

    // Graceful shutdown over the wire: ack first, drain, then exit.
    client.shutdown_server()?;
    server.join();
    println!("\nserver drained and stopped cleanly");

    std::fs::remove_file(&w4_path).ok();
    std::fs::remove_file(&w8_path).ok();
    Ok(())
}
