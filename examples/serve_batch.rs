//! Batched serving across every backend behind the unified runtime API:
//! build one quantized model, persist it as an artifact, reload it with no
//! float model in sight, and classify batches through the float, integer and
//! accelerator-simulated backends — with a latency/accuracy comparison.
//!
//! Run with `cargo run -p fqbert-bench --example serve_batch --release`
//! (set `FQBERT_QUICK=1` for a fast smoke run).

use fqbert_bench::{markdown_table, ExperimentConfig};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, EngineBuilder};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig::from_env();
    println!("== fqbert-runtime: one API, three backends, one artifact ==\n");

    // Train + QAT-fine-tune once.
    println!("training float baseline on synthetic SST-2 ...");
    let mut task = config.train_sst2();
    println!("quantization-aware fine-tuning (w4/a8) ...");
    let hook = config.qat_finetune(&mut task, QuantConfig::fq_bert());

    // The same builder wiring produces all three backends.
    let float_engine = task.engine_with_hook(BackendKind::Float, &hook)?;
    let int_engine = task.engine_with_hook(BackendKind::Int, &hook)?;
    let sim_engine = task.engine_with_hook(BackendKind::Sim, &hook)?;

    // Quantize once → serve many: save the artifact, reload it cold.
    let path = std::env::temp_dir().join("fqbert_serve_batch.fqbt");
    int_engine.save(&path)?;
    let served = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Int)
        .batch_size(int_engine.batch_size())
        .load(&path)?;
    println!(
        "saved + reloaded artifact: {} ({} KiB)\n",
        path.display(),
        std::fs::metadata(&path)?.len() / 1024
    );

    // The reloaded engine must agree bit-for-bit with the in-memory one.
    let probe =
        EncodedBatch::from_examples(task.dataset.dev[..task.dataset.dev.len().min(32)].to_vec());
    let in_memory = int_engine.classify_batch(&probe)?;
    let reloaded = served.classify_batch(&probe)?;
    assert_eq!(
        in_memory.logits, reloaded.logits,
        "artifact round trip must be bit-identical"
    );
    println!(
        "reloaded engine reproduces the in-memory engine bit-for-bit on {} sequences\n",
        probe.len()
    );

    // Batched classification across every backend, with timings.
    let dev = &task.dataset.dev;
    let mut rows = Vec::new();
    for (label, engine) in [
        ("float (in memory)", &float_engine),
        ("int (in memory)", &int_engine),
        ("int (from artifact)", &served),
        ("sim (in memory)", &sim_engine),
    ] {
        let start = Instant::now();
        let summary = engine.evaluate(dev)?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            label.to_string(),
            engine.backend().name().to_string(),
            engine.backend().precision().to_string(),
            format!("{:.2}", summary.accuracy),
            format!("{:.1}", wall_ms),
            match summary.simulated_latency_ms {
                Some(ms) => format!("{ms:.3}"),
                None => "-".to_string(),
            },
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "engine",
                "backend",
                "w/a",
                "accuracy %",
                "wall ms",
                "sim ms"
            ],
            &rows
        )
    );
    let cost = sim_engine.backend().cost_model().expect("sim cost model");
    println!(
        "simulated platform: {} @ {:.0} MHz ({} PUs x {} PEs, M={})",
        cost.platform,
        cost.clock_mhz,
        cost.processing_units,
        cost.pes_per_pu,
        cost.multipliers_per_bim
    );

    // Raw-text serving through the reloaded artifact.
    let texts = ["pos0 pos1 filler2", "neg0 filler1 neg3", "pos2 neg0 pos4"];
    let verdicts = served.classify_texts(&texts)?;
    println!("\nraw-text serving through the artifact engine:");
    for (text, c) in texts.iter().zip(&verdicts) {
        println!(
            "  {:>28} -> class {} (logits {:?})",
            format!("{text:?}"),
            c.prediction,
            c.logits
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
