//! Drive the bit-accurate accelerator datapath on a real quantized layer and
//! report the deployment estimates (latency, resources, power) for BERT-base.
//!
//! Run with `cargo run -p fqbert-bench --example accelerator_sim --release`.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::pe::OperandMode;
use fqbert_accel::{cycle_model, AcceleratorConfig, PowerModel, ProcessingUnit, ResourceModel};
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert, IntLinear, QatHook};
use fqbert_nlp::Example;
use fqbert_quant::{QuantConfig, Requantizer};
use fqbert_tensor::IntTensor;

/// Runs an [`IntLinear`] matrix–vector product through the PU datapath and
/// checks it against the integer reference engine.
fn run_layer_on_pu(
    layer: &IntLinear,
    x_row: &[i8],
    pu: &ProcessingUnit,
) -> (Vec<i8>, Vec<i8>, u64) {
    // Reference: the integer engine.
    let x = IntTensor::from_vec(x_row.to_vec(), &[1, x_row.len()]).expect("valid shape");
    let reference = layer.forward(&x).expect("reference forward");

    // Accelerator datapath: one weight column per PE.
    let weight = layer.weight_codes();
    let (in_features, out_features) = (layer.in_features(), layer.out_features());
    let columns: Vec<Vec<i8>> = (0..out_features)
        .map(|c| (0..in_features).map(|r| weight.row(r)[c]).collect())
        .collect();
    let effective = f64::from(layer.output_scale())
        / (f64::from(layer.input_scale()) * f64::from(layer.weight_scale()));
    let requant = Requantizer::from_scale(effective, 8).expect("valid scale");
    let (codes, cycles) = pu.matvec(
        x_row,
        &columns,
        layer.bias_codes().as_slice(),
        &requant,
        OperandMode::Act8Weight4,
    );
    (reference.as_slice().to_vec(), codes, cycles)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a small calibrated FQ-BERT so we have a real quantized layer.
    let model = BertModel::new(BertConfig::tiny(60, 24, 2), 5);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..8usize {
        let tokens = vec![2, 4 + i, 10 + i, 7, 3];
        let example = Example {
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            token_ids: tokens,
            label: 0,
        };
        let mut graph = fqbert_autograd::Graph::new();
        let bound = model.bind(&mut graph);
        bound.forward(&mut graph, &example, &mut hook)?;
    }
    let int_model = convert(&model, &hook)?;

    // Feed the first encoder layer's query projection through the PU array.
    let config = AcceleratorConfig::zcu102_n8_m16();
    let pu = ProcessingUnit::new(
        config.pes_per_pu,
        config.multipliers_per_bim,
        config.bim_variant,
    );
    let embedded = int_model.embed(&[2, 5, 11, 7, 3], &[0, 0, 0, 0, 0])?;
    let query = &int_model.layers[0].query;
    let (reference, datapath, cycles) = run_layer_on_pu(query, embedded.row(0), &pu);
    let matches = reference == datapath;
    println!(
        "PU datapath vs integer engine on the layer-0 query projection: {} ({} outputs, {} cycles on one PU)",
        if matches { "bit-exact match" } else { "MISMATCH" },
        reference.len(),
        cycles
    );
    assert!(
        matches,
        "accelerator datapath deviated from the reference engine"
    );

    // Deployment estimates for BERT-base on both boards.
    println!("\nBERT-base (12 layers, seq 128) deployment estimates:");
    let resource_model = ResourceModel::new();
    let power_model = PowerModel::new();
    for config in AcceleratorConfig::table_iii_configs() {
        let report = cycle_model::estimate_latency(&config, &EncoderShape::bert_base(), 12);
        let resources = resource_model.estimate(&config);
        println!(
            "  {} (N={}, M={}): {:.2} ms, {:.2} fps, {:.1} W, {:.2} fps/W, {} DSP, {} BRAM18K",
            config.device.name(),
            config.pes_per_pu,
            config.multipliers_per_bim,
            report.latency_ms,
            report.fps(),
            power_model.board_watts(&config),
            power_model.fps_per_watt(&config, report.latency_ms),
            resources.dsp48,
            resources.bram18k,
        );
    }
    Ok(())
}
