//! Quickstart: train a tiny BERT on synthetic SST-2, quantize it to FQ-BERT
//! (4-bit weights / 8-bit activations), run the integer-only engine, and ask
//! the accelerator model what the deployment would cost.
//!
//! Run with `cargo run -p fqbert-bench --example quickstart --release`.

use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer, TrainerConfig};
use fqbert_core::{convert, evaluate_int_model, CompressionReport, QatHook};
use fqbert_nlp::{Sst2Config, Sst2Generator};
use fqbert_perf::FpgaPlatform;
use fqbert_quant::QuantConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic data: a small SST-2-like sentiment task.
    let dataset = Sst2Generator::new(Sst2Config {
        train_size: 600,
        dev_size: 150,
        ..Sst2Config::default()
    })
    .generate(42);
    println!(
        "generated {} training / {} dev sentences over a {}-word vocabulary",
        dataset.train.len(),
        dataset.dev.len(),
        dataset.vocab_size
    );

    // 2. Train the float baseline for a few epochs.
    let mut model = BertModel::new(
        BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes),
        7,
    );
    let trainer = Trainer::new(TrainerConfig {
        epochs: 3,
        batch_size: 16,
        learning_rate: 2e-3,
        ..TrainerConfig::default()
    });
    trainer.train(&mut model, &dataset, &mut NoopHook)?;
    let float_acc = Trainer::evaluate_float(&model, &dataset.dev)?.accuracy;
    println!("float (FP32) dev accuracy: {float_acc:.2}%");

    // 3. Fine-tune with the quantization function in the loop (w4/a8).
    let quant = QuantConfig::fq_bert();
    let mut hook = QatHook::new(quant);
    let finetune = Trainer::new(TrainerConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: 5e-4,
        ..TrainerConfig::default()
    });
    finetune.train(&mut model, &dataset, &mut hook)?;

    // 4. Convert to the integer-only FQ-BERT engine and evaluate it.
    let int_model = convert(&model, &hook)?;
    let int_acc = evaluate_int_model(&int_model, &dataset.dev)?.accuracy;
    let compression = CompressionReport::for_model(&model, &quant);
    println!(
        "FQ-BERT (4-bit weights, 8-bit activations, integer-only) dev accuracy: {int_acc:.2}%"
    );
    println!(
        "encoder weight compression: {:.2}x (whole model {:.2}x)",
        compression.encoder_ratio(&model),
        compression.ratio()
    );

    // 5. What would deploying BERT-base on the FPGA cost?
    let fpga = FpgaPlatform::zcu111();
    let bert_base = BertConfig::bert_base();
    println!(
        "accelerator model (ZCU111, 12 PUs, N=16, M=16): BERT-base seq-128 latency {:.2} ms, {:.1} W, {:.2} fps/W",
        fpga.latency_ms(&bert_base, 128),
        fpga.power_watts(),
        fpga.fps_per_watt(&bert_base, 128)
    );
    Ok(())
}
