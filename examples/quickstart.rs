//! Quickstart: train a tiny BERT on synthetic SST-2, quantize it to FQ-BERT
//! (4-bit weights / 8-bit activations), and serve it through the unified
//! runtime — the same `InferenceBackend` API drives the float baseline, the
//! integer-only engine, and the accelerator-simulated engine.
//!
//! Run with `cargo run -p fqbert-bench --example quickstart --release`.

use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer, TrainerConfig};
use fqbert_core::{CompressionReport, QatHook};
use fqbert_nlp::{Sst2Config, Sst2Generator, TaskKind};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EngineBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthetic data: a small SST-2-like sentiment task.
    let dataset = Sst2Generator::new(Sst2Config {
        train_size: 600,
        dev_size: 150,
        ..Sst2Config::default()
    })
    .generate(42);
    println!(
        "generated {} training / {} dev sentences over a {}-word vocabulary",
        dataset.train.len(),
        dataset.dev.len(),
        dataset.vocab_size
    );

    // 2. Train the float baseline for a few epochs.
    let mut model = BertModel::new(
        BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes),
        7,
    );
    let trainer = Trainer::new(TrainerConfig {
        epochs: 3,
        batch_size: 16,
        learning_rate: 2e-3,
        ..TrainerConfig::default()
    });
    trainer.train(&mut model, &dataset, &mut NoopHook)?;

    // 3. Fine-tune with the quantization function in the loop (w4/a8).
    let quant = QuantConfig::fq_bert();
    let mut hook = QatHook::new(quant);
    let finetune = Trainer::new(TrainerConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: 5e-4,
        ..TrainerConfig::default()
    });
    finetune.train(&mut model, &dataset, &mut hook)?;

    // 4. One builder, three backends: float, integer-only, and the integer
    //    engine with latency charged through the FPGA cycle model.
    let builder = || {
        EngineBuilder::new(TaskKind::Sst2)
            .vocab(dataset.vocab.clone(), dataset.max_len)
            .batch_size(16)
    };
    let float_engine = builder().backend(BackendKind::Float).build(&model)?;
    let int_engine = builder()
        .backend(BackendKind::Int)
        .build_with_hook(&model, &hook)?;
    let sim_engine = builder()
        .backend(BackendKind::Sim)
        .build_with_hook(&model, &hook)?;

    for engine in [&float_engine, &int_engine, &sim_engine] {
        let summary = engine.evaluate(&dataset.dev)?;
        let backend = engine.backend();
        print!(
            "{:<6} backend ({}): dev accuracy {:.2}%",
            backend.name(),
            backend.precision(),
            summary.accuracy
        );
        match summary.simulated_latency_ms {
            Some(ms) => println!(", simulated accelerator latency {ms:.3} ms"),
            None => println!(),
        }
    }
    let compression = CompressionReport::for_model(&model, &quant);
    println!(
        "encoder weight compression: {:.2}x (whole model {:.2}x)",
        compression.encoder_ratio(&model),
        compression.ratio()
    );

    // 5. Quantize once, serve many: persist the artifact and reload it
    //    without the float model or any recalibration.
    let path = std::env::temp_dir().join("fqbert_quickstart.fqbt");
    int_engine.save(&path)?;
    let served = EngineBuilder::new(TaskKind::Sst2).load(&path)?;
    let verdicts = served.classify_texts(&["pos0 pos1 filler0", "neg0 neg2"])?;
    println!(
        "reloaded artifact ({} KiB) classifies: {:?}",
        std::fs::metadata(&path)?.len() / 1024,
        verdicts.iter().map(|c| c.prediction).collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();

    // 6. What would deploying BERT-base on the FPGA cost? Ask the sim
    //    backend's cost model (ZCU111, 12 PUs, N=16, M=16).
    let cost = sim_engine
        .backend()
        .cost_model()
        .expect("sim has a cost model");
    println!(
        "accelerator cost model: {} @ {:.0} MHz, {} PUs x {} PEs, M={}",
        cost.platform,
        cost.clock_mhz,
        cost.processing_units,
        cost.pes_per_pu,
        cost.multipliers_per_bim
    );
    Ok(())
}
