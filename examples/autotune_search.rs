//! Mixed-precision bit-width search end to end: train a tiny SST-2 model,
//! search per-site weight widths under an accuracy floor, and serve the
//! winning model through the standard engine.
//!
//! Run with `FQBERT_QUICK=1 cargo run --release --example autotune_search`.

use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_autotune::{search, Autotuner, SearchSettings};
use fqbert_bench::ExperimentConfig;
use fqbert_core::QatHook;
use fqbert_nlp::Tokenizer;
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EngineBuilder, ModelArtifact};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the float baseline (FQBERT_QUICK=1 shrinks the run).
    let experiment = ExperimentConfig::from_env();
    let task = experiment.train_sst2();
    println!("float dev accuracy: {:.2}%", task.float_accuracy);

    // 2. Calibrate activation scales on a few dev examples.
    let calib = task.dataset.dev.len().min(16);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for example in &task.dataset.dev[..calib] {
        let mut graph = Graph::new();
        let bound = task.model.bind(&mut graph);
        bound.forward(&mut graph, example, &mut hook)?;
    }

    // 3. Search: greedy descent from uniform w8 plus seeded refinement.
    let tuner = Autotuner::new(
        &task.model,
        &hook,
        task.dataset.dev.clone(),
        AcceleratorConfig::zcu111_n16_m16(),
        task.dataset.max_len,
    )?;
    let outcome = search(
        &tuner,
        &SearchSettings {
            budget: 24,
            seed: 7,
            ..SearchSettings::default()
        },
    )?;
    println!(
        "best {} — {:.2}% at {} cycles ({:.2}x vs uniform w8)",
        outcome.best.config,
        outcome.best.accuracy,
        outcome.best.cycles,
        outcome.speedup_vs_w8()
    );

    // 4. The winner is a standard artifact: save, load, serve — the
    //    registry needs no changes for mixed-precision models.
    let model = tuner.assemble(&outcome.best.config)?;
    println!("bit summary: {}", model.bit_summary());
    let tokenizer = Tokenizer::new(task.dataset.vocab.clone(), task.dataset.max_len);
    let path = std::env::temp_dir().join("fqbert_autotune_example.fqb");
    ModelArtifact::new(task.dataset.task, model, tokenizer).save(&path)?;
    let engine = EngineBuilder::new(task.dataset.task)
        .backend(BackendKind::Sim)
        .load(&path)?;
    let summary = engine.evaluate(&task.dataset.dev)?;
    println!(
        "served accuracy: {:.2}% ({} examples, simulated {:.2} ms)",
        summary.accuracy,
        summary.num_examples,
        summary.simulated_latency_ms.unwrap_or(0.0)
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
