//! Full quantization workflow on the synthetic SST-2 task: float training,
//! clip-threshold analysis, QAT fine-tuning at several bit-widths, integer
//! conversion, and a per-bit-width accuracy/compression summary.
//!
//! Run with `cargo run -p fqbert-bench --example quantize_sst2 --release`.

use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer, TrainerConfig};
use fqbert_core::{CompressionReport, QatHook};
use fqbert_nlp::{Sst2Config, Sst2Generator, TaskKind};
use fqbert_quant::{tune_clip_threshold, QuantConfig};
use fqbert_runtime::{BackendKind, EngineBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Sst2Generator::new(Sst2Config::default()).generate(7);
    let mut model = BertModel::new(
        BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes),
        3,
    );
    let trainer = Trainer::new(TrainerConfig {
        epochs: 3,
        batch_size: 16,
        learning_rate: 2e-3,
        ..TrainerConfig::default()
    });
    println!("training the float baseline on synthetic SST-2 ...");
    let history = trainer.train(&mut model, &dataset, &mut NoopHook)?;
    println!(
        "per-epoch dev accuracy: {:?}",
        history
            .dev_accuracy
            .iter()
            .map(|a| format!("{a:.1}%"))
            .collect::<Vec<_>>()
    );

    // Show what the MSE-optimal clip search does to one weight matrix.
    let example_weight = &model.encoder_layers[0].query.weight;
    for bits in [4, 2] {
        let result = tune_clip_threshold(example_weight, bits, 64)?;
        println!(
            "layer-0 query weight, {bits}-bit: tuned clip {:.4} (max |w| {:.4}), MSE {:.2e} vs {:.2e} without clipping",
            result.clip,
            example_weight.abs_max()?,
            result.mse,
            result.mse_no_clip
        );
    }

    // QAT at several weight bit-widths, evaluated with the integer engine.
    for weight_bits in [8u32, 4, 2] {
        let mut qat_model = model.clone();
        let quant = QuantConfig::fq_bert().with_weight_bits(weight_bits);
        let mut hook = QatHook::new(quant);
        let finetune = Trainer::new(TrainerConfig {
            epochs: 1,
            batch_size: 16,
            learning_rate: 5e-4,
            ..TrainerConfig::default()
        });
        finetune.train(&mut qat_model, &dataset, &mut hook)?;
        // Serve through the unified runtime: the hook's EMA scales feed the
        // integer backend directly.
        let engine = EngineBuilder::new(TaskKind::Sst2)
            .vocab(dataset.vocab.clone(), dataset.max_len)
            .backend(BackendKind::Int)
            .batch_size(16)
            .build_with_hook(&qat_model, &hook)?;
        let acc = engine.evaluate(&dataset.dev)?.accuracy;
        let compression = CompressionReport::for_model(&qat_model, &quant);
        println!(
            "w{weight_bits}/a8 integer engine: dev accuracy {acc:.2}%, encoder compression {:.2}x",
            compression.encoder_ratio(&qat_model)
        );
    }
    Ok(())
}
