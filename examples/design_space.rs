//! Design-space exploration: sweep the accelerator's (N, M) dimensions and
//! the sequence length, reporting latency, resource usage, power and energy
//! efficiency, and whether each point fits the ZCU102 / ZCU111 devices.
//!
//! Run with `cargo run -p fqbert-bench --example design_space --release`.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{cycle_model, AcceleratorConfig, FpgaDevice, PowerModel, ResourceModel};

fn main() {
    let resource_model = ResourceModel::new();
    let power_model = PowerModel::new();

    println!("== (N, M) design-space sweep — BERT-base, seq 128, 12 PUs ==\n");
    println!(
        "{:<8} {:>10} {:>8} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "(N, M)", "mults", "DSP", "latency", "power", "fps/W", "fits 102", "fits 111"
    );
    for &n in &[4usize, 8, 16, 32] {
        for &m in &[8usize, 16, 32] {
            let mut config = AcceleratorConfig::zcu102_n8_m16();
            config.pes_per_pu = n;
            config.multipliers_per_bim = m;
            let report = cycle_model::estimate_latency(&config, &EncoderShape::bert_base(), 12);
            let resources = resource_model.estimate(&config);
            let watts = power_model.board_watts(&config);
            println!(
                "{:<8} {:>10} {:>8} {:>8.2}ms {:>7.1}W {:>8.2} {:>10} {:>10}",
                format!("({n},{m})"),
                config.total_multipliers(),
                resources.dsp48,
                report.latency_ms,
                watts,
                power_model.fps_per_watt(&config, report.latency_ms),
                if resources.fits(FpgaDevice::Zcu102) {
                    "yes"
                } else {
                    "no"
                },
                if resources.fits(FpgaDevice::Zcu111) {
                    "yes"
                } else {
                    "no"
                },
            );
        }
    }

    println!("\n== Sequence-length sweep on the ZCU111 configuration ==\n");
    let config = AcceleratorConfig::zcu111_n16_m16();
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "seq", "latency", "fps", "GMAC/s"
    );
    for &seq in &[32usize, 64, 128, 256] {
        let mut shape = EncoderShape::bert_base();
        shape.seq_len = seq;
        let mut bert_like = shape;
        bert_like.seq_len = seq;
        let report = cycle_model::estimate_latency(&config, &bert_like, 12);
        println!(
            "{:>8} {:>10.2}ms {:>12.2} {:>12.1}",
            seq,
            report.latency_ms,
            report.fps(),
            report.effective_gmacs_per_sec
        );
    }
    println!(
        "\nThe published design points are (8,16) and (16,8) on ZCU102 and (16,16) on ZCU111;\n\
         the sweep shows why: larger arrays stop fitting the ZCU102's DSP budget, and beyond\n\
         (16,16) the ZCU111 becomes DSP-limited as well."
    );
}
