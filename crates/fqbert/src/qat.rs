//! Quantization-aware training hook (paper §II and §IV-A).
//!
//! [`QatHook`] plugs into the float model's forward pass
//! (`fqbert_bert::ForwardHook`):
//!
//! * every **weight** is fake-quantized to `weight_bits` with a clip
//!   threshold tuned by an MSE-optimal search (re-tuned periodically as the
//!   weights move during fine-tuning);
//! * every **activation** is observed by an exponential moving average and
//!   fake-quantized to `activation_bits` using the EMA-derived scale (Eq. 3);
//! * the attention probabilities (softmax output) and the `Add & LN` outputs
//!   are only quantized when the corresponding ablation switches of Table II
//!   are enabled;
//! * scale factors themselves are optionally rounded to an 8-bit mantissa
//!   (the "scale" row of Table II).
//!
//! After fine-tuning, the hook doubles as the calibration record: the
//! float→integer converter reads the per-site activation scales from it.

use fqbert_autograd::{FakeQuantSpec, Graph, VarId};
use fqbert_bert::{ForwardHook, Site, SiteKind};
use fqbert_quant::{tune_clip_threshold, EmaObserver, QuantConfig};
use std::collections::HashMap;

/// EMA decay used for activation observers.
const ACTIVATION_EMA_DECAY: f32 = 0.95;
/// How many hook invocations a tuned weight-clip threshold stays valid for.
const CLIP_REFRESH_INTERVAL: u64 = 64;
/// Grid resolution of the clip-threshold search.
const CLIP_SEARCH_STEPS: usize = 40;

/// Quantization-aware-training hook and calibration record.
#[derive(Debug, Clone)]
pub struct QatHook {
    config: QuantConfig,
    weight_clips: HashMap<Site, (f32, u64)>,
    observers: HashMap<Site, EmaObserver>,
    calls: u64,
    /// When `false`, weights/activations pass through unchanged but the
    /// observers keep running (pure calibration mode).
    quantize_in_forward: bool,
}

impl QatHook {
    /// Creates a hook for the given quantization configuration.
    pub fn new(config: QuantConfig) -> Self {
        Self {
            config,
            weight_clips: HashMap::new(),
            observers: HashMap::new(),
            calls: 0,
            quantize_in_forward: true,
        }
    }

    /// Creates a hook that only calibrates (observes activations) without
    /// changing the forward computation — post-training calibration mode.
    pub fn calibration_only(config: QuantConfig) -> Self {
        Self {
            quantize_in_forward: false,
            ..Self::new(config)
        }
    }

    /// The quantization configuration in effect.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }

    /// Switches fake quantization during the forward pass on or off
    /// (observers always run).
    pub fn set_quantize_in_forward(&mut self, enabled: bool) {
        self.quantize_in_forward = enabled;
    }

    /// The EMA-calibrated maximum absolute activation for a site, if that
    /// site has been observed.
    pub fn activation_range(&self, site: Site) -> Option<f32> {
        self.observers.get(&site).map(|o| o.running_max())
    }

    /// The activation scale (levels per unit) for a site at the configured
    /// activation bit-width, if calibrated.
    pub fn activation_scale(&self, site: Site) -> Option<f32> {
        let range = self.activation_range(site)?;
        if range <= 0.0 {
            return None;
        }
        let levels = ((1u32 << (self.config.activation_bits - 1)) - 1) as f32;
        Some(self.maybe_quantize_scale(levels / range))
    }

    /// Number of distinct activation sites observed so far.
    pub fn observed_sites(&self) -> usize {
        self.observers.len()
    }

    /// Rounds a scale factor to an 8-bit mantissa when the "quantize scales"
    /// ablation switch is on (Table II, second column).
    pub fn maybe_quantize_scale(&self, scale: f32) -> f32 {
        if !self.config.quantize_scales || scale <= 0.0 || !scale.is_finite() {
            return scale;
        }
        // Keep 8 significant bits of mantissa: scale = m * 2^e with m in
        // [128, 256).
        let exp = scale.log2().floor() as i32 - 7;
        let mantissa = (scale / f32::powi(2.0, exp)).round();
        mantissa * f32::powi(2.0, exp)
    }

    /// Which bit-width (if any) an activation site should be quantized to
    /// under the current ablation switches.
    fn activation_bits_for(&self, site: Site) -> Option<u32> {
        let cfg = &self.config;
        match site.kind {
            SiteKind::AttentionProbs | SiteKind::AttentionScores => {
                cfg.quantize_softmax.then_some(cfg.softmax_bits)
            }
            SiteKind::LayerNormOutput | SiteKind::EmbeddingOutput => {
                cfg.quantize_layer_norm.then_some(cfg.layer_norm_bits)
            }
            SiteKind::Logits => None,
            _ => cfg
                .quantize_weights_activations
                .then_some(cfg.activation_bits),
        }
    }

    /// Whether a weight site should be quantized, and to how many bits.
    fn weight_bits_for(&self, site: Site) -> Option<u32> {
        if !self.config.quantize_weights_activations {
            return None;
        }
        match site.kind {
            // The embedding tables stay on the CPU in the paper's system
            // partitioning, but their outputs are still quantized; we keep
            // the tables themselves in float.
            SiteKind::EmbeddingTable => None,
            _ => Some(self.config.weight_bits),
        }
    }

    fn tuned_clip(&mut self, graph: &Graph, id: VarId, site: Site, bits: u32) -> Option<f32> {
        if !self.config.tune_weight_clip {
            return None;
        }
        if let Some(&(clip, stamp)) = self.weight_clips.get(&site) {
            if self.calls.saturating_sub(stamp) < CLIP_REFRESH_INTERVAL {
                return Some(clip);
            }
        }
        let tensor = graph.value(id);
        let clip = tune_clip_threshold(tensor, bits, CLIP_SEARCH_STEPS)
            .ok()
            .map(|r| r.clip)?;
        self.weight_clips.insert(site, (clip, self.calls));
        Some(clip)
    }
}

impl ForwardHook for QatHook {
    fn on_weight(&mut self, graph: &mut Graph, id: VarId, site: Site) -> VarId {
        self.calls += 1;
        let Some(bits) = self.weight_bits_for(site) else {
            return id;
        };
        if !self.quantize_in_forward {
            return id;
        }
        let clip = self.tuned_clip(graph, id, site, bits);
        let spec = match clip {
            Some(c) => FakeQuantSpec::with_clip(bits, c),
            None => FakeQuantSpec::no_clip(bits),
        };
        graph.fake_quant(id, spec).unwrap_or(id)
    }

    fn on_activation(&mut self, graph: &mut Graph, id: VarId, site: Site) -> VarId {
        self.calls += 1;
        // Always observe, even in calibration-only mode.
        let value_max = graph.value(id).abs_max().unwrap_or(0.0);
        self.observers
            .entry(site)
            .or_insert_with(|| EmaObserver::new(ACTIVATION_EMA_DECAY))
            .observe_value(value_max);

        let Some(bits) = self.activation_bits_for(site) else {
            return id;
        };
        if !self.quantize_in_forward {
            return id;
        }
        let Some(range) = self.activation_range(site).filter(|&r| r > 0.0) else {
            return id;
        };
        // Quantizing the scale factor (Table II, "scale" column) slightly
        // perturbs the effective clip used during training.
        let levels = ((1u32 << (bits - 1)) - 1) as f32;
        let scale = self.maybe_quantize_scale(levels / range);
        let effective_range = levels / scale;
        let spec = FakeQuantSpec::with_clip(bits, effective_range);
        graph.fake_quant(id, spec).unwrap_or(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer};
    use fqbert_nlp::{Example, Sst2Config, Sst2Generator};

    fn example(tokens: &[usize]) -> Example {
        Example {
            token_ids: tokens.to_vec(),
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            label: 0,
        }
    }

    #[test]
    fn hook_observes_every_activation_site_once_per_layer_kind() {
        let model = BertModel::new(BertConfig::tiny(40, 16, 2), 1);
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let mut hook = QatHook::new(QuantConfig::fq_bert());
        bound
            .forward(&mut graph, &example(&[2, 5, 9, 3]), &mut hook)
            .unwrap();
        // Embedding output, logits, and per-layer sites must all be present.
        assert!(hook
            .activation_range(Site::global(SiteKind::EmbeddingOutput))
            .is_some());
        assert!(hook
            .activation_range(Site::layer(0, SiteKind::AttentionScores))
            .is_some());
        assert!(hook
            .activation_range(Site::layer(1, SiteKind::FfnHidden))
            .is_some());
        assert!(hook.observed_sites() > 10);
    }

    #[test]
    fn quantized_forward_stays_close_to_float_forward() {
        let model = BertModel::new(BertConfig::tiny(40, 16, 2), 2);
        let ex = example(&[2, 7, 11, 6, 3]);

        let run_float = || {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, &ex, &mut NoopHook).unwrap();
            graph.value(logits).clone()
        };
        let float_logits = run_float();

        // Calibrate the hook once, then run with quantization enabled.
        let mut hook = QatHook::new(QuantConfig::w8a8());
        for _ in 0..3 {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound.forward(&mut graph, &ex, &mut hook).unwrap();
        }
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        let logits = bound.forward(&mut graph, &ex, &mut hook).unwrap();
        let q_logits = graph.value(logits).clone();
        assert!(
            float_logits.allclose(&q_logits, 0.35),
            "8/8 fake-quantized logits {q_logits} deviate too far from float {float_logits}"
        );
    }

    #[test]
    fn calibration_only_mode_does_not_change_forward() {
        let model = BertModel::new(BertConfig::tiny(40, 16, 2), 3);
        let ex = example(&[2, 8, 3]);
        let mut calib = QatHook::calibration_only(QuantConfig::fq_bert());
        let run = |hook: &mut dyn ForwardHook| {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, &ex, hook).unwrap();
            graph.value(logits).clone()
        };
        let float_logits = run(&mut NoopHook);
        let calib_logits = run(&mut calib);
        assert_eq!(float_logits, calib_logits);
        assert!(calib.observed_sites() > 0);
    }

    #[test]
    fn scale_quantization_keeps_eight_significant_bits() {
        let hook = QatHook::new(QuantConfig::fq_bert());
        for &s in &[0.0123f32, 1.7, 200.0, 3.3e-4] {
            let q = hook.maybe_quantize_scale(s);
            let rel = (q - s).abs() / s;
            assert!(rel < 1.0 / 256.0 + 1e-6, "scale {s} quantized to {q}");
        }
        let mut cfg = QuantConfig::fq_bert();
        cfg.quantize_scales = false;
        let hook = QatHook::new(cfg);
        assert_eq!(hook.maybe_quantize_scale(0.37), 0.37);
    }

    #[test]
    fn qat_fine_tuning_recovers_accuracy() {
        // End-to-end miniature of the paper's procedure: train float, then
        // fine-tune with the quantizer in the loop; QAT accuracy should stay
        // within a few points of the float accuracy.
        let dataset = Sst2Generator::new(Sst2Config {
            train_size: 240,
            dev_size: 60,
            sentiment_words: 6,
            neutral_words: 10,
            min_words: 3,
            max_words: 6,
            negation_prob: 0.0,
            label_noise: 0.0,
            max_len: 12,
        })
        .generate(5);
        let mut model = BertModel::new(
            BertConfig {
                hidden: 32,
                layers: 1,
                heads: 2,
                intermediate: 64,
                ..BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes)
            },
            9,
        );
        let trainer = Trainer::new(fqbert_bert::TrainerConfig {
            epochs: 5,
            batch_size: 8,
            learning_rate: 3e-3,
            seed: 1,
            max_train_examples: None,
        });
        trainer.train(&mut model, &dataset, &mut NoopHook).unwrap();
        let float_acc = Trainer::evaluate_float(&model, &dataset.dev)
            .unwrap()
            .accuracy;

        let mut qat_hook = QatHook::new(QuantConfig::fq_bert());
        let finetune = Trainer::new(fqbert_bert::TrainerConfig {
            epochs: 2,
            batch_size: 8,
            learning_rate: 1e-3,
            seed: 2,
            max_train_examples: None,
        });
        finetune.train(&mut model, &dataset, &mut qat_hook).unwrap();
        let qat_acc = Trainer::evaluate(&model, &dataset.dev, &mut qat_hook)
            .unwrap()
            .accuracy;
        assert!(
            qat_acc >= float_acc - 12.0,
            "QAT accuracy {qat_acc}% collapsed relative to float {float_acc}%"
        );
    }
}
