//! FQ-BERT: the fully quantized BERT of the paper (its primary algorithmic
//! contribution).
//!
//! The pipeline mirrors the paper's §II and §IV-A:
//!
//! 1. Train the float BERT baseline (`fqbert-bert`) on a task.
//! 2. Fine-tune it **with the quantization function in the loop** using
//!    [`qat::QatHook`], which fake-quantizes every weight, observes every
//!    activation with an EMA, and honours the per-part ablation switches of
//!    Table II.
//! 3. [`convert::convert`] the calibrated model into an [`IntBertModel`]
//!    whose encoder runs on integers only: int4/int8 weights, int8
//!    activations, int32 biases and accumulators, fixed-point requantization,
//!    a 256-entry LUT softmax and a fixed-point layer norm.
//! 4. Evaluate accuracy ([`eval`]) and model size ([`compression`]).
//!
//! The integer engine is also the functional reference for the accelerator
//! simulator in `fqbert-accel`: both consume the same [`IntBertModel`].

pub mod compression;
pub mod convert;
pub mod error;
pub mod eval;
pub mod int_model;
pub mod qat;

pub use compression::CompressionReport;
pub use convert::{convert, convert_mixed};
pub use error::FqBertError;
pub use eval::{evaluate_int_model, evaluate_with_hook};
pub use int_model::{IntBertModel, IntEncoderLayer, IntLinear};
pub use qat::QatHook;

/// Convenience result alias for FQ-BERT operations.
pub type Result<T> = std::result::Result<T, FqBertError>;
