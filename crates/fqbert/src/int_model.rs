//! The integer-only FQ-BERT inference engine.
//!
//! Following the paper's system partitioning (§III-A), the embedding lookup
//! and the small task head run in floating point "on the CPU", while the
//! whole encoder stack runs on integers only — the part the FPGA accelerator
//! executes:
//!
//! * weights are int4/int8 codes, activations int8 codes, biases int32;
//! * every matrix multiply accumulates in int32 and is requantized back to
//!   int8 with a fixed-point [`Requantizer`] (Eq. 5);
//! * softmax uses the 256-entry [`SoftmaxLut`] with max-subtraction;
//! * `Add & LN` uses the fixed-point [`QuantizedLayerNorm`];
//! * GELU uses a 256-entry int8→int8 lookup table (the paper fuses it with
//!   FFN1; a table is the standard HLS realisation).
//!
//! The engine is the functional reference executed by the accelerator
//! simulator in `fqbert-accel`.

use crate::{FqBertError, Result};
use fqbert_bert::BertConfig;
use fqbert_quant::{
    quantize_bias, LayerBits, QuantParams, QuantizedLayerNorm, Requantizer, SoftmaxLut,
};
use fqbert_tensor::gemm::{gemm_i8_requant, GemmScratch, PackedWeights, RequantParams, MAX_K};
use fqbert_tensor::ops::{argmax_slice, gelu_scalar};
use fqbert_tensor::{unpack_i4, IntTensor, Tensor};
use std::sync::{Arc, OnceLock};

/// Output levels used for quantized attention probabilities.
const PROB_LEVELS: u32 = 255;

/// Where a layer's weight codes come from.
///
/// Eager layers (quantized from float or reassembled from parts) own their
/// codes outright. Zero-copy layers instead hold a shared reference into the
/// raw artifact byte buffer — the v2 on-disk encoding — and materialize GEMM
/// panels (and, only if asked, unpacked codes) on first use, straight from
/// the encoded bytes.
#[derive(Debug, Clone)]
enum WeightSource {
    /// Codes supplied at construction; both caches are pre-filled.
    Eager,
    /// Nibble-packed v2 bytes (`weight_bits ≤ 4`): two codes per byte,
    /// row-major, low nibble first, at `offset` in the shared buffer.
    V2Nibble { bytes: Arc<[u8]>, offset: usize },
    /// Raw `i8`-as-`u8` v2 bytes (`weight_bits > 4`), row-major, at
    /// `offset` in the shared buffer.
    V2Wide { bytes: Arc<[u8]>, offset: usize },
}

/// A fully quantized dense layer: int8 weight codes, int32 bias, fixed-point
/// requantization to int8 outputs.
///
/// The weight matrix is packed into the blocked panel layout of
/// [`fqbert_tensor::gemm`], so every forward pass runs the cache-friendly
/// kernel with the bias add and requantization fused into its epilogue.
/// Low-bit layers (`weight_bits ≤ 4`, i.e. w4/w2 configs) pack into nibble
/// panels that the SIMD kernels decode in-register — a quarter of the
/// resident panel bytes, with no unpack-to-i16 copy.
///
/// Layers built eagerly ([`IntLinear::from_float`],
/// [`IntLinear::from_quantized`]) pack at construction. Layers built from a
/// shared artifact buffer ([`IntLinear::from_v2_bytes`]) defer both the
/// panels and the unpacked codes until first use; all inputs are validated
/// at construction so deferred materialization cannot fail. Clones share the
/// lazily materialized state, so cloning a loaded model does not duplicate
/// panel storage.
// fqlint::allow(float-escape): the stored scales are per-tensor calibration
// metadata carried for conversion and inspection; `forward` is integer-only.
#[derive(Debug, Clone)]
pub struct IntLinear {
    source: WeightSource,
    /// `[in_features, out_features]`, known without materialization.
    dims: [usize; 2],
    weight: Arc<OnceLock<IntTensor<i8>>>,
    packed: Arc<OnceLock<PackedWeights>>,
    bias: IntTensor<i32>,
    weight_scale: f32,
    input_scale: f32,
    output_scale: f32,
    weight_bits: u32,
    requant: Requantizer,
}

/// Layer equality compares the logical layer — codes, bias, scales and
/// bit-width — not the lazy-cache state, so a zero-copy load compares equal
/// to the eager load of the same artifact. Comparing codes forces
/// materialization on both sides.
impl PartialEq for IntLinear {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims
            && self.weight_bits == other.weight_bits
            && self.weight_scale == other.weight_scale
            && self.input_scale == other.input_scale
            && self.output_scale == other.output_scale
            && self.bias == other.bias
            && self.weight_codes() == other.weight_codes()
    }
}

/// Pre-fills a lazy cache slot for eagerly constructed layers.
fn once_filled<T>(value: T) -> Arc<OnceLock<T>> {
    let cell = OnceLock::new();
    let _ = cell.set(value);
    Arc::new(cell)
}

/// Builds the GEMM panels for `weight`: direct-compute nibble panels for
/// low-bit codes (`weight_bits ≤ 4` — a quarter of the wide panels'
/// resident bytes, decoded in-register by the int4 kernel path) and wide
/// `i16` panels otherwise. A low-bit layer whose codes unexpectedly exceed
/// the nibble range (e.g. a hand-edited artifact) still loads, on the wide
/// path.
fn pack_panels(weight: &IntTensor<i8>, weight_bits: u32) -> Result<PackedWeights> {
    if weight_bits <= 4 {
        if let Ok(packed) = PackedWeights::pack_nibble(weight) {
            return Ok(packed);
        }
    }
    Ok(PackedWeights::pack(weight)?)
}

impl IntLinear {
    /// Quantizes a float linear layer.
    ///
    /// `input_scale` and `output_scale` are the activation scales (levels per
    /// unit) of the layer's input and output, taken from QAT calibration.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight tensor has no dynamic range or a scale
    /// is invalid.
    // fqlint::allow(float-escape): conversion-time boundary — float weights
    // enter here once and leave as integer codes plus a fixed-point requant.
    pub fn from_float(
        weight: &Tensor,
        bias: &Tensor,
        weight_bits: u32,
        weight_clip: Option<f32>,
        input_scale: f32,
        output_scale: f32,
    ) -> Result<Self> {
        let wp = QuantParams::for_weights(weight, weight_bits, weight_clip)?;
        let ap = QuantParams::new(8, input_scale)?;
        let weight_q = wp.quantize_tensor_i8(weight);
        let bias_q = quantize_bias(bias, &ap, &wp)?;
        let effective = f64::from(output_scale) / (f64::from(input_scale) * f64::from(wp.scale()));
        let requant = Requantizer::from_scale(effective, 8)?;
        let packed = pack_panels(&weight_q, weight_bits)?;
        Ok(Self {
            source: WeightSource::Eager,
            dims: [weight_q.dims()[0], weight_q.dims()[1]],
            weight: once_filled(weight_q),
            packed: once_filled(packed),
            bias: bias_q,
            weight_scale: wp.scale(),
            input_scale,
            output_scale,
            weight_bits,
            requant,
        })
    }

    /// Reassembles a quantized layer from stored parts (the inverse of the
    /// accessors below), used when loading model artifacts. The requantizer
    /// is rebuilt deterministically from the three scales, so a layer
    /// reconstructed from its own accessors is bit-identical to the original.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes are inconsistent or a scale is invalid.
    // fqlint::allow(float-escape): load-time boundary — rebuilds the layer
    // from stored codes and float scale metadata read from the artifact.
    pub fn from_quantized(
        weight: IntTensor<i8>,
        bias: IntTensor<i32>,
        weight_scale: f32,
        input_scale: f32,
        output_scale: f32,
        weight_bits: u32,
    ) -> Result<Self> {
        if weight.dims().len() != 2 || bias.numel() != weight.dims()[1] {
            return Err(FqBertError::InvalidArgument(format!(
                "weight {:?} and bias {:?} shapes are inconsistent",
                weight.dims(),
                bias.dims()
            )));
        }
        let effective =
            f64::from(output_scale) / (f64::from(input_scale) * f64::from(weight_scale));
        let requant = Requantizer::from_scale(effective, 8)?;
        let packed = pack_panels(&weight, weight_bits)?;
        Ok(Self {
            source: WeightSource::Eager,
            dims: [weight.dims()[0], weight.dims()[1]],
            weight: once_filled(weight),
            packed: once_filled(packed),
            bias,
            weight_scale,
            input_scale,
            output_scale,
            weight_bits,
            requant,
        })
    }

    /// Builds a layer over the raw v2 artifact encoding of its weight
    /// matrix, without unpacking or copying it: `bytes` is the shared
    /// artifact buffer and `offset` the start of this tensor's weight
    /// bytes — nibble-packed (two codes per byte, row-major, low nibble
    /// first) when `weight_bits ≤ 4`, raw `i8`-as-`u8` codes otherwise.
    ///
    /// GEMM panels are materialized from the encoded bytes on first forward
    /// pass (a pure nibble shuffle for low-bit layers — the codes never
    /// round-trip through `i16`); the unpacked code tensor is materialized
    /// only if [`IntLinear::weight_codes`] is called. Everything is
    /// validated here so deferred materialization cannot fail.
    ///
    /// # Errors
    ///
    /// Returns an error if the encoded region falls outside `bytes`, an
    /// odd-element nibble encoding has a nonzero trailing high nibble,
    /// `in_features` exceeds the GEMM depth bound, the bias length does not
    /// match `out_features`, or a scale is invalid.
    // fqlint::allow(float-escape): load-time boundary — rebuilds the layer
    // from encoded bytes and float scale metadata read from the artifact.
    #[allow(clippy::too_many_arguments)]
    pub fn from_v2_bytes(
        bytes: Arc<[u8]>,
        offset: usize,
        in_features: usize,
        out_features: usize,
        bias: IntTensor<i32>,
        weight_scale: f32,
        input_scale: f32,
        output_scale: f32,
        weight_bits: u32,
    ) -> Result<Self> {
        if bias.numel() != out_features {
            return Err(FqBertError::InvalidArgument(format!(
                "bias has {} entries for {} output features",
                bias.numel(),
                out_features
            )));
        }
        if in_features > MAX_K {
            return Err(FqBertError::InvalidArgument(format!(
                "in_features {in_features} exceeds the GEMM depth bound {MAX_K}"
            )));
        }
        let numel = in_features.checked_mul(out_features).ok_or_else(|| {
            FqBertError::InvalidArgument(format!(
                "weight element count {in_features}×{out_features} overflows"
            ))
        })?;
        let nibble = weight_bits <= 4;
        let encoded_len = if nibble { numel.div_ceil(2) } else { numel };
        let end = offset
            .checked_add(encoded_len)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                FqBertError::InvalidArgument(format!(
                    "weight bytes {offset}..{offset}+{encoded_len} exceed the \
                     {}-byte artifact buffer",
                    bytes.len()
                ))
            })?;
        if nibble && numel % 2 == 1 && bytes[end - 1] & 0xf0 != 0 {
            return Err(FqBertError::InvalidArgument(
                "odd-element nibble encoding has a nonzero trailing high nibble".to_string(),
            ));
        }
        let effective =
            f64::from(output_scale) / (f64::from(input_scale) * f64::from(weight_scale));
        let requant = Requantizer::from_scale(effective, 8)?;
        let source = if nibble {
            WeightSource::V2Nibble { bytes, offset }
        } else {
            WeightSource::V2Wide { bytes, offset }
        };
        Ok(Self {
            source,
            dims: [in_features, out_features],
            weight: Arc::new(OnceLock::new()),
            packed: Arc::new(OnceLock::new()),
            bias,
            weight_scale,
            input_scale,
            output_scale,
            weight_bits,
            requant,
        })
    }

    /// The GEMM panels, materializing them from the artifact bytes on first
    /// use for zero-copy layers.
    fn packed_panels(&self) -> &PackedWeights {
        self.packed.get_or_init(|| {
            let [k, n] = self.dims;
            match &self.source {
                WeightSource::Eager => unreachable!("eager layers pre-fill their panels"),
                WeightSource::V2Nibble { bytes, offset } => {
                    let enc = &bytes[*offset..*offset + (k * n).div_ceil(2)];
                    PackedWeights::from_v2_nibble_bytes(enc, k, n)
                        .expect("validated at construction")
                }
                WeightSource::V2Wide { bytes, offset } => {
                    let enc = &bytes[*offset..*offset + k * n];
                    PackedWeights::pack_wide_from_bytes(enc, k, n)
                        .expect("validated at construction")
                }
            }
        })
    }

    /// Weight codes (row-major `[in, out]`), materializing them from the
    /// artifact bytes on first use for zero-copy layers. The forward path
    /// never calls this — it runs on the packed panels; prefer
    /// [`IntLinear::weight_dims`] for shape checks.
    pub fn weight_codes(&self) -> &IntTensor<i8> {
        self.weight.get_or_init(|| {
            let [k, n] = self.dims;
            let codes = match &self.source {
                WeightSource::Eager => unreachable!("eager layers pre-fill their codes"),
                WeightSource::V2Nibble { bytes, offset } => {
                    let enc = &bytes[*offset..*offset + (k * n).div_ceil(2)];
                    unpack_i4(enc, k * n).expect("validated at construction")
                }
                WeightSource::V2Wide { bytes, offset } => bytes[*offset..*offset + k * n]
                    .iter()
                    .map(|&b| b as i8)
                    .collect(),
            };
            IntTensor::from_vec(codes, &[k, n]).expect("validated at construction")
        })
    }

    /// Weight matrix shape `[in_features, out_features]`, available without
    /// materializing the codes.
    pub fn weight_dims(&self) -> [usize; 2] {
        self.dims
    }

    /// Bytes of private weight storage currently resident for this layer:
    /// materialized GEMM panels, materialized code tensors and the int32
    /// bias. The shared artifact byte buffer zero-copy layers borrow from is
    /// deliberately excluded — it is counted once per model at the
    /// engine/registry level, not once per layer.
    pub fn resident_bytes(&self) -> usize {
        let panels = self.packed.get().map_or(0, PackedWeights::resident_bytes);
        let codes = self.weight.get().map_or(0, IntTensor::numel);
        panels + codes + self.bias.numel() * std::mem::size_of::<i32>()
    }

    /// Bias codes.
    pub fn bias_codes(&self) -> &IntTensor<i32> {
        &self.bias
    }

    /// Weight bit-width used for storage accounting.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Activation scale expected at the input.
    // fqlint::allow(float-escape): scale-metadata accessor for conversion
    // and artifact serialization; not on the forward path.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Activation scale produced at the output.
    // fqlint::allow(float-escape): scale-metadata accessor for conversion
    // and artifact serialization; not on the forward path.
    pub fn output_scale(&self) -> f32 {
        self.output_scale
    }

    /// Weight scale (levels per unit).
    // fqlint::allow(float-escape): scale-metadata accessor for conversion
    // and artifact serialization; not on the forward path.
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.dims[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.dims[1]
    }

    /// Integer forward pass: `requant(x · W + b)`, via the blocked kernel
    /// with a one-shot scratch buffer. Prefer
    /// [`IntLinear::forward_with_scratch`] when running many projections so
    /// the packing buffer is reused.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width does not match the layer.
    pub fn forward(&self, x: &IntTensor<i8>) -> Result<IntTensor<i8>> {
        self.forward_with_scratch(x, &mut GemmScratch::new())
    }

    /// Integer forward pass through the blocked GEMM kernel: the packed
    /// weight panels (built at construction for eager layers, materialized
    /// from the artifact bytes on first use for zero-copy layers),
    /// activations packed into `scratch`, and the bias add + fixed-point
    /// requantization fused into the kernel's SIMD epilogue. Bit-identical
    /// to [`IntLinear::forward_naive`] (the property tests pin this).
    ///
    /// # Errors
    ///
    /// Returns an error if the input width does not match the layer.
    pub fn forward_with_scratch(
        &self,
        x: &IntTensor<i8>,
        scratch: &mut GemmScratch,
    ) -> Result<IntTensor<i8>> {
        let params = RequantParams {
            multiplier: self.requant.multiplier(),
            shift: self.requant.shift(),
            clamp: self.requant.out_max().min(127),
        };
        let out = gemm_i8_requant(
            x,
            self.packed_panels(),
            self.bias.as_slice(),
            params,
            scratch,
        )?;
        Ok(out)
    }

    /// The naive reference datapath this layer used before the blocked
    /// kernel: `matmul_i32` followed by a scalar per-element requantize.
    /// Kept as the bit-exactness oracle for tests and benchmarks — the
    /// blocked [`IntLinear::forward`] must produce identical codes.
    ///
    /// # Errors
    ///
    /// Returns an error if the input width does not match the layer.
    pub fn forward_naive(&self, x: &IntTensor<i8>) -> Result<IntTensor<i8>> {
        let acc = x.matmul_i32(self.weight_codes())?;
        let (rows, cols) = acc.as_matrix_dims()?;
        let mut out = IntTensor::<i8>::zeros(&[rows, cols]);
        for r in 0..rows {
            for c in 0..cols {
                let with_bias = i64::from(acc.row(r)[c]) + i64::from(self.bias.as_slice()[c]);
                let code = self.requant.apply(with_bias);
                out.as_mut_slice()[r * cols + c] = code.clamp(-127, 127) as i8;
            }
        }
        Ok(out)
    }
}

/// 256-entry int8→int8 GELU lookup table.
// fqlint::allow(float-escape): the stored scales are calibration metadata;
// `apply` is a pure int8 table lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct IntGelu {
    table: Vec<i8>,
    input_scale: f32,
    output_scale: f32,
}

impl IntGelu {
    /// Builds a GELU table mapping int8 codes at `input_scale` to int8 codes
    /// at `output_scale`.
    // fqlint::allow(float-escape): construction-time boundary — the table is
    // built once from float GELU; inference only indexes it.
    pub fn new(input_scale: f32, output_scale: f32) -> Self {
        let table = (-128i32..=127)
            .map(|code| {
                let x = code as f32 / input_scale;
                (gelu_scalar(x) * output_scale).round().clamp(-127.0, 127.0) as i8
            })
            .collect();
        Self {
            table,
            input_scale,
            output_scale,
        }
    }

    /// Applies the table to one code.
    pub fn apply(&self, code: i8) -> i8 {
        self.table[(code as i32 + 128) as usize]
    }

    /// Applies the table element-wise.
    pub fn apply_tensor(&self, x: &IntTensor<i8>) -> IntTensor<i8> {
        let data = x.as_slice().iter().map(|&c| self.apply(c)).collect();
        IntTensor::from_vec(data, x.dims()).expect("shape preserved")
    }

    /// Output activation scale.
    // fqlint::allow(float-escape): scale-metadata accessor; not on the
    // lookup path.
    pub fn output_scale(&self) -> f32 {
        self.output_scale
    }
}

/// One fully quantized encoder layer.
// fqlint::allow(float-escape): the per-tensor scale fields are calibration
// metadata carried for serialization and chaining; `forward` is integer-only.
#[derive(Debug, Clone, PartialEq)]
pub struct IntEncoderLayer {
    /// Query projection (8×4-bit matrix–vector work on the accelerator).
    pub query: IntLinear,
    /// Key projection.
    pub key: IntLinear,
    /// Value projection.
    pub value: IntLinear,
    /// Attention output projection.
    pub attn_output: IntLinear,
    /// First FFN projection.
    pub ffn1: IntLinear,
    /// Second FFN projection.
    pub ffn2: IntLinear,
    gelu: IntGelu,
    score_requant: Requantizer,
    score_scale: f32,
    softmax: SoftmaxLut,
    context_requant: Requantizer,
    attn_layer_norm: QuantizedLayerNorm,
    ffn_layer_norm: QuantizedLayerNorm,
    heads: usize,
    input_scale: f32,
    q_scale: f32,
    k_scale: f32,
    v_scale: f32,
    attn_out_scale: f32,
    ln_out_scale: f32,
    ffn_out_scale: f32,
}

/// Scales needed to build one integer encoder layer (taken from QAT
/// calibration by the converter).
// fqlint::allow(float-escape): pure calibration metadata — the float scales
// QAT hands to the converter; never read during integer inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerScales {
    /// Scale of the activations entering the layer.
    pub input: f32,
    /// Scale of the query projection output.
    pub q: f32,
    /// Scale of the key projection output.
    pub k: f32,
    /// Scale of the value projection output.
    pub v: f32,
    /// Scale of the attention scores (`QKᵀ/√d`).
    pub scores: f32,
    /// Scale of the attention output projection.
    pub attn_output: f32,
    /// Scale of the `Add & LN` outputs.
    pub layer_norm: f32,
    /// Scale of the FFN hidden activation (post-GELU).
    pub ffn_hidden: f32,
    /// Scale of the FFN output projection.
    pub ffn_output: f32,
}

impl IntEncoderLayer {
    /// Quantizes one float encoder layer using calibrated activation scales.
    ///
    /// # Errors
    ///
    /// Returns an error if any scale is invalid or a weight has no range.
    // fqlint::allow(float-escape): conversion-time boundary from float QAT
    // parameters to the integer layer.
    #[allow(clippy::too_many_arguments)]
    pub fn from_float(
        layer: &fqbert_bert::layers::EncoderLayerParams,
        heads: usize,
        head_dim: usize,
        weight_bits: u32,
        tune_clip: bool,
        scales: &LayerScales,
        layer_norm_eps: f32,
    ) -> Result<Self> {
        Self::from_float_mixed(
            layer,
            heads,
            head_dim,
            &LayerBits::uniform(weight_bits),
            tune_clip,
            scales,
            layer_norm_eps,
        )
    }

    /// Quantizes one float encoder layer with per-site weight bit-widths
    /// (the mixed-precision counterpart of [`IntEncoderLayer::from_float`]).
    /// Clip tuning, when enabled, is performed per site at that site's
    /// width.
    ///
    /// # Errors
    ///
    /// Returns an error if any scale is invalid, a weight has no range, or
    /// `bits` contains an unsupported width.
    // fqlint::allow(float-escape): conversion-time boundary — folds float
    // scales into requantizers and LUTs; the built layer is integer-only.
    #[allow(clippy::too_many_arguments)]
    pub fn from_float_mixed(
        layer: &fqbert_bert::layers::EncoderLayerParams,
        heads: usize,
        head_dim: usize,
        bits: &LayerBits,
        tune_clip: bool,
        scales: &LayerScales,
        layer_norm_eps: f32,
    ) -> Result<Self> {
        bits.validate().map_err(FqBertError::InvalidArgument)?;
        let clip = |w: &Tensor, weight_bits: u32| -> Result<Option<f32>> {
            if tune_clip {
                Ok(Some(
                    fqbert_quant::tune_clip_threshold(w, weight_bits, 40)?.clip,
                ))
            } else {
                Ok(None)
            }
        };
        let query = IntLinear::from_float(
            &layer.query.weight,
            &layer.query.bias,
            bits.q,
            clip(&layer.query.weight, bits.q)?,
            scales.input,
            scales.q,
        )?;
        let key = IntLinear::from_float(
            &layer.key.weight,
            &layer.key.bias,
            bits.k,
            clip(&layer.key.weight, bits.k)?,
            scales.input,
            scales.k,
        )?;
        let value = IntLinear::from_float(
            &layer.value.weight,
            &layer.value.bias,
            bits.v,
            clip(&layer.value.weight, bits.v)?,
            scales.input,
            scales.v,
        )?;
        // The attention context is a convex combination of V rows, so reusing
        // the V scale for the context keeps the code range sound.
        let attn_output = IntLinear::from_float(
            &layer.attn_output.weight,
            &layer.attn_output.bias,
            bits.attn_output,
            clip(&layer.attn_output.weight, bits.attn_output)?,
            scales.v,
            scales.attn_output,
        )?;
        let ffn1 = IntLinear::from_float(
            &layer.ffn1.weight,
            &layer.ffn1.bias,
            bits.ffn1,
            clip(&layer.ffn1.weight, bits.ffn1)?,
            scales.layer_norm,
            scales.ffn_hidden,
        )?;
        let ffn2 = IntLinear::from_float(
            &layer.ffn2.weight,
            &layer.ffn2.bias,
            bits.ffn2,
            clip(&layer.ffn2.weight, bits.ffn2)?,
            scales.ffn_hidden,
            scales.ffn_output,
        )?;
        let gelu = IntGelu::new(scales.ffn_hidden, scales.ffn_hidden);

        // Attention scores: real = acc / (s_q · s_k · √d); codes at s_scores.
        let score_effective = f64::from(scales.scores)
            / (f64::from(scales.q) * f64::from(scales.k) * (head_dim as f64).sqrt());
        let score_requant = Requantizer::from_scale(score_effective, 8)?;
        let softmax = SoftmaxLut::new(scales.scores, PROB_LEVELS)?;
        // Attention context: real = acc / (PROB_LEVELS · s_v); codes at s_v,
        // so the effective requantization scale is scale-free.
        let context_requant = Requantizer::from_scale(1.0 / f64::from(PROB_LEVELS), 8)?;

        let attn_layer_norm = QuantizedLayerNorm::from_float(
            layer.attn_layer_norm.gamma.as_slice(),
            layer.attn_layer_norm.beta.as_slice(),
            layer_norm_eps,
        )?;
        let ffn_layer_norm = QuantizedLayerNorm::from_float(
            layer.ffn_layer_norm.gamma.as_slice(),
            layer.ffn_layer_norm.beta.as_slice(),
            layer_norm_eps,
        )?;
        Ok(Self {
            query,
            key,
            value,
            attn_output,
            ffn1,
            ffn2,
            gelu,
            score_requant,
            score_scale: scales.scores,
            softmax,
            context_requant,
            attn_layer_norm,
            ffn_layer_norm,
            heads,
            input_scale: scales.input,
            q_scale: scales.q,
            k_scale: scales.k,
            v_scale: scales.v,
            attn_out_scale: scales.attn_output,
            ln_out_scale: scales.layer_norm,
            ffn_out_scale: scales.ffn_output,
        })
    }

    /// Reassembles an encoder layer from quantized parts (the inverse of the
    /// accessors on this type), used when loading model artifacts.
    ///
    /// All derived state (GELU table, softmax LUT, requantizers) is rebuilt
    /// deterministically from `scales`, exactly as
    /// [`IntEncoderLayer::from_float`] builds it, so a layer reconstructed
    /// from its own accessors computes bit-identical outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if a scale is invalid.
    // fqlint::allow(float-escape): load-time boundary — reassembles the
    // layer from stored codes and float scale metadata.
    #[allow(clippy::too_many_arguments)]
    pub fn from_quantized_parts(
        query: IntLinear,
        key: IntLinear,
        value: IntLinear,
        attn_output: IntLinear,
        ffn1: IntLinear,
        ffn2: IntLinear,
        heads: usize,
        head_dim: usize,
        scales: &LayerScales,
        attn_layer_norm: QuantizedLayerNorm,
        ffn_layer_norm: QuantizedLayerNorm,
    ) -> Result<Self> {
        if heads == 0 || head_dim == 0 {
            return Err(FqBertError::InvalidArgument(
                "heads and head_dim must be non-zero".to_string(),
            ));
        }
        let gelu = IntGelu::new(scales.ffn_hidden, scales.ffn_hidden);
        let score_effective = f64::from(scales.scores)
            / (f64::from(scales.q) * f64::from(scales.k) * (head_dim as f64).sqrt());
        let score_requant = Requantizer::from_scale(score_effective, 8)?;
        let softmax = SoftmaxLut::new(scales.scores, PROB_LEVELS)?;
        let context_requant = Requantizer::from_scale(1.0 / f64::from(PROB_LEVELS), 8)?;
        Ok(Self {
            query,
            key,
            value,
            attn_output,
            ffn1,
            ffn2,
            gelu,
            score_requant,
            score_scale: scales.scores,
            softmax,
            context_requant,
            attn_layer_norm,
            ffn_layer_norm,
            heads,
            input_scale: scales.input,
            q_scale: scales.q,
            k_scale: scales.k,
            v_scale: scales.v,
            attn_out_scale: scales.attn_output,
            ln_out_scale: scales.layer_norm,
            ffn_out_scale: scales.ffn_output,
        })
    }

    /// The calibrated activation scales this layer was built from.
    pub fn scales(&self) -> LayerScales {
        LayerScales {
            input: self.input_scale,
            q: self.q_scale,
            k: self.k_scale,
            v: self.v_scale,
            scores: self.score_scale,
            attn_output: self.attn_out_scale,
            layer_norm: self.ln_out_scale,
            ffn_hidden: self.gelu.output_scale(),
            ffn_output: self.ffn_out_scale,
        }
    }

    /// The weight bit-widths of the six matrix sites of this layer.
    pub fn weight_bit_widths(&self) -> LayerBits {
        LayerBits {
            q: self.query.weight_bits(),
            k: self.key.weight_bits(),
            v: self.value.weight_bits(),
            attn_output: self.attn_output.weight_bits(),
            ffn1: self.ffn1.weight_bits(),
            ffn2: self.ffn2.weight_bits(),
        }
    }

    /// Bytes of private weight storage currently resident across this
    /// layer's six projections (see [`IntLinear::resident_bytes`]).
    pub fn resident_bytes(&self) -> usize {
        [
            &self.query,
            &self.key,
            &self.value,
            &self.attn_output,
            &self.ffn1,
            &self.ffn2,
        ]
        .iter()
        .map(|l| l.resident_bytes())
        .sum()
    }

    /// The `Add & LN` parameters of the attention residual.
    pub fn attn_layer_norm(&self) -> &QuantizedLayerNorm {
        &self.attn_layer_norm
    }

    /// The `Add & LN` parameters of the FFN residual.
    pub fn ffn_layer_norm(&self) -> &QuantizedLayerNorm {
        &self.ffn_layer_norm
    }

    /// Scale of the activations produced by this layer.
    // fqlint::allow(float-escape): scale-metadata accessor used to chain
    // layers at conversion time and dequantize the classifier input.
    pub fn output_scale(&self) -> f32 {
        self.ln_out_scale
    }

    /// Scale of the activations expected at the input of this layer.
    // fqlint::allow(float-escape): scale-metadata accessor for conversion
    // and artifact serialization.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Integer forward pass over a `[seq, hidden]` tensor of int8 codes at
    /// this layer's input scale.
    ///
    /// # Errors
    ///
    /// Returns an error on shape inconsistencies.
    pub fn forward(&self, x: &IntTensor<i8>) -> Result<IntTensor<i8>> {
        let (seq, _hidden) = x.as_matrix_dims()?;
        self.forward_batch(x, &[seq])
    }

    /// Integer forward pass over a batch of sequences packed row-wise into a
    /// `[Σ seq_lens, hidden]` tensor, with a one-shot GEMM scratch buffer.
    ///
    /// # Errors
    ///
    /// As for [`IntEncoderLayer::forward_batch_with_scratch`].
    pub fn forward_batch(&self, x: &IntTensor<i8>, seq_lens: &[usize]) -> Result<IntTensor<i8>> {
        self.forward_batch_with_scratch(x, seq_lens, &mut GemmScratch::new())
    }

    /// Integer forward pass over a batch of sequences packed row-wise into a
    /// `[Σ seq_lens, hidden]` tensor.
    ///
    /// The linear projections (Q/K/V, attention output, both FFN matrices)
    /// run as single blocked integer GEMMs over the whole pack — the
    /// batching win — while attention and `Add & LN` are applied per
    /// sequence. All six projections share `scratch`, which the engine also
    /// reuses across every encoder layer of a forward pass. For a single
    /// segment this is bit-identical to [`IntEncoderLayer::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error if `seq_lens` does not sum to the number of rows,
    /// contains a zero-length sequence (an all-padding attention mask must
    /// be rejected before attention, which is undefined over zero tokens),
    /// or on shape inconsistencies.
    pub fn forward_batch_with_scratch(
        &self,
        x: &IntTensor<i8>,
        seq_lens: &[usize],
        scratch: &mut GemmScratch,
    ) -> Result<IntTensor<i8>> {
        let (total, hidden) = x.as_matrix_dims()?;
        if seq_lens.iter().sum::<usize>() != total {
            return Err(FqBertError::InvalidArgument(format!(
                "seq_lens sum to {} but the input has {total} rows",
                seq_lens.iter().sum::<usize>()
            )));
        }
        if seq_lens.contains(&0) {
            return Err(FqBertError::InvalidArgument(
                "zero-length sequence in batch: attention is undefined over \
                 zero tokens (all-padding attention mask?)"
                    .to_string(),
            ));
        }
        let head_dim = hidden / self.heads;

        // One packed GEMM each for Q, K and V across the whole batch.
        let q = self.query.forward_with_scratch(x, scratch)?;
        let k = self.key.forward_with_scratch(x, scratch)?;
        let v = self.value.forward_with_scratch(x, scratch)?;

        // Per-sequence, per-head scaled dot-product attention.
        let mut context = IntTensor::<i8>::zeros(&[total, hidden]);
        let mut start = 0usize;
        for &seq in seq_lens {
            let end = start + seq;
            for h in 0..self.heads {
                let lo = h * head_dim;
                let hi = lo + head_dim;
                let qh = slice_block_i8(&q, start, end, lo, hi);
                let kh = slice_block_i8(&k, start, end, lo, hi);
                let vh = slice_block_i8(&v, start, end, lo, hi);
                // scores[i][j] = Σ_d q[i][d]·k[j][d], then requantize.
                let score_acc = qh.matmul_transposed_i32(&kh)?;
                let mut scores = vec![0i32; seq * seq];
                for (idx, &acc) in score_acc.as_slice().iter().enumerate() {
                    scores[idx] = self.score_requant.apply(i64::from(acc));
                }
                let probs = self.softmax.apply_matrix(&scores, seq);
                // context_h = probs · V_h, requantized back to the V scale.
                for i in 0..seq {
                    for d in 0..head_dim {
                        let mut acc: i64 = 0;
                        for j in 0..seq {
                            acc += i64::from(probs[i * seq + j]) * i64::from(vh.row(j)[d]);
                        }
                        let code = self.context_requant.apply(acc).clamp(-127, 127) as i8;
                        context.as_mut_slice()[(start + i) * hidden + lo + d] = code;
                    }
                }
            }
            start = end;
        }

        let attn_out = self.attn_output.forward_with_scratch(&context, scratch)?;

        // Add & LN (attention residual) — row-wise, so batch-oblivious.
        let mut normed = IntTensor::<i8>::zeros(&[total, hidden]);
        for i in 0..total {
            let row = self.attn_layer_norm.apply_residual(
                x.row(i),
                self.input_scale,
                attn_out.row(i),
                self.attn_out_scale,
                self.ln_out_scale,
            )?;
            normed.as_mut_slice()[i * hidden..(i + 1) * hidden].copy_from_slice(&row);
        }

        // FFN with LUT GELU, again as packed GEMMs.
        let ffn_pre = self.ffn1.forward_with_scratch(&normed, scratch)?;
        let ffn_hidden = self.gelu.apply_tensor(&ffn_pre);
        let ffn_out = self.ffn2.forward_with_scratch(&ffn_hidden, scratch)?;

        // Add & LN (FFN residual).
        let mut out = IntTensor::<i8>::zeros(&[total, hidden]);
        for i in 0..total {
            let row = self.ffn_layer_norm.apply_residual(
                normed.row(i),
                self.ln_out_scale,
                ffn_out.row(i),
                self.ffn_out_scale,
                self.ln_out_scale,
            )?;
            out.as_mut_slice()[i * hidden..(i + 1) * hidden].copy_from_slice(&row);
        }
        Ok(out)
    }
}

/// Extracts the sub-matrix of rows `[r0, r1)` × columns `[c0, c1)` of an
/// int8 matrix.
fn slice_block_i8(x: &IntTensor<i8>, r0: usize, r1: usize, c0: usize, c1: usize) -> IntTensor<i8> {
    let width = c1 - c0;
    let mut out = IntTensor::<i8>::zeros(&[r1 - r0, width]);
    for r in r0..r1 {
        out.as_mut_slice()[(r - r0) * width..(r - r0 + 1) * width]
            .copy_from_slice(&x.row(r)[c0..c1]);
    }
    out
}

/// The complete integer FQ-BERT model: float CPU-side embedding/classifier
/// plus the integer encoder stack.
///
/// The float tensors (embedding tables, layer-norm parameters, classifier)
/// are held behind [`Arc`] so identical tensors can be shared across models
/// — w4 and w8 variants of one task reuse one copy of the embeddings via
/// the loader's content-hash dedup — and so cloning a model never copies
/// them. Equality still compares tensor contents ([`Arc<T>: PartialEq`]
/// compares the pointees).
// fqlint::allow(float-escape): the embedding output scale is the documented
// float↔integer boundary of the paper's model (embeddings and classifier
// stay float; the encoder stack is integer-only).
#[derive(Debug, Clone, PartialEq)]
pub struct IntBertModel {
    config: BertConfig,
    word_embeddings: Arc<Tensor>,
    position_embeddings: Arc<Tensor>,
    segment_embeddings: Arc<Tensor>,
    embedding_gamma: Arc<Tensor>,
    embedding_beta: Arc<Tensor>,
    classifier_weight: Arc<Tensor>,
    classifier_bias: Arc<Tensor>,
    embedding_out_scale: f32,
    /// Quantized encoder layers.
    pub layers: Vec<IntEncoderLayer>,
    weight_bits: u32,
}

impl IntBertModel {
    /// Assembles an integer model from its parts (used by the converter and
    /// by artifact loading).
    // fqlint::allow(float-escape): assembly boundary — accepts the float
    // embedding tables, classifier and embedding scale.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        config: BertConfig,
        word_embeddings: Tensor,
        position_embeddings: Tensor,
        segment_embeddings: Tensor,
        embedding_gamma: Tensor,
        embedding_beta: Tensor,
        classifier_weight: Tensor,
        classifier_bias: Tensor,
        embedding_out_scale: f32,
        layers: Vec<IntEncoderLayer>,
        weight_bits: u32,
    ) -> Self {
        Self::from_shared_parts(
            config,
            Arc::new(word_embeddings),
            Arc::new(position_embeddings),
            Arc::new(segment_embeddings),
            Arc::new(embedding_gamma),
            Arc::new(embedding_beta),
            Arc::new(classifier_weight),
            Arc::new(classifier_bias),
            embedding_out_scale,
            layers,
            weight_bits,
        )
    }

    /// As [`IntBertModel::from_parts`], but accepting already-shared float
    /// tensors — the loader's content-hash dedup path, where identical
    /// tensors (embedding tables, classifier heads) across model variants
    /// resolve to one shared allocation.
    // fqlint::allow(float-escape): assembly boundary — accepts the float
    // embedding tables, classifier and embedding scale.
    #[allow(clippy::too_many_arguments)]
    pub fn from_shared_parts(
        config: BertConfig,
        word_embeddings: Arc<Tensor>,
        position_embeddings: Arc<Tensor>,
        segment_embeddings: Arc<Tensor>,
        embedding_gamma: Arc<Tensor>,
        embedding_beta: Arc<Tensor>,
        classifier_weight: Arc<Tensor>,
        classifier_bias: Arc<Tensor>,
        embedding_out_scale: f32,
        layers: Vec<IntEncoderLayer>,
        weight_bits: u32,
    ) -> Self {
        Self {
            config,
            word_embeddings,
            position_embeddings,
            segment_embeddings,
            embedding_gamma,
            embedding_beta,
            classifier_weight,
            classifier_bias,
            embedding_out_scale,
            layers,
            weight_bits,
        }
    }

    /// The model's seven float tensors (embedding tables, embedding
    /// layer-norm parameters, classifier weight and bias), as shared
    /// handles in a fixed order. Used by loaders for content-hash dedup
    /// accounting.
    pub fn shared_float_tensors(&self) -> [&Arc<Tensor>; 7] {
        [
            &self.word_embeddings,
            &self.position_embeddings,
            &self.segment_embeddings,
            &self.embedding_gamma,
            &self.embedding_beta,
            &self.classifier_weight,
            &self.classifier_bias,
        ]
    }

    /// Bytes of weight storage currently resident for this model: the seven
    /// float tensors (each counted once per model, even when the `Arc` is
    /// shared with another model — cross-model sharing is accounted at the
    /// registry level via [`IntBertModel::shared_float_tensors`]) plus the
    /// materialized integer storage of every encoder layer. Zero-copy
    /// loaded layers contribute nothing until their panels materialize on
    /// first use.
    pub fn resident_bytes(&self) -> usize {
        let floats: usize = self
            .shared_float_tensors()
            .iter()
            .map(|t| std::mem::size_of_val(t.as_slice()))
            .sum();
        floats
            + self
                .layers
                .iter()
                .map(IntEncoderLayer::resident_bytes)
                .sum::<usize>()
    }

    /// The architecture configuration.
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Weight bit-width of the encoder matrices. For a mixed-precision model
    /// this is the widest site anywhere in the stack (the storage-format
    /// headline width); see [`IntBertModel::layer_bit_widths`] for the
    /// per-site truth.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Per-layer, per-site weight bit-widths of the encoder stack.
    pub fn layer_bit_widths(&self) -> Vec<LayerBits> {
        self.layers
            .iter()
            .map(IntEncoderLayer::weight_bit_widths)
            .collect()
    }

    /// Compact human-readable summary of the weight bit-widths, e.g. `w4`
    /// for a uniform model or `w4[0-5]/w8[6-11]` when runs of consecutive
    /// layers differ. A layer whose sites are themselves mixed is labelled
    /// with its width range (`w4-8`).
    pub fn bit_summary(&self) -> String {
        let labels: Vec<String> = self
            .layers
            .iter()
            .map(|layer| {
                let bits = layer.weight_bit_widths();
                match bits.uniform_bits() {
                    Some(b) => format!("w{b}"),
                    None => format!("w{}-{}", bits.min_bits(), bits.max_bits()),
                }
            })
            .collect();
        if labels.is_empty() {
            return format!("w{}", self.weight_bits);
        }
        if labels.iter().all(|l| l == &labels[0]) {
            return labels[0].clone();
        }
        let mut groups: Vec<String> = Vec::new();
        let mut start = 0;
        for end in 1..=labels.len() {
            if end == labels.len() || labels[end] != labels[start] {
                let range = if end - start == 1 {
                    format!("[{start}]")
                } else {
                    format!("[{start}-{}]", end - 1)
                };
                groups.push(format!("{}{range}", labels[start]));
                start = end;
            }
        }
        groups.join("/")
    }

    /// Scale at which the embedding output is handed to the encoder.
    // fqlint::allow(float-escape): scale-metadata accessor for artifact
    // serialization.
    pub fn embedding_out_scale(&self) -> f32 {
        self.embedding_out_scale
    }

    /// Word-embedding table `[vocab, hidden]` (float, CPU-side).
    pub fn word_embeddings(&self) -> &Tensor {
        &self.word_embeddings
    }

    /// Positional-embedding table `[max_len, hidden]`.
    pub fn position_embeddings(&self) -> &Tensor {
        &self.position_embeddings
    }

    /// Segment-embedding table `[type_vocab, hidden]`.
    pub fn segment_embeddings(&self) -> &Tensor {
        &self.segment_embeddings
    }

    /// Gamma of the embedding layer norm.
    pub fn embedding_gamma(&self) -> &Tensor {
        &self.embedding_gamma
    }

    /// Beta of the embedding layer norm.
    pub fn embedding_beta(&self) -> &Tensor {
        &self.embedding_beta
    }

    /// Classifier weight `[hidden, classes]` (float, CPU-side).
    pub fn classifier_weight(&self) -> &Tensor {
        &self.classifier_weight
    }

    /// Classifier bias `[classes]`.
    pub fn classifier_bias(&self) -> &Tensor {
        &self.classifier_bias
    }

    /// Computes the float (CPU-side) embeddings and quantizes them to int8
    /// codes for the encoder.
    ///
    /// # Errors
    ///
    /// Returns an error for empty or overlong sequences or out-of-vocabulary
    /// ids.
    // fqlint::allow(float-escape): the float→int8 entry point — embeddings
    // run in float per the paper, then quantize once for the encoder.
    pub fn embed(&self, token_ids: &[usize], segment_ids: &[usize]) -> Result<IntTensor<i8>> {
        if token_ids.is_empty() || token_ids.len() > self.config.max_len {
            return Err(FqBertError::InvalidArgument(format!(
                "sequence length {} out of range 1..={}",
                token_ids.len(),
                self.config.max_len
            )));
        }
        if segment_ids.len() != token_ids.len() {
            return Err(FqBertError::InvalidArgument(
                "segment ids must match token ids in length".to_string(),
            ));
        }
        let hidden = self.config.hidden;
        let seq = token_ids.len();
        let mut emb = Tensor::zeros(&[seq, hidden]);
        for (i, (&tok, &seg)) in token_ids.iter().zip(segment_ids.iter()).enumerate() {
            if tok >= self.config.vocab_size || seg >= self.config.type_vocab_size {
                return Err(FqBertError::InvalidArgument(format!(
                    "token id {tok} or segment id {seg} out of range"
                )));
            }
            for d in 0..hidden {
                emb.row_mut(i)[d] = self.word_embeddings.row(tok)[d]
                    + self.position_embeddings.row(i)[d]
                    + self.segment_embeddings.row(seg)[d];
            }
        }
        let normed = emb.layer_norm(
            &self.embedding_gamma,
            &self.embedding_beta,
            self.config.layer_norm_eps,
        )?;
        let data: Vec<i8> = normed
            .as_slice()
            .iter()
            .map(|&v| (v * self.embedding_out_scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Ok(IntTensor::from_vec(data, &[seq, hidden])?)
    }

    /// Runs the full integer encoder and float classifier, returning the
    /// class logits.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid inputs.
    // fqlint::allow(float-escape): the int8→float exit point — dequantizes
    // the [CLS] row once for the float classifier, per the paper.
    pub fn forward_logits(&self, token_ids: &[usize], segment_ids: &[usize]) -> Result<Vec<f32>> {
        let mut hidden = self.embed(token_ids, segment_ids)?;
        for layer in &self.layers {
            hidden = layer.forward(&hidden)?;
        }
        let out_scale = self
            .layers
            .last()
            .map(|l| l.output_scale())
            .unwrap_or(self.embedding_out_scale);
        // CPU-side classifier on the dequantized [CLS] representation.
        let cls: Vec<f32> = hidden
            .row(0)
            .iter()
            .map(|&c| c as f32 / out_scale)
            .collect();
        let cls = Tensor::from_vec(cls, &[1, self.config.hidden])?;
        let logits = cls
            .matmul(&self.classifier_weight)?
            .add_bias(&self.classifier_bias)?;
        Ok(logits.into_vec())
    }

    /// Runs the integer encoder over a batch of encoded examples at once,
    /// returning per-example class logits.
    ///
    /// Sequences are trimmed to their attention mask, packed row-wise into
    /// one matrix and pushed through [`IntEncoderLayer::forward_batch`], so
    /// every linear projection runs as a single integer GEMM over the whole
    /// batch. Logits are bit-identical to running
    /// [`IntBertModel::forward_logits`] example by example.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid inputs, including examples whose
    /// attention mask is all padding — a zero-length sequence has no tokens
    /// to attend over (empty batch is fine and returns an empty vector).
    // fqlint::allow(float-escape): returns float logits from the classifier
    // exit point; the encoder pass underneath is integer-only.
    pub fn logits_batch(&self, examples: &[fqbert_nlp::Example]) -> Result<Vec<Vec<f32>>> {
        self.logits_batch_with_scratch(examples, &mut GemmScratch::new())
    }

    /// As [`IntBertModel::logits_batch`], with a caller-owned GEMM scratch
    /// buffer — the shard entry point of the parallel runtime, where each
    /// worker thread keeps one scratch alive across every batch shard it
    /// serves instead of allocating a fresh one per call. Bit-identical to
    /// [`IntBertModel::logits_batch`] (the scratch holds no numeric state,
    /// only packing capacity).
    ///
    /// # Errors
    ///
    /// As for [`IntBertModel::logits_batch`].
    // fqlint::allow(float-escape): batched embedding entry and classifier
    // exit — the same two float boundaries as the single-sequence path.
    pub fn logits_batch_with_scratch(
        &self,
        examples: &[fqbert_nlp::Example],
        scratch: &mut GemmScratch,
    ) -> Result<Vec<Vec<f32>>> {
        if examples.is_empty() {
            return Ok(Vec::new());
        }
        let hidden = self.config.hidden;
        let mut seq_lens = Vec::with_capacity(examples.len());
        let mut packed: Vec<i8> = Vec::new();
        for (i, ex) in examples.iter().enumerate() {
            let real_len = real_length(ex);
            if real_len == 0 {
                return Err(FqBertError::InvalidArgument(format!(
                    "example {i} has an all-padding attention mask \
                     (zero-length sequence)"
                )));
            }
            let emb = self.embed(&ex.token_ids[..real_len], &ex.segment_ids[..real_len])?;
            packed.extend_from_slice(emb.as_slice());
            seq_lens.push(real_len);
        }
        let total: usize = seq_lens.iter().sum();
        let mut hidden_states = IntTensor::from_vec(packed, &[total, hidden])?;
        // One GEMM scratch serves all six projections of all encoder layers.
        for layer in &self.layers {
            hidden_states = layer.forward_batch_with_scratch(&hidden_states, &seq_lens, scratch)?;
        }
        let out_scale = self
            .layers
            .last()
            .map(|l| l.output_scale())
            .unwrap_or(self.embedding_out_scale);

        // CPU-side classifier over the [CLS] row of every sequence.
        let mut logits = Vec::with_capacity(examples.len());
        let mut start = 0usize;
        for &seq in &seq_lens {
            let cls: Vec<f32> = hidden_states
                .row(start)
                .iter()
                .map(|&c| c as f32 / out_scale)
                .collect();
            let cls = Tensor::from_vec(cls, &[1, hidden])?;
            let row = cls
                .matmul(&self.classifier_weight)?
                .add_bias(&self.classifier_bias)?;
            logits.push(row.into_vec());
            start += seq;
        }
        Ok(logits)
    }

    /// Predicts the class of one encoded example.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid inputs.
    pub fn predict(&self, example: &fqbert_nlp::Example) -> Result<usize> {
        let real_len = real_length(example);
        let logits = self.forward_logits(
            &example.token_ids[..real_len],
            &example.segment_ids[..real_len],
        )?;
        Ok(argmax_slice(&logits))
    }

    /// Predicts classes for a batch of encoded examples via
    /// [`IntBertModel::logits_batch`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid inputs.
    pub fn predict_batch(&self, examples: &[fqbert_nlp::Example]) -> Result<Vec<usize>> {
        Ok(self
            .logits_batch(examples)?
            .iter()
            .map(|l| argmax_slice(l))
            .collect())
    }
}

/// Number of non-padding tokens of an encoded example.
fn real_length(example: &fqbert_nlp::Example) -> usize {
    example
        .attention_mask
        .iter()
        .take_while(|&&m| m == 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_tensor::RngSource;

    #[test]
    fn int_linear_matches_float_reference() {
        let mut rng = RngSource::seed_from_u64(1);
        let weight = rng.normal_tensor(&[16, 8], 0.0, 0.3);
        let bias = rng.normal_tensor(&[8], 0.0, 0.1);
        let x_f = rng.normal_tensor(&[4, 16], 0.0, 1.0);

        let in_scale = 127.0 / x_f.abs_max().unwrap();
        let float_out = x_f.matmul(&weight).unwrap().add_bias(&bias).unwrap();
        let out_scale = 127.0 / float_out.abs_max().unwrap();

        let layer = IntLinear::from_float(&weight, &bias, 8, None, in_scale, out_scale).unwrap();
        let x_q = IntTensor::from_vec(
            x_f.as_slice()
                .iter()
                .map(|&v| (v * in_scale).round() as i8)
                .collect(),
            &[4, 16],
        )
        .unwrap();
        let out_q = layer.forward(&x_q).unwrap();
        let back = out_q.dequantize(1.0 / out_scale);
        assert!(
            back.allclose(&float_out, 0.08),
            "int8 linear deviates from float reference"
        );
    }

    #[test]
    fn int_linear_four_bit_weights_are_coarser_but_close() {
        let mut rng = RngSource::seed_from_u64(2);
        let weight = rng.normal_tensor(&[32, 16], 0.0, 0.2);
        let bias = Tensor::zeros(&[16]);
        let x_f = rng.normal_tensor(&[2, 32], 0.0, 1.0);
        let in_scale = 127.0 / x_f.abs_max().unwrap();
        let float_out = x_f.matmul(&weight).unwrap();
        let out_scale = 127.0 / float_out.abs_max().unwrap().max(1e-6);

        let l8 = IntLinear::from_float(&weight, &bias, 8, None, in_scale, out_scale).unwrap();
        let l4 = IntLinear::from_float(&weight, &bias, 4, None, in_scale, out_scale).unwrap();
        let x_q = IntTensor::from_vec(
            x_f.as_slice()
                .iter()
                .map(|&v| (v * in_scale).round() as i8)
                .collect(),
            &[2, 32],
        )
        .unwrap();
        let e8 = l8
            .forward(&x_q)
            .unwrap()
            .dequantize(1.0 / out_scale)
            .mse(&float_out)
            .unwrap();
        let e4 = l4
            .forward(&x_q)
            .unwrap()
            .dequantize(1.0 / out_scale)
            .mse(&float_out)
            .unwrap();
        assert!(
            e4 >= e8,
            "4-bit error {e4} should not beat 8-bit error {e8}"
        );
        assert!(e4 < 0.05, "4-bit error {e4} unexpectedly large");
    }

    #[test]
    fn gelu_lut_matches_float_gelu() {
        let lut = IntGelu::new(32.0, 32.0);
        for code in -127i8..=127 {
            let x = code as f32 / 32.0;
            let expected = gelu_scalar(x);
            let got = lut.apply(code) as f32 / 32.0;
            assert!(
                (got - expected).abs() < 0.05,
                "gelu({x}): {got} vs {expected}"
            );
        }
    }

    #[test]
    fn gelu_lut_zero_is_zero_and_monotone_positive() {
        let lut = IntGelu::new(16.0, 16.0);
        assert_eq!(lut.apply(0), 0);
        let mut prev = lut.apply(0);
        for code in 1..=127i8 {
            let cur = lut.apply(code);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn blocked_forward_is_bit_identical_to_naive_reference() {
        let mut rng = RngSource::seed_from_u64(7);
        // Deliberately non-multiple-of-block shapes, both bit-widths.
        for &(inf, outf, rows, bits) in &[(19usize, 23usize, 5usize, 8u32), (33, 17, 9, 4)] {
            let weight = rng.normal_tensor(&[inf, outf], 0.0, 0.3);
            let bias = rng.normal_tensor(&[outf], 0.0, 0.2);
            let layer = IntLinear::from_float(&weight, &bias, bits, None, 9.0, 11.0).unwrap();
            let x = IntTensor::from_vec(
                (0..rows * inf)
                    .map(|i| ((i * 37 + 11) % 255) as i8)
                    .collect(),
                &[rows, inf],
            )
            .unwrap();
            let blocked = layer.forward(&x).unwrap();
            let naive = layer.forward_naive(&x).unwrap();
            assert_eq!(blocked, naive, "({inf},{outf},{rows},{bits})");

            let mut scratch = fqbert_tensor::gemm::GemmScratch::new();
            assert_eq!(layer.forward_with_scratch(&x, &mut scratch).unwrap(), naive);
        }
    }

    #[test]
    fn zero_length_sequence_is_rejected_not_panicking() {
        let mut rng = RngSource::seed_from_u64(3);
        let layer = {
            let params = fqbert_bert::layers::EncoderLayerParams::new(&mut rng, 8, 16);
            IntEncoderLayer::from_float(
                &params,
                2,
                4,
                8,
                false,
                &LayerScales {
                    input: 16.0,
                    q: 16.0,
                    k: 16.0,
                    v: 16.0,
                    scores: 8.0,
                    attn_output: 16.0,
                    layer_norm: 16.0,
                    ffn_hidden: 16.0,
                    ffn_output: 16.0,
                },
                1e-5,
            )
            .unwrap()
        };
        let x = IntTensor::<i8>::from_vec(vec![1; 3 * 8], &[3, 8]).unwrap();
        let err = layer.forward_batch(&x, &[3, 0]).unwrap_err();
        match err {
            FqBertError::InvalidArgument(msg) => {
                assert!(msg.contains("zero-length"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn slice_block_helper() {
        let x = IntTensor::<i8>::from_vec((0..12).map(|v| v as i8).collect(), &[3, 4]).unwrap();
        let s = slice_block_i8(&x, 0, 3, 1, 3);
        assert_eq!(s.dims(), &[3, 2]);
        assert_eq!(s.as_slice(), &[1, 2, 5, 6, 9, 10]);
        let b = slice_block_i8(&x, 1, 3, 0, 2);
        assert_eq!(b.dims(), &[2, 2]);
        assert_eq!(b.as_slice(), &[4, 5, 8, 9]);
    }
}
