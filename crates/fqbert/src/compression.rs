//! Model-size accounting and the compression ratio of Table I.
//!
//! The paper reports a 7.94× compression of the weights when the linear-layer
//! weights go to 4 bits while biases, layer-norm parameters and scale factors
//! stay at higher precision. [`CompressionReport`] reproduces that accounting
//! for any model/bit-width combination, counting every parameter category
//! explicitly.

use fqbert_bert::BertModel;
use fqbert_quant::QuantConfig;

/// Byte-level size accounting of a BERT model before and after quantization.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Weight bit-width applied to the linear-layer matrices.
    pub weight_bits: u32,
    /// Activation bit-width (affects runtime buffers, not model size).
    pub activation_bits: u32,
    /// Bytes of the FP32 baseline (all parameters at 32 bits).
    pub fp32_bytes: u64,
    /// Bytes of the quantized model.
    pub quantized_bytes: u64,
    /// Bytes of the quantized encoder matrices alone.
    pub quantized_matrix_bytes: u64,
    /// Bytes of parameters kept at high precision (biases, layer norms,
    /// embeddings, classifier, per-tensor scale factors).
    pub high_precision_bytes: u64,
    /// Number of per-tensor scale factors stored.
    pub scale_factors: usize,
}

impl CompressionReport {
    /// Computes the report for `model` quantized according to `config`.
    ///
    /// Embedding tables and the classifier stay in float (they run on the CPU
    /// in the paper's partitioning); encoder matrices take `weight_bits` bits
    /// each; biases take 32 bits; layer-norm parameters take
    /// `layer_norm_bits`; every quantized tensor carries one 32-bit scale.
    pub fn for_model(model: &BertModel, config: &QuantConfig) -> Self {
        let cfg = model.config();
        let h = cfg.hidden as u64;
        let i = cfg.intermediate as u64;
        let layers = cfg.layers as u64;

        let matrix_params = layers * (4 * h * h + h * i + i * h);
        let bias_params = layers * (4 * h + i + h);
        let ln_params = layers * 4 * h + 2 * h; // per-layer LNs + embedding LN
        let embedding_params = ((cfg.vocab_size + cfg.max_len + cfg.type_vocab_size) as u64) * h;
        let classifier_params = h * cfg.num_classes as u64 + cfg.num_classes as u64;

        let total_params =
            matrix_params + bias_params + ln_params + embedding_params + classifier_params;
        let fp32_bytes = 4 * total_params;

        let weight_bits = if config.quantize_weights_activations {
            config.weight_bits
        } else {
            32
        };
        let ln_bits = if config.quantize_layer_norm {
            config.layer_norm_bits
        } else {
            32
        };
        // One scale per quantized matrix (Q, K, V, O, FFN1, FFN2) and one per
        // activation tensor feeding it; stored as 32-bit values.
        let scale_factors = if config.quantize_weights_activations {
            (layers * 6 * 2) as usize
        } else {
            0
        };

        let quantized_matrix_bytes = (matrix_params * u64::from(weight_bits)).div_ceil(8);
        let bias_bytes = bias_params * 4;
        let ln_bytes = (ln_params * u64::from(ln_bits)).div_ceil(8);
        let embedding_bytes = embedding_params * 4;
        let classifier_bytes = classifier_params * 4;
        let scale_bytes = scale_factors as u64 * 4;
        let high_precision_bytes =
            bias_bytes + ln_bytes + embedding_bytes + classifier_bytes + scale_bytes;
        let quantized_bytes = quantized_matrix_bytes + high_precision_bytes;

        Self {
            weight_bits,
            activation_bits: config.activation_bits,
            fp32_bytes,
            quantized_bytes,
            quantized_matrix_bytes,
            high_precision_bytes,
            scale_factors,
        }
    }

    /// Whole-model compression ratio (FP32 bytes / quantized bytes).
    pub fn ratio(&self) -> f64 {
        self.fp32_bytes as f64 / self.quantized_bytes as f64
    }

    /// Compression ratio of the encoder weight matrices alone — the quantity
    /// the paper's 7.94× refers to (weights only, excluding the CPU-side
    /// embeddings).
    pub fn encoder_weight_ratio(&self) -> f64 {
        let matrix_params_fp32 =
            self.quantized_matrix_bytes as f64 * 32.0 / self.weight_bits as f64;
        matrix_params_fp32 / self.quantized_matrix_bytes as f64
    }

    /// Encoder-level compression ratio including the high-precision
    /// parameters that must ship with the encoder (biases, layer norms,
    /// scale factors) but excluding the CPU-side embeddings and classifier.
    pub fn encoder_ratio(&self, model: &BertModel) -> f64 {
        let cfg = model.config();
        let h = cfg.hidden as u64;
        let i = cfg.intermediate as u64;
        let layers = cfg.layers as u64;
        let matrix_params = layers * (4 * h * h + h * i + i * h);
        let bias_params = layers * (4 * h + i + h);
        let ln_params = layers * 4 * h;
        let fp32 = 4 * (matrix_params + bias_params + ln_params);
        let quant = (matrix_params * u64::from(self.weight_bits)).div_ceil(8)
            + bias_params * 4
            + ln_params
            + self.scale_factors as u64 * 4;
        fp32 as f64 / quant as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_bert::BertConfig;

    #[test]
    fn four_bit_encoder_ratio_is_near_eight() {
        // Use the BERT-base shape for the headline number; the model weights
        // themselves are irrelevant to the byte accounting, so a tiny vocab
        // keeps construction fast.
        let mut cfg = BertConfig::bert_base();
        cfg.vocab_size = 100;
        cfg.max_len = 16;
        let model = BertModel::new(cfg, 0);
        let report = CompressionReport::for_model(&model, &QuantConfig::fq_bert());
        let ratio = report.encoder_ratio(&model);
        assert!(
            (7.5..8.0).contains(&ratio),
            "encoder compression ratio {ratio} not in the expected 7.5–8.0 band"
        );
        assert_eq!(report.encoder_weight_ratio(), 8.0);
    }

    #[test]
    fn eight_bit_ratio_is_near_four() {
        let model = BertModel::new(BertConfig::tiny(50, 16, 2), 0);
        let report = CompressionReport::for_model(&model, &QuantConfig::w8a8());
        let ratio = report.encoder_ratio(&model);
        assert!((3.7..4.0).contains(&ratio), "8-bit encoder ratio {ratio}");
    }

    #[test]
    fn float_baseline_has_ratio_one() {
        let model = BertModel::new(BertConfig::tiny(50, 16, 2), 0);
        let report = CompressionReport::for_model(&model, &QuantConfig::float_baseline());
        assert!((report.ratio() - 1.0).abs() < 0.01);
        assert_eq!(report.scale_factors, 0);
    }

    #[test]
    fn whole_model_ratio_is_below_encoder_ratio() {
        // Embeddings stay in float, so the whole-model ratio must be lower
        // than the encoder-only ratio.
        let model = BertModel::new(BertConfig::tiny(500, 32, 2), 0);
        let report = CompressionReport::for_model(&model, &QuantConfig::fq_bert());
        assert!(report.ratio() < report.encoder_ratio(&model));
        assert!(report.ratio() > 1.0);
    }

    #[test]
    fn quantized_bytes_decompose() {
        let model = BertModel::new(BertConfig::tiny(50, 16, 2), 0);
        let report = CompressionReport::for_model(&model, &QuantConfig::fq_bert());
        assert_eq!(
            report.quantized_bytes,
            report.quantized_matrix_bytes + report.high_precision_bytes
        );
    }
}
