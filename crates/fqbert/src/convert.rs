//! Float → integer model conversion.
//!
//! [`convert`] takes the (QAT-fine-tuned) float [`BertModel`] together with
//! the calibration record accumulated by the [`QatHook`] and produces the
//! [`IntBertModel`] executed by the integer engine and the accelerator
//! simulator. All activation scales come from the hook's EMA observers
//! (Eq. 3); weight scales and clips are recomputed from the final weights
//! (Eq. 2).

use crate::int_model::{IntBertModel, IntEncoderLayer, LayerScales};
use crate::qat::QatHook;
use crate::{FqBertError, Result};
use fqbert_bert::{BertModel, Site, SiteKind};
use fqbert_quant::LayerBits;

/// Converts a calibrated float model into the integer-only FQ-BERT model.
///
/// # Errors
///
/// Returns [`FqBertError::MissingCalibration`] if the hook has not observed
/// one of the required activation sites (run at least one calibration or QAT
/// forward pass first), or a quantization error if a weight tensor is
/// degenerate.
pub fn convert(model: &BertModel, hook: &QatHook) -> Result<IntBertModel> {
    let bits = vec![LayerBits::uniform(hook.config().weight_bits); model.config().layers];
    convert_mixed(model, hook, &bits)
}

/// Converts a calibrated float model into an integer model whose layer `l`
/// uses the per-site weight bit-widths `bits[l]` (the mixed-precision
/// counterpart of [`convert`]). The model-level headline width is the widest
/// site anywhere in the stack.
///
/// # Errors
///
/// As for [`convert`], plus [`FqBertError::InvalidArgument`] when `bits` does
/// not have one entry per encoder layer or contains an unsupported width.
pub fn convert_mixed(
    model: &BertModel,
    hook: &QatHook,
    bits: &[LayerBits],
) -> Result<IntBertModel> {
    let cfg = model.config().clone();
    let quant_cfg = hook.config();
    if bits.len() != cfg.layers {
        return Err(FqBertError::InvalidArgument(format!(
            "bit assignment covers {} layers, model has {}",
            bits.len(),
            cfg.layers
        )));
    }
    let scale_at = |site: Site| -> Result<f32> {
        hook.activation_scale(site)
            .filter(|s| s.is_finite() && *s > 0.0)
            .ok_or_else(|| FqBertError::MissingCalibration(site.to_string()))
    };

    let embedding_out_scale = scale_at(Site::global(SiteKind::EmbeddingOutput))?;
    let mut layers = Vec::with_capacity(cfg.layers);
    for (l, layer_bits) in bits.iter().enumerate() {
        let input = if l == 0 {
            embedding_out_scale
        } else {
            scale_at(Site::layer(l - 1, SiteKind::LayerNormOutput))?
        };
        let scales = LayerScales {
            input,
            q: scale_at(Site::layer(l, SiteKind::QActivation))?,
            k: scale_at(Site::layer(l, SiteKind::KActivation))?,
            v: scale_at(Site::layer(l, SiteKind::VActivation))?,
            scores: scale_at(Site::layer(l, SiteKind::AttentionScores))?,
            attn_output: scale_at(Site::layer(l, SiteKind::AttentionOutput))?,
            layer_norm: scale_at(Site::layer(l, SiteKind::LayerNormOutput))?,
            ffn_hidden: scale_at(Site::layer(l, SiteKind::FfnHidden))?,
            ffn_output: scale_at(Site::layer(l, SiteKind::FfnOutput))?,
        };
        layers.push(IntEncoderLayer::from_float_mixed(
            &model.encoder_layers[l],
            cfg.heads,
            cfg.head_dim(),
            layer_bits,
            quant_cfg.tune_weight_clip,
            &scales,
            cfg.layer_norm_eps,
        )?);
    }

    let headline_bits = bits
        .iter()
        .map(LayerBits::max_bits)
        .max()
        .unwrap_or(quant_cfg.weight_bits);
    Ok(IntBertModel::from_parts(
        cfg,
        model.word_embeddings.clone(),
        model.position_embeddings.clone(),
        model.segment_embeddings.clone(),
        model.embedding_layer_norm.gamma.clone(),
        model.embedding_layer_norm.beta.clone(),
        model.classifier.weight.clone(),
        model.classifier.bias.clone(),
        embedding_out_scale,
        layers,
        headline_bits,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_autograd::Graph;
    use fqbert_bert::{BertConfig, NoopHook};
    use fqbert_nlp::Example;
    use fqbert_quant::QuantConfig;

    fn example(tokens: &[usize]) -> Example {
        Example {
            token_ids: tokens.to_vec(),
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            label: 0,
        }
    }

    fn calibrated(model: &BertModel, config: QuantConfig, examples: &[Example]) -> QatHook {
        let mut hook = QatHook::calibration_only(config);
        for ex in examples {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound
                .forward(&mut graph, ex, &mut hook)
                .expect("calibration forward");
        }
        hook
    }

    #[test]
    fn conversion_requires_calibration() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 0);
        let hook = QatHook::new(QuantConfig::fq_bert());
        assert!(matches!(
            convert(&model, &hook),
            Err(FqBertError::MissingCalibration(_))
        ));
    }

    #[test]
    fn converted_model_agrees_with_float_model_on_predictions() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 4);
        let examples: Vec<Example> = (0..8)
            .map(|i| example(&[2, 4 + i % 10, 5 + (i * 3) % 10, 7, 3]))
            .collect();
        let hook = calibrated(&model, QuantConfig::w8a8(), &examples);
        let int_model = convert(&model, &hook).expect("conversion succeeds");
        assert_eq!(int_model.layers.len(), model.config().layers);
        assert_eq!(int_model.weight_bits(), 8);

        let mut agreement = 0usize;
        for ex in &examples {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits = bound.forward(&mut graph, ex, &mut NoopHook).unwrap();
            let float_pred = graph.value(logits).argmax().unwrap();
            let int_pred = int_model.predict(ex).unwrap();
            if float_pred == int_pred {
                agreement += 1;
            }
        }
        assert!(
            agreement >= examples.len() - 1,
            "integer engine disagrees with float model on {} of {} inputs",
            examples.len() - agreement,
            examples.len()
        );
    }

    #[test]
    fn int_logits_track_float_logits() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 6);
        let examples: Vec<Example> = (0..6).map(|i| example(&[2, 4 + i, 6 + i, 3])).collect();
        let hook = calibrated(&model, QuantConfig::w8a8(), &examples);
        let int_model = convert(&model, &hook).unwrap();
        for ex in &examples {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            let logits_id = bound.forward(&mut graph, ex, &mut NoopHook).unwrap();
            let float_logits = graph.value(logits_id).clone().into_vec();
            let real_len = ex.attention_mask.iter().filter(|&&m| m == 1).count();
            let int_logits = int_model
                .forward_logits(&ex.token_ids[..real_len], &ex.segment_ids[..real_len])
                .unwrap();
            for (f, q) in float_logits.iter().zip(int_logits.iter()) {
                assert!(
                    (f - q).abs() < 0.6,
                    "integer logit {q} far from float logit {f}"
                );
            }
        }
    }

    #[test]
    fn mixed_conversion_assigns_per_site_widths() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 4);
        let examples: Vec<Example> = (0..8)
            .map(|i| example(&[2, 4 + i % 10, 5 + (i * 3) % 10, 7, 3]))
            .collect();
        let hook = calibrated(&model, QuantConfig::fq_bert(), &examples);

        let mut wide = LayerBits::uniform(4);
        wide.ffn1 = 8;
        let bits = vec![wide, LayerBits::uniform(4)];
        let int_model = convert_mixed(&model, &hook, &bits).expect("mixed conversion");

        assert_eq!(int_model.layer_bit_widths(), bits);
        assert_eq!(
            int_model.weight_bits(),
            8,
            "headline width is the widest site"
        );
        assert_eq!(int_model.bit_summary(), "w4-8[0]/w4[1]");

        let uniform = convert(&model, &hook).unwrap();
        assert_eq!(uniform.bit_summary(), "w4");
        assert_eq!(
            convert_mixed(&model, &hook, &[LayerBits::uniform(4); 2]).unwrap(),
            uniform,
            "uniform assignment matches the uniform converter"
        );

        // Wrong layer count and out-of-range widths are rejected.
        assert!(convert_mixed(&model, &hook, &[wide]).is_err());
        let mut bad = LayerBits::uniform(4);
        bad.k = 1;
        assert!(convert_mixed(&model, &hook, &[bad, bad]).is_err());
    }

    #[test]
    fn invalid_inputs_to_int_model_are_rejected() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 4);
        let examples = vec![example(&[2, 4, 3])];
        let hook = calibrated(&model, QuantConfig::fq_bert(), &examples);
        let int_model = convert(&model, &hook).unwrap();
        assert!(int_model.forward_logits(&[], &[]).is_err());
        assert!(int_model.forward_logits(&[2, 99], &[0, 0]).is_err());
        let too_long: Vec<usize> = vec![2; 13];
        let segs = vec![0usize; 13];
        assert!(int_model.forward_logits(&too_long, &segs).is_err());
    }
}
