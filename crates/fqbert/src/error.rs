//! Error type for the FQ-BERT pipeline.

use fqbert_autograd::AutogradError;
use fqbert_quant::QuantError;
use fqbert_tensor::TensorError;
use std::fmt;

/// Error returned by quantization-aware training, conversion and integer
/// inference.
#[derive(Debug, Clone, PartialEq)]
pub enum FqBertError {
    /// An autograd operation failed.
    Autograd(AutogradError),
    /// A quantization primitive failed.
    Quant(QuantError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The model has not been calibrated for a required activation site.
    MissingCalibration(String),
    /// An argument is outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for FqBertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FqBertError::Autograd(e) => write!(f, "autograd error: {e}"),
            FqBertError::Quant(e) => write!(f, "quantization error: {e}"),
            FqBertError::Tensor(e) => write!(f, "tensor error: {e}"),
            FqBertError::MissingCalibration(site) => {
                write!(f, "no activation calibration recorded for site {site}")
            }
            FqBertError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FqBertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FqBertError::Autograd(e) => Some(e),
            FqBertError::Quant(e) => Some(e),
            FqBertError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AutogradError> for FqBertError {
    fn from(e: AutogradError) -> Self {
        FqBertError::Autograd(e)
    }
}

impl From<QuantError> for FqBertError {
    fn from(e: QuantError) -> Self {
        FqBertError::Quant(e)
    }
}

impl From<TensorError> for FqBertError {
    fn from(e: TensorError) -> Self {
        FqBertError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let errs: Vec<FqBertError> = vec![
            AutogradError::UnknownVariable(1).into(),
            QuantError::UnsupportedBitWidth(1).into(),
            TensorError::EmptyTensor("max").into(),
            FqBertError::MissingCalibration("layer0/QActivation".into()),
            FqBertError::InvalidArgument("bad".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
