//! Accuracy evaluation helpers for the quantization experiments.

use crate::int_model::IntBertModel;
use crate::Result;
use fqbert_bert::{BertModel, ForwardHook, Trainer};
use fqbert_nlp::{accuracy, Example};

/// Accuracy of a model variant on one evaluation split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyReport {
    /// Classification accuracy in percent.
    pub accuracy: f64,
    /// Number of evaluated examples.
    pub num_examples: usize,
}

/// Evaluates the integer-only FQ-BERT engine on a set of examples.
///
/// # Errors
///
/// Propagates integer-engine errors (invalid examples).
pub fn evaluate_int_model(model: &IntBertModel, examples: &[Example]) -> Result<AccuracyReport> {
    if examples.is_empty() {
        return Ok(AccuracyReport {
            accuracy: 0.0,
            num_examples: 0,
        });
    }
    let predictions = model.predict_batch(examples)?;
    let labels: Vec<usize> = examples.iter().map(|e| e.label).collect();
    Ok(AccuracyReport {
        accuracy: accuracy(&predictions, &labels),
        num_examples: examples.len(),
    })
}

/// Evaluates the float model under an arbitrary forward hook (used for the
/// fake-quantized ablations of Table II and the bit-width sweep of Fig. 3).
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn evaluate_with_hook(
    model: &BertModel,
    examples: &[Example],
    hook: &mut dyn ForwardHook,
) -> Result<AccuracyReport> {
    let report = Trainer::evaluate(model, examples, hook)?;
    Ok(AccuracyReport {
        accuracy: report.accuracy,
        num_examples: report.num_examples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use crate::qat::QatHook;
    use fqbert_autograd::Graph;
    use fqbert_bert::{BertConfig, NoopHook};
    use fqbert_quant::QuantConfig;

    fn example(tokens: &[usize], label: usize) -> Example {
        Example {
            token_ids: tokens.to_vec(),
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            label,
        }
    }

    #[test]
    fn int_and_hook_evaluations_run_end_to_end() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 8);
        let examples: Vec<Example> = (0..6).map(|i| example(&[2, 4 + i, 6, 3], i % 2)).collect();
        let mut hook = QatHook::calibration_only(QuantConfig::w8a8());
        for ex in &examples {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound.forward(&mut graph, ex, &mut hook).unwrap();
        }
        let int_model = convert(&model, &hook).unwrap();
        let int_report = evaluate_int_model(&int_model, &examples).unwrap();
        assert_eq!(int_report.num_examples, examples.len());
        assert!((0.0..=100.0).contains(&int_report.accuracy));

        let float_report = evaluate_with_hook(&model, &examples, &mut NoopHook).unwrap();
        assert_eq!(float_report.num_examples, examples.len());
    }

    #[test]
    fn empty_evaluation_is_zero() {
        let model = BertModel::new(BertConfig::tiny(30, 12, 2), 8);
        let mut hook = QatHook::calibration_only(QuantConfig::w8a8());
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(&[2, 4, 3], 0), &mut hook)
            .unwrap();
        let int_model = convert(&model, &hook).unwrap();
        let report = evaluate_int_model(&int_model, &[]).unwrap();
        assert_eq!(report.num_examples, 0);
    }
}
