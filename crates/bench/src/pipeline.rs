//! Training / fine-tuning pipeline shared by the experiment binaries.

use fqbert_bert::{BertConfig, BertModel, NoopHook, Trainer, TrainerConfig};
use fqbert_core::QatHook;
use fqbert_nlp::{MnliConfig, MnliGenerator, MnliSplits, Sst2Config, Sst2Generator, TaskDataset};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, Engine, EngineBuilder};

/// Sequences per engine call used by the experiment binaries.
const ENGINE_BATCH_SIZE: usize = 16;
/// Dev examples used for post-training calibration of engine backends.
const CALIBRATION_EXAMPLES: usize = 16;

/// Sizes and hyper-parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Synthetic SST-2 generator configuration.
    pub sst2: Sst2Config,
    /// Synthetic MNLI generator configuration.
    pub mnli: MnliConfig,
    /// Float-training hyper-parameters (the paper trains 3 epochs).
    pub float_trainer: TrainerConfig,
    /// QAT fine-tuning hyper-parameters.
    pub qat_trainer: TrainerConfig,
    /// Seed used for dataset generation.
    pub data_seed: u64,
    /// Seed used for model initialisation.
    pub model_seed: u64,
}

impl ExperimentConfig {
    /// The standard configuration used for the numbers in EXPERIMENTS.md.
    pub fn standard() -> Self {
        Self {
            sst2: Sst2Config::default(),
            mnli: MnliConfig::default(),
            float_trainer: TrainerConfig {
                epochs: 4,
                batch_size: 16,
                learning_rate: 3e-3,
                seed: 11,
                max_train_examples: None,
            },
            qat_trainer: TrainerConfig {
                epochs: 2,
                batch_size: 16,
                learning_rate: 1e-3,
                seed: 13,
                max_train_examples: None,
            },
            data_seed: 2021,
            model_seed: 7,
        }
    }

    /// A reduced configuration for smoke tests (`FQBERT_QUICK=1`).
    pub fn quick() -> Self {
        let mut cfg = Self::standard();
        cfg.sst2.train_size = 500;
        cfg.sst2.dev_size = 120;
        cfg.sst2.sentiment_words = 10;
        cfg.sst2.neutral_words = 20;
        cfg.sst2.max_words = 8;
        cfg.mnli.train_size = 800;
        cfg.mnli.dev_size = 120;
        cfg.mnli.attribute_pairs = 12;
        cfg.float_trainer.epochs = 3;
        cfg.float_trainer.batch_size = 8;
        cfg.qat_trainer.epochs = 1;
        cfg.qat_trainer.batch_size = 8;
        cfg
    }

    /// Picks [`ExperimentConfig::quick`] when `FQBERT_QUICK` is set in the
    /// environment, otherwise [`ExperimentConfig::standard`].
    pub fn from_env() -> Self {
        if std::env::var("FQBERT_QUICK").is_ok_and(|v| !v.is_empty() && v != "0") {
            Self::quick()
        } else {
            Self::standard()
        }
    }

    /// The BERT architecture used for the accuracy experiments.
    pub fn model_config(
        &self,
        vocab_size: usize,
        max_len: usize,
        num_classes: usize,
    ) -> BertConfig {
        BertConfig::tiny(vocab_size, max_len, num_classes)
    }
}

/// A trained float model together with its task data.
#[derive(Debug)]
pub struct TrainedTask {
    /// The trained float model.
    pub model: BertModel,
    /// The task dataset it was trained on.
    pub dataset: TaskDataset,
    /// Float (FP32) dev accuracy after training.
    pub float_accuracy: f64,
}

impl TrainedTask {
    /// Starts an [`EngineBuilder`] pre-wired for this task: tokenizer from
    /// the dataset vocabulary, dev-set calibration examples, and the
    /// experiment batch size.
    pub fn engine_builder(&self) -> EngineBuilder {
        let calib = self.dataset.dev.len().min(CALIBRATION_EXAMPLES);
        EngineBuilder::new(self.dataset.task)
            .vocab(self.dataset.vocab.clone(), self.dataset.max_len)
            .batch_size(ENGINE_BATCH_SIZE)
            .calibrate_with(&self.dataset.dev[..calib])
    }

    /// Builds a serving engine over the trained model with post-training
    /// calibration (for QAT-calibrated scales use
    /// [`TrainedTask::engine_with_hook`]).
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors.
    pub fn engine(&self, kind: BackendKind) -> fqbert_runtime::Result<Engine> {
        self.engine_builder().backend(kind).build(&self.model)
    }

    /// Builds a serving engine using a QAT hook's calibrated scales (the
    /// hook also supplies the quantization configuration).
    ///
    /// # Errors
    ///
    /// Propagates engine-construction errors.
    pub fn engine_with_hook(
        &self,
        kind: BackendKind,
        hook: &QatHook,
    ) -> fqbert_runtime::Result<Engine> {
        self.engine_builder()
            .backend(kind)
            .build_with_hook(&self.model, hook)
    }
}

impl ExperimentConfig {
    /// Generates synthetic SST-2 and trains the float baseline on it.
    ///
    /// # Panics
    ///
    /// Panics if training fails (indicates an internal inconsistency).
    pub fn train_sst2(&self) -> TrainedTask {
        let dataset = Sst2Generator::new(self.sst2.clone()).generate(self.data_seed);
        let mut model = BertModel::new(
            self.model_config(dataset.vocab_size, dataset.max_len, dataset.num_classes),
            self.model_seed,
        );
        let trainer = Trainer::new(self.float_trainer.clone());
        trainer
            .train(&mut model, &dataset, &mut NoopHook)
            .expect("float SST-2 training failed");
        let float_accuracy = Trainer::evaluate_float(&model, &dataset.dev)
            .expect("evaluation failed")
            .accuracy;
        TrainedTask {
            model,
            dataset,
            float_accuracy,
        }
    }

    /// Generates synthetic MNLI and trains the float baseline on the matched
    /// split; returns the model and both evaluation splits.
    ///
    /// # Panics
    ///
    /// Panics if training fails.
    pub fn train_mnli(&self) -> (TrainedTask, MnliSplits) {
        let splits = MnliGenerator::new(self.mnli.clone()).generate(self.data_seed + 1);
        let mut model = BertModel::new(
            self.model_config(
                splits.matched.vocab_size,
                splits.matched.max_len,
                splits.matched.num_classes,
            ),
            self.model_seed + 1,
        );
        let trainer = Trainer::new(self.float_trainer.clone());
        trainer
            .train(&mut model, &splits.matched, &mut NoopHook)
            .expect("float MNLI training failed");
        let float_accuracy = Trainer::evaluate_float(&model, &splits.matched.dev)
            .expect("evaluation failed")
            .accuracy;
        (
            TrainedTask {
                model,
                dataset: splits.matched.clone(),
                float_accuracy,
            },
            splits,
        )
    }

    /// Fine-tunes a trained model with the quantization function in the loop
    /// (paper §IV-A) and returns the calibrated hook.
    ///
    /// # Panics
    ///
    /// Panics if fine-tuning fails.
    pub fn qat_finetune(&self, task: &mut TrainedTask, quant: QuantConfig) -> QatHook {
        let mut hook = QatHook::new(quant);
        let trainer = Trainer::new(self.qat_trainer.clone());
        trainer
            .train(&mut task.model, &task.dataset, &mut hook)
            .expect("QAT fine-tuning failed");
        hook
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_smaller_than_standard() {
        let quick = ExperimentConfig::quick();
        let standard = ExperimentConfig::standard();
        assert!(quick.sst2.train_size < standard.sst2.train_size);
        assert!(quick.float_trainer.epochs <= standard.float_trainer.epochs);
    }

    #[test]
    fn from_env_respects_quick_flag() {
        // Can't mutate the process environment safely in parallel tests, so
        // just check both constructors are reachable and consistent.
        let cfg = ExperimentConfig::from_env();
        assert!(cfg.sst2.train_size > 0);
    }
}
