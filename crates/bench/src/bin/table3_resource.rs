//! Table III: resource consumption and latency of the accelerator for the
//! published (N, M) configurations on ZCU102 and ZCU111.
//!
//! Run with `cargo run -p fqbert-bench --bin table3_resource --release`.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{cycle_model, AcceleratorConfig, ResourceModel};
use fqbert_bench::{markdown_table, save_json};

#[derive(Debug)]
struct Table3Row {
    device: String,
    n: usize,
    m: usize,
    bram18k: u64,
    uram: u64,
    dsp48: u64,
    ff: u64,
    lut: u64,
    latency_ms: f64,
}

fqbert_bench::impl_to_json!(Table3Row {
    device,
    n,
    m,
    bram18k,
    uram,
    dsp48,
    ff,
    lut,
    latency_ms
});

fn main() {
    println!("== Table III reproduction: resources and latency (12 PUs, BERT-base, seq 128) ==\n");
    let model = ResourceModel::new();
    let shape = EncoderShape::bert_base();

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for config in AcceleratorConfig::table_iii_configs() {
        let est = model.estimate(&config);
        let latency = cycle_model::estimate_latency(&config, &shape, 12);
        let row = Table3Row {
            device: config.device.name().to_string(),
            n: config.pes_per_pu,
            m: config.multipliers_per_bim,
            bram18k: est.bram18k,
            uram: est.uram,
            dsp48: est.dsp48,
            ff: est.ff,
            lut: est.lut,
            latency_ms: latency.latency_ms,
        };
        rows.push(vec![
            row.device.clone(),
            format!("({}, {})", row.n, row.m),
            row.bram18k.to_string(),
            row.dsp48.to_string(),
            row.ff.to_string(),
            row.lut.to_string(),
            format!("{:.2}", row.latency_ms),
        ]);
        results.push(row);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "device",
                "(N, M)",
                "BRAM18K",
                "DSP48E",
                "FF",
                "LUT",
                "latency (ms)"
            ],
            &rows
        )
    );
    println!("\nDevice capacities:  ZCU102: 1824 BRAM / 2520 DSP / 548160 FF / 274080 LUT");
    println!("                    ZCU111: 2160 BRAM / 4272 DSP / 850560 FF / 425280 LUT");
    println!("(ZCU111 row offloads part of its buffers to URAM, as in the paper's footnote.)");
    match save_json("table3_resource", &results) {
        Ok(path) => println!("\nsaved raw results to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nPaper reference: (8,16) 838/1751/124433/123157 @ 43.89 ms, (16,8) 877/1671/151010/154192 @ 45.35 ms,\n\
         ZCU111 (16,16) 679/3287/201469/189724 @ 23.79 ms."
    );
}
