//! Table IV: latency, power and energy efficiency (fps/W) of the CPU, GPU
//! and the two FPGA deployments on BERT-base, batch 1, sequence length 128.
//!
//! Run with `cargo run -p fqbert-bench --bin table4_comparison --release`.

use fqbert_bench::{markdown_table, save_json};
use fqbert_bert::BertConfig;
use fqbert_perf::comparison_table;

fn main() {
    println!(
        "== Table IV reproduction: CPU / GPU / FPGA comparison (BERT-base, batch 1, seq 128) ==\n"
    );
    let rows_data = comparison_table(&BertConfig::bert_base(), 128);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                format!("{:.2}", r.latency_ms),
                format!("{:.1}", r.power_watts),
                format!("{:.2}", r.fps_per_watt),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["platform", "latency (ms)", "power (W)", "fps/W"], &rows)
    );

    let cpu = &rows_data[0];
    let gpu = &rows_data[1];
    let zcu111 = &rows_data[3];
    println!(
        "\nZCU111 vs CPU: {:.2}x latency, {:.2}x fps/W   (paper: 6.10x, 28.91x)",
        zcu111.speedup_over(cpu),
        zcu111.efficiency_gain_over(cpu)
    );
    println!(
        "ZCU111 vs GPU: {:.2}x latency, {:.2}x fps/W   (paper: 1.17x, 12.72x)",
        zcu111.speedup_over(gpu),
        zcu111.efficiency_gain_over(gpu)
    );
    match save_json("table4_comparison", &rows_data) {
        Ok(path) => println!("\nsaved raw results to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nPaper reference: CPU 145.06 ms / 65 W / 0.11 fps/W, GPU 27.84 ms / 143 W / 0.25 fps/W,\n\
         ZCU102 43.89 ms / 9.8 W / 2.32 fps/W, ZCU111 23.79 ms / 13.2 W / 3.18 fps/W."
    );
}
