//! Figure 3: impact of the weight-quantization bit-width (32/8/6/4/2) on
//! accuracy, with tuned clipping (CLIP) and without (NO_CLIP), on the
//! synthetic SST-2 and MNLI tasks.
//!
//! Run with `cargo run -p fqbert-bench --bin fig3_bitwidth --release`
//! (set `FQBERT_QUICK=1` for a fast smoke run).

use fqbert_autograd::{FakeQuantSpec, Graph, VarId};
use fqbert_bench::{markdown_table, save_json, ExperimentConfig};
use fqbert_bert::{ForwardHook, Site, SiteKind, Trainer};
use fqbert_quant::tune_clip_threshold;

/// Post-training weight-only quantization hook used for the bit-width sweep.
struct WeightPtqHook {
    bits: u32,
    tuned_clip: bool,
}

impl ForwardHook for WeightPtqHook {
    fn on_weight(&mut self, graph: &mut Graph, id: VarId, site: Site) -> VarId {
        if self.bits >= 32 || site.kind == SiteKind::EmbeddingTable {
            return id;
        }
        let spec = if self.tuned_clip {
            match tune_clip_threshold(graph.value(id), self.bits, 40) {
                Ok(result) => FakeQuantSpec::with_clip(self.bits, result.clip),
                Err(_) => FakeQuantSpec::no_clip(self.bits),
            }
        } else {
            FakeQuantSpec::no_clip(self.bits)
        };
        graph.fake_quant(id, spec).unwrap_or(id)
    }
}

#[derive(Debug)]
struct SweepPoint {
    task: String,
    bits: u32,
    clip: bool,
    accuracy: f64,
}

fqbert_bench::impl_to_json!(SweepPoint {
    task,
    bits,
    clip,
    accuracy
});

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Fig. 3 reproduction: weight bit-width vs accuracy ==\n");
    println!("training float baselines on synthetic SST-2 and MNLI ...");
    let sst2 = config.train_sst2();
    let (mnli, _splits) = config.train_mnli();
    println!(
        "float dev accuracy: SST-2 {:.2}%, MNLI {:.2}%\n",
        sst2.float_accuracy, mnli.float_accuracy
    );

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (task_name, task) in [("SST-2", &sst2), ("MNLI", &mnli)] {
        for &bits in &[32u32, 8, 6, 4, 2] {
            let mut row = vec![task_name.to_string(), bits.to_string()];
            for clip in [true, false] {
                let mut hook = WeightPtqHook {
                    bits,
                    tuned_clip: clip,
                };
                let accuracy = Trainer::evaluate(&task.model, &task.dataset.dev, &mut hook)
                    .expect("evaluation failed")
                    .accuracy;
                row.push(format!("{accuracy:.2}"));
                points.push(SweepPoint {
                    task: task_name.to_string(),
                    bits,
                    clip,
                    accuracy,
                });
            }
            rows.push(row);
        }
    }

    let table = markdown_table(
        &["task", "weight bits", "CLIP acc %", "NO_CLIP acc %"],
        &rows,
    );
    println!("{table}");
    match save_json("fig3_bitwidth", &points) {
        Ok(path) => println!("saved raw sweep data to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nExpected shape (paper Fig. 3): accuracy is stable down to 4-bit weights,\n\
         collapses at 2 bits, and tuned clipping (CLIP) degrades more gracefully\n\
         than NO_CLIP at low bit-widths."
    );
}
