//! Table II: ablation of which parts of BERT are quantized (weights &
//! activations, scale factors, softmax, layer norm), on the synthetic SST-2
//! task.
//!
//! Run with `cargo run -p fqbert-bench --bin table2_ablation --release`
//! (set `FQBERT_QUICK=1` for a fast smoke run).

use fqbert_bench::{markdown_table, save_json, ExperimentConfig};
use fqbert_bert::Trainer;
use fqbert_core::QatHook;
use fqbert_quant::QuantConfig;

#[derive(Debug)]
struct AblationRow {
    weights_activations: bool,
    scales: bool,
    softmax: bool,
    layer_norm: bool,
    accuracy: f64,
}

fqbert_bench::impl_to_json!(AblationRow {
    weights_activations,
    scales,
    softmax,
    layer_norm,
    accuracy
});

fn ablation_config(wa: bool, scales: bool, softmax: bool, layer_norm: bool) -> QuantConfig {
    let mut cfg = QuantConfig::fq_bert();
    cfg.quantize_weights_activations = wa;
    cfg.quantize_scales = scales;
    cfg.quantize_softmax = softmax;
    cfg.quantize_layer_norm = layer_norm;
    cfg
}

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Table II reproduction: quantization ablation on SST-2 ==\n");
    println!("training float baseline on synthetic SST-2 ...");
    let base = config.train_sst2();
    println!("float dev accuracy: {:.2}%\n", base.float_accuracy);

    // Cumulative ablation settings, in the paper's row order.
    let settings = [
        (false, false, false, false),
        (true, false, false, false),
        (true, true, false, false),
        (true, true, true, false),
        (true, true, true, true),
    ];

    let mut results = Vec::new();
    let mut rows = Vec::new();
    for &(wa, scales, softmax, layer_norm) in &settings {
        let accuracy = if !wa && !scales && !softmax && !layer_norm {
            base.float_accuracy
        } else {
            // Each ablation point fine-tunes its own copy of the float model
            // with exactly that set of quantizers in the loop, as the paper
            // does.
            let mut task = fqbert_bench::TrainedTask {
                model: base.model.clone(),
                dataset: base.dataset.clone(),
                float_accuracy: base.float_accuracy,
            };
            let quant = ablation_config(wa, scales, softmax, layer_norm);
            let mut hook: QatHook = config.qat_finetune(&mut task, quant);
            Trainer::evaluate(&task.model, &task.dataset.dev, &mut hook)
                .expect("evaluation failed")
                .accuracy
        };
        let mark = |b: bool| if b { "yes" } else { "-" }.to_string();
        rows.push(vec![
            mark(wa),
            mark(scales),
            mark(softmax),
            mark(layer_norm),
            format!("{accuracy:.2}"),
        ]);
        results.push(AblationRow {
            weights_activations: wa,
            scales,
            softmax,
            layer_norm,
            accuracy,
        });
        println!(
            "quantize w/a={wa} scales={scales} softmax={softmax} layer_norm={layer_norm}: {accuracy:.2}%"
        );
    }

    println!(
        "\n{}",
        markdown_table(
            &["w/a", "scale", "softmax", "layer norm", "accuracy %"],
            &rows
        )
    );
    match save_json("table2_ablation", &results) {
        Ok(path) => println!("saved raw results to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nExpected shape (paper Table II): each additional quantized part changes\n\
         accuracy by well under a point and the drop is not monotone — quantizing\n\
         softmax can even recover a little accuracy."
    );
}
