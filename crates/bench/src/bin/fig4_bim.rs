//! Figure 4: the two BIM variants (Type A vs Type B) — functional
//! equivalence and resource cost as the multiplier count M scales.
//!
//! Run with `cargo run -p fqbert-bench --bin fig4_bim --release`.

use fqbert_accel::bim::{exact_dot, Bim};
use fqbert_accel::config::BimVariant;
use fqbert_bench::{markdown_table, save_json};
use fqbert_tensor::RngSource;

#[derive(Debug)]
struct BimRow {
    m: usize,
    variant: String,
    adders: usize,
    shifters: usize,
    adder_bits: usize,
    exact_8x8: bool,
}

fqbert_bench::impl_to_json!(BimRow {
    m,
    variant,
    adders,
    shifters,
    adder_bits,
    exact_8x8
});

fn main() {
    println!("== Fig. 4 reproduction: BIM Type A vs Type B ==\n");
    let mut rng = RngSource::seed_from_u64(42);
    let mut rows = Vec::new();
    let mut results = Vec::new();

    for &m in &[4usize, 8, 16, 32] {
        for variant in [BimVariant::TypeA, BimVariant::TypeB] {
            let bim = Bim::new(m, variant);
            // Verify 8x8 bit-exactness on a random vector.
            let a: Vec<i8> = (0..512).map(|_| rng.usize_in(0, 255) as i8).collect();
            let b: Vec<i8> = (0..512).map(|_| rng.usize_in(0, 255) as i8).collect();
            let (sum, _) = bim.dot_8x8(&a, &b);
            let exact = sum == exact_dot(&a, &b);
            let res = bim.resources();
            rows.push(vec![
                m.to_string(),
                format!("{variant:?}"),
                res.adders.to_string(),
                res.shifters.to_string(),
                res.adder_bits.to_string(),
                if exact { "yes" } else { "NO" }.to_string(),
            ]);
            results.push(BimRow {
                m,
                variant: format!("{variant:?}"),
                adders: res.adders,
                shifters: res.shifters,
                adder_bits: res.adder_bits,
                exact_8x8: exact,
            });
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "M",
                "variant",
                "adders",
                "shifters",
                "adder bits",
                "8x8 exact"
            ],
            &rows
        )
    );
    match save_json("fig4_bim", &results) {
        Ok(path) => println!("\nsaved raw results to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nExpected shape (paper Fig. 4): both variants compute identical results; Type A\n\
         needs a single shifter per BIM (at the adder-tree output) while Type B needs one\n\
         per multiplier pair and wider adders, so Type A saves resources at every M."
    );
}
