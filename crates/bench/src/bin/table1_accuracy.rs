//! Table I: accuracy of FQ-BERT (w4/a8, quantization-aware fine-tuned,
//! integer-only inference) against the FP32 baseline on SST-2, MNLI and
//! MNLI-m, together with the weight compression ratio.
//!
//! Run with `cargo run -p fqbert-bench --bin table1_accuracy --release`
//! (set `FQBERT_QUICK=1` for a fast smoke run).

use fqbert_bench::{markdown_table, save_json, ExperimentConfig};
use fqbert_core::CompressionReport;
use fqbert_quant::QuantConfig;
use fqbert_runtime::BackendKind;

#[derive(Debug)]
struct Table1Row {
    model: String,
    bits: String,
    sst2: f64,
    mnli: f64,
    mnli_m: f64,
    compression: f64,
}

fqbert_bench::impl_to_json!(Table1Row {
    model,
    bits,
    sst2,
    mnli,
    mnli_m,
    compression
});

fn main() {
    let config = ExperimentConfig::from_env();
    println!("== Table I reproduction: FQ-BERT accuracy and compression ==\n");

    println!("training float baseline on synthetic SST-2 ...");
    let mut sst2 = config.train_sst2();
    println!("training float baseline on synthetic MNLI ...");
    let (mut mnli, splits) = config.train_mnli();
    let mnli_m_float = fqbert_bert::Trainer::evaluate_float(&mnli.model, &splits.mismatched.dev)
        .expect("evaluation failed")
        .accuracy;

    println!("quantization-aware fine-tuning (w4/a8) ...");
    let quant = QuantConfig::fq_bert();
    let sst2_hook = config.qat_finetune(&mut sst2, quant);
    let mnli_hook = config.qat_finetune(&mut mnli, quant);

    println!("building integer engines and evaluating through the unified runtime ...\n");
    let sst2_engine = sst2
        .engine_with_hook(BackendKind::Int, &sst2_hook)
        .expect("sst2 engine");
    let mnli_engine = mnli
        .engine_with_hook(BackendKind::Int, &mnli_hook)
        .expect("mnli engine");
    let sst2_acc = sst2_engine
        .evaluate(&sst2.dataset.dev)
        .expect("int evaluation failed")
        .accuracy;
    let mnli_acc = mnli_engine
        .evaluate(&splits.matched.dev)
        .expect("int evaluation failed")
        .accuracy;
    let mnli_m_acc = mnli_engine
        .evaluate(&splits.mismatched.dev)
        .expect("int evaluation failed")
        .accuracy;

    let compression = CompressionReport::for_model(&sst2.model, &quant);
    let ratio = compression.encoder_ratio(&sst2.model);

    let rows_data = vec![
        Table1Row {
            model: "BERT (float baseline)".to_string(),
            bits: "32/32".to_string(),
            sst2: sst2.float_accuracy,
            mnli: mnli.float_accuracy,
            mnli_m: mnli_m_float,
            compression: 1.0,
        },
        Table1Row {
            model: "FQ-BERT (integer engine)".to_string(),
            bits: "4/8".to_string(),
            sst2: sst2_acc,
            mnli: mnli_acc,
            mnli_m: mnli_m_acc,
            compression: ratio,
        },
    ];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.bits.clone(),
                format!("{:.2}", r.sst2),
                format!("{:.2}", r.mnli),
                format!("{:.2}", r.mnli_m),
                format!("{:.2}x", r.compression),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["model", "w/a", "SST-2", "MNLI", "MNLI-m", "comp. ratio"],
            &rows
        )
    );
    match save_json("table1_accuracy", &rows_data) {
        Ok(path) => println!("saved raw results to {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
    println!(
        "\nExpected shape (paper Table I): the 4/8 FQ-BERT stays within ~1 point of the\n\
         float baseline on SST-2 and within ~3-4 points on MNLI/MNLI-m, at an encoder\n\
         weight compression ratio of ~7.9x."
    );
}
