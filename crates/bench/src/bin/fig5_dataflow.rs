//! Figure 5: the dataflow / schedule of one encoder layer on the accelerator,
//! showing how weight loading is overlapped with compute and how the softmax
//! and LN cores run alongside the PE array.
//!
//! Run with `cargo run -p fqbert-bench --bin fig5_dataflow --release`.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{AcceleratorConfig, Scheduler};
use fqbert_bench::save_json;

fn main() {
    println!("== Fig. 5 reproduction: encoder-layer dataflow schedule ==\n");
    for config in [
        AcceleratorConfig::zcu102_n8_m16(),
        AcceleratorConfig::zcu111_n16_m16(),
    ] {
        let scheduler = Scheduler::new(config.clone());
        let trace = scheduler.schedule_layer(&EncoderShape::bert_base());
        println!(
            "{} (N={}, M={}), PE-array efficiency {:.3}",
            config.device.name(),
            config.pes_per_pu,
            config.multipliers_per_bim,
            scheduler.efficiency()
        );
        println!("{}", trace.render_gantt(64));
        println!(
            "layer critical path: {} cycles ({:.3} ms at {:.0} MHz)",
            trace.total_cycles,
            trace.total_cycles as f64 / config.frequency_hz * 1e3,
            config.frequency_hz / 1e6
        );
        println!(
            "PE busy {} cycles ({:.1}% utilisation), softmax {} cycles, LN {} cycles,",
            trace.pe_busy_cycles,
            100.0 * trace.pe_utilization(),
            trace.softmax_cycles,
            trace.ln_cycles
        );
        println!(
            "weight DMA {} cycles fully overlapped (stall cycles: {})\n",
            trace.dma_cycles, trace.dma_stall_cycles
        );
        if config.device.name() == "ZCU102" {
            if let Err(e) = save_json("fig5_dataflow_zcu102", &trace) {
                eprintln!("could not save results: {e}");
            }
        }
    }
    println!(
        "Legend: '#' 8x4-bit matrix stage on the PE array, '=' 8x8-bit attention stage,\n\
         's' softmax core, 'n' layer-norm core. As in the paper's Fig. 5, off-chip weight\n\
         transfer is completely hidden behind compute by the double-buffered weight buffer."
    );
}
