//! Report formatting and result persistence for the experiment binaries.

use serde::Serialize;
use std::path::Path;

/// Renders a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if any row has a different number of cells than the header.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "every row must have {} cells",
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Serialises `value` as pretty JSON under `results/<name>.json` (creating
/// the directory if needed) and returns the path written.
///
/// # Errors
///
/// Returns an I/O error if the directory or file cannot be written.
pub fn save_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_is_well_formed() {
        let table = markdown_table(
            &["config", "accuracy"],
            &[
                vec!["fp32".to_string(), "92.3".to_string()],
                vec!["w4/a8".to_string(), "91.5".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("config"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("w4/a8"));
    }

    #[test]
    #[should_panic(expected = "every row must have")]
    fn ragged_rows_panic() {
        let _ = markdown_table(&["a", "b"], &[vec!["only one".to_string()]]);
    }
}
