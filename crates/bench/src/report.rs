//! Report formatting and result persistence for the experiment binaries.
//!
//! Serialization is hand-rolled ([`ToJson`] plus the [`impl_to_json!`]
//! macro) because the repository builds without network access and therefore
//! without `serde`; the emitted files are plain JSON either way.

use std::path::Path;

/// Minimal JSON serialization used by [`save_json`].
///
/// Implement via [`impl_to_json!`] for plain field structs; enums can
/// implement it manually (usually as a string of the variant name).
pub trait ToJson {
    /// Renders the value as a JSON document fragment.
    fn to_json(&self) -> String;
}

macro_rules! to_json_display {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )+};
}

to_json_display!(bool, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! to_json_float {
    ($($t:ty),+) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                if self.is_finite() {
                    self.to_string()
                } else {
                    "null".to_string()
                }
            }
        }
    )+};
}

to_json_float!(f32, f64);

impl ToJson for str {
    fn to_json(&self) -> String {
        // Proper JSON escaping — Rust's `{:?}` uses `\u{..}` for control
        // characters, which JSON parsers reject.
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for ch in self.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        self.as_str().to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[\n  {}\n]", items.join(",\n  "))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        }
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(Row { name, accuracy });`
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> String {
                let fields: Vec<String> = vec![$(
                    format!("{:?}: {}", stringify!($field), $crate::ToJson::to_json(&self.$field)),
                )+];
                format!("{{{}}}", fields.join(", "))
            }
        }
    };
}

impl ToJson for fqbert_accel::dataflow::StageKind {
    fn to_json(&self) -> String {
        format!("{self:?}").to_json()
    }
}

impl_to_json!(fqbert_accel::StageTiming {
    name,
    kind,
    load_cycles,
    compute_cycles,
    load_start,
    compute_start,
    compute_end,
});

impl_to_json!(fqbert_accel::ScheduleTrace {
    stages,
    total_cycles,
    pe_busy_cycles,
    softmax_cycles,
    ln_cycles,
    dma_cycles,
    dma_stall_cycles,
    pe_critical_cycles,
});

impl_to_json!(fqbert_perf::PlatformResult {
    platform,
    latency_ms,
    power_watts,
    fps_per_watt,
});

/// Renders a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if any row has a different number of cells than the header.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            headers.len(),
            "every row must have {} cells",
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Serialises `value` as pretty JSON under `results/<name>.json` (creating
/// the directory if needed) and returns the path written.
///
/// # Errors
///
/// Returns an I/O error if the directory or file cannot be written.
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) -> std::io::Result<std::path::PathBuf> {
    save_json_in(Path::new("results"), name, value)
}

/// Serialises `value` as JSON to `<dir>/<name>.json` (creating the
/// directory if needed) and returns the path written. Used by bench
/// harnesses, which run with the package directory as CWD and therefore
/// resolve the workspace `results/` directory explicitly.
///
/// # Errors
///
/// Returns an I/O error if the directory or file cannot be written.
pub fn save_json_in<T: ToJson + ?Sized>(
    dir: &Path,
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, value.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_is_well_formed() {
        let table = markdown_table(
            &["config", "accuracy"],
            &[
                vec!["fp32".to_string(), "92.3".to_string()],
                vec!["w4/a8".to_string(), "91.5".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("config"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("w4/a8"));
    }

    #[test]
    #[should_panic(expected = "every row must have")]
    fn ragged_rows_panic() {
        let _ = markdown_table(&["a", "b"], &[vec!["only one".to_string()]]);
    }

    #[test]
    fn json_strings_are_escaped_with_valid_json_sequences() {
        assert_eq!("plain".to_json(), "\"plain\"");
        assert_eq!("say \"hi\"\\".to_json(), "\"say \\\"hi\\\"\\\\\"");
        assert_eq!("line\nbreak\ttab".to_json(), "\"line\\nbreak\\ttab\"");
        // Control characters must use JSON \u00XX, not Rust's \u{..}.
        assert_eq!("bell\u{7}".to_json(), "\"bell\\u0007\"");
        assert_eq!("esc\u{1b}[0m".to_json(), "\"esc\\u001b[0m\"");
    }

    #[test]
    fn json_composites_render() {
        assert_eq!(Some(1u32).to_json(), "1");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(vec![1u32, 2].to_json(), "[\n  1,\n  2\n]");
    }
}
