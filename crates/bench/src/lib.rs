//! Shared experiment pipeline for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper;
//! the common machinery (synthetic-data generation, float training, QAT
//! fine-tuning, report formatting) lives here so the binaries stay thin and
//! the experiments stay consistent with each other.
//!
//! Set the environment variable `FQBERT_QUICK=1` to run every experiment in a
//! reduced configuration (smaller datasets, fewer epochs) — useful for smoke
//! tests and CI.

pub mod pipeline;
pub mod report;

pub use pipeline::{ExperimentConfig, TrainedTask};
pub use report::{markdown_table, save_json, save_json_in, ToJson};
