//! Criterion benchmark of the accelerator cycle model itself (it is evaluated
//! thousands of times by design-space sweeps, so its own cost matters), plus
//! the scheduler over the three published configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{cycle_model, AcceleratorConfig, ResourceModel, Scheduler};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let shape = EncoderShape::bert_base();
    let mut group = c.benchmark_group("accelerator_models");
    for config in AcceleratorConfig::table_iii_configs() {
        let label = format!(
            "{}_{}x{}",
            config.device.name(),
            config.pes_per_pu,
            config.multipliers_per_bim
        );
        group.bench_with_input(
            BenchmarkId::new("latency_estimate", &label),
            &config,
            |b, cfg| b.iter(|| cycle_model::estimate_latency(black_box(cfg), &shape, 12)),
        );
        group.bench_with_input(
            BenchmarkId::new("layer_schedule", &label),
            &config,
            |b, cfg| {
                let scheduler = Scheduler::new(cfg.clone());
                b.iter(|| scheduler.schedule_layer(black_box(&shape)))
            },
        );
    }
    let resource_model = ResourceModel::new();
    group.bench_function("resource_estimate", |b| {
        b.iter(|| resource_model.estimate(black_box(&AcceleratorConfig::zcu111_n16_m16())))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
