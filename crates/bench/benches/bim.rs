//! Criterion benchmark of the BIM datapath (Fig. 4 companion): 8b×4b vs
//! 8b×8b modes and Type A vs Type B variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqbert_accel::bim::Bim;
use fqbert_accel::config::BimVariant;
use std::hint::black_box;

fn bench_bim(c: &mut Criterion) {
    let len = 768usize;
    let activations: Vec<i8> = (0..len).map(|i| ((i * 37) % 255) as i8).collect();
    let weights4: Vec<i8> = (0..len).map(|i| ((i * 13) % 15) as i8 - 7).collect();
    let weights8: Vec<i8> = (0..len).map(|i| ((i * 29) % 255) as i8).collect();

    let mut group = c.benchmark_group("bim_dot_product");
    for &m in &[8usize, 16, 32] {
        for variant in [BimVariant::TypeA, BimVariant::TypeB] {
            let bim = Bim::new(m, variant);
            group.bench_with_input(
                BenchmarkId::new(format!("8x4_{variant:?}"), m),
                &m,
                |b, _| b.iter(|| bim.dot_8x4(black_box(&activations), black_box(&weights4))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("8x8_{variant:?}"), m),
                &m,
                |b, _| b.iter(|| bim.dot_8x8(black_box(&activations), black_box(&weights8))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bim);
criterion_main!(benches);
