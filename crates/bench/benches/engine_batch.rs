//! Benchmark of the unified runtime's batched inference: one
//! `classify_batch` call over N sequences versus N batch-of-one calls on
//! the integer backend, the float backend for reference, the blocked
//! packed-weight GEMM kernel against the naive `matmul_i32` + scalar
//! requantize path it replaced, and every SIMD micro-kernel available on
//! this host against the scalar reference (`kernel_comparison`, with
//! derived speedups in the JSON report).
//!
//! Besides the console output, the run emits machine-readable
//! `results/BENCH_engine_batch.json` (perf trajectory),
//! `results/BENCH_artifact_size.json` (w4 artifact bytes, v1 legacy format
//! versus the nibble-packed v2 — tracking the on-disk halving, not just
//! claiming it) and `results/BENCH_thread_scaling.json` (sharded batch
//! execution across worker-pool sizes, with speedups over the serial
//! engine and the host's CPU count so a 1-core box's flat curve is
//! interpretable) via the fqbert-bench JSON emitter; CI runs this in quick
//! mode (`FQBERT_BENCH_MS`).

use criterion::{BenchmarkId, Criterion};
use fqbert_autograd::Graph;
use fqbert_bench::impl_to_json;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert, IntLinear, QatHook};
use fqbert_nlp::{Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, Engine, EngineBuilder, ModelArtifact};
use fqbert_tensor::gemm::{kernels, RequantParams};
use fqbert_tensor::{GemmScratch, IntTensor, RngSource};
use std::hint::black_box;
use std::path::Path;

const MAX_LEN: usize = 24;
const SEQ_LEN: usize = 16;

fn example(i: usize) -> Example {
    let mut tokens = vec![2usize];
    tokens.extend((0..SEQ_LEN - 2).map(|d| 4 + (i * 7 + d * 3) % 40));
    tokens.push(3);
    Example {
        segment_ids: vec![0; tokens.len()],
        attention_mask: vec![1; tokens.len()],
        token_ids: tokens,
        label: 0,
    }
}

fn engines() -> (Engine, Engine) {
    let words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 3);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..8 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(i), &mut hook)
            .expect("calibration");
    }
    let builder = || {
        EngineBuilder::new(TaskKind::Sst2)
            .vocab(vocab.clone(), MAX_LEN)
            .batch_size(64)
    };
    let int = builder()
        .backend(BackendKind::Int)
        .build_with_hook(&model, &hook)
        .expect("int engine");
    let float = builder()
        .backend(BackendKind::Float)
        .build(&model)
        .expect("float engine");
    (int, float)
}

fn bench_engine_batching(c: &mut Criterion) {
    let (int_engine, float_engine) = engines();
    let mut group = c.benchmark_group("engine_batch");
    for &batch in &[4usize, 16, 32] {
        let examples: Vec<Example> = (0..batch).map(example).collect();
        let encoded = EncodedBatch::from_examples(examples.clone());
        let singles: Vec<EncodedBatch> = examples
            .iter()
            .map(|e| EncodedBatch::from_examples(vec![e.clone()]))
            .collect();

        group.bench_with_input(BenchmarkId::new("int_batched", batch), &batch, |b, _| {
            b.iter(|| {
                int_engine
                    .classify_batch(black_box(&encoded))
                    .expect("batched")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("int_one_at_a_time", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    for single in &singles {
                        int_engine
                            .classify_batch(black_box(single))
                            .expect("single");
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("float_batched", batch), &batch, |b, _| {
            b.iter(|| {
                float_engine
                    .classify_batch(black_box(&encoded))
                    .expect("batched")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("float_one_at_a_time", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    for single in &singles {
                        float_engine
                            .classify_batch(black_box(single))
                            .expect("single");
                    }
                })
            },
        );
    }
    group.finish();
}

/// The blocked packed-weight kernel against the naive
/// `matmul_i32` + scalar-requantize path it replaced, on BERT-shaped
/// projections (rows = packed batch tokens, in/out = hidden/intermediate).
fn bench_blocked_vs_naive(c: &mut Criterion) {
    let mut rng = RngSource::seed_from_u64(42);
    let mut group = c.benchmark_group("int_linear_kernel");
    for &(rows, inf, outf) in &[
        (64usize, 128usize, 128usize),
        (64, 128, 512),
        (128, 256, 256),
    ] {
        let weight = rng.normal_tensor(&[inf, outf], 0.0, 0.3);
        let bias = rng.normal_tensor(&[outf], 0.0, 0.1);
        let layer = IntLinear::from_float(&weight, &bias, 8, None, 16.0, 16.0).expect("layer");
        let x = IntTensor::<i8>::from_vec(
            (0..rows * inf)
                .map(|i| ((i * 37 + 5) % 255) as i8)
                .collect(),
            &[rows, inf],
        )
        .expect("activations");
        assert_eq!(
            layer.forward(&x).expect("blocked"),
            layer.forward_naive(&x).expect("naive"),
            "kernels must stay bit-identical"
        );

        let shape = format!("{rows}x{inf}x{outf}");
        let mut scratch = GemmScratch::new();
        group.bench_with_input(BenchmarkId::new("blocked", &shape), &rows, |b, _| {
            b.iter(|| {
                layer
                    .forward_with_scratch(black_box(&x), &mut scratch)
                    .expect("blocked")
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", &shape), &rows, |b, _| {
            b.iter(|| layer.forward_naive(black_box(&x)).expect("naive"))
        });
    }
    group.finish();
}

/// Projection shapes the kernel comparison sweeps: rows are packed batch
/// tokens, in/out features are hidden/intermediate sized.
const KERNEL_SHAPES: [(usize, usize, usize); 2] = [(64, 128, 512), (128, 256, 256)];

/// Every GEMM micro-kernel available on this host against the scalar
/// reference, on int8 (wide-panel) and int4 (nibble-panel) projections,
/// plus each dispatch row's requantize epilogue on its own
/// (`requant_<kernel>` rows — the SSE2/AVX2 epilogues serve parameter sets
/// inside [`RequantParams::simd_exact`]). Outputs are asserted
/// bit-identical across kernels before timing; the derived
/// `kernel_comparison` section of `BENCH_engine_batch.json` adds speedups
/// over scalar.
fn bench_kernel_comparison(c: &mut Criterion) {
    let mut rng = RngSource::seed_from_u64(7);
    let mut group = c.benchmark_group("kernel_comparison");
    for &(rows, inf, outf) in &KERNEL_SHAPES {
        let bias = rng.normal_tensor(&[outf], 0.0, 0.1);
        let layers = [
            (
                "w8",
                IntLinear::from_float(
                    &rng.normal_tensor(&[inf, outf], 0.0, 0.3),
                    &bias,
                    8,
                    None,
                    16.0,
                    16.0,
                )
                .expect("w8 layer"),
            ),
            (
                "w4",
                IntLinear::from_float(
                    &rng.normal_tensor(&[inf, outf], 0.0, 0.3),
                    &bias,
                    4,
                    None,
                    16.0,
                    16.0,
                )
                .expect("w4 layer"),
            ),
        ];
        let x = IntTensor::<i8>::from_vec(
            (0..rows * inf)
                .map(|i| ((i * 37 + 5) % 255) as i8)
                .collect(),
            &[rows, inf],
        )
        .expect("activations");
        let shape = format!("{rows}x{inf}x{outf}");
        let mut scratch = GemmScratch::new();
        for (panel, layer) in &layers {
            assert_eq!(kernels::force(kernels::KernelKind::Scalar).name(), "scalar");
            let reference = layer.forward(&x).expect("scalar reference");
            for kind in kernels::available() {
                kernels::force(kind);
                assert_eq!(
                    layer.forward(&x).expect("forward"),
                    reference,
                    "{panel} outputs must stay bit-identical on {}",
                    kind.name()
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("{panel}_{}", kind.name()), &shape),
                    &rows,
                    |b, _| {
                        b.iter(|| {
                            layer
                                .forward_with_scratch(black_box(&x), &mut scratch)
                                .expect("forward")
                        })
                    },
                );
            }
        }
        kernels::force(kernels::best_available());

        // The requantize epilogue in isolation: every dispatch row's
        // kernel over the same accumulator block, checked against the
        // scalar row before timing. Parameters sit inside the SIMD-exact
        // envelope, the regime `gemm_i8_requant` routes to these kernels.
        let acc: Vec<i32> = (0..rows * outf)
            .map(|i| ((i as i64 * 2654435761 + 12345) % 200_000 - 100_000) as i32)
            .collect();
        let requant_bias: Vec<i32> = (0..outf).map(|i| (i as i32 * 977) % 3000 - 1500).collect();
        let params = RequantParams {
            multiplier: (1 << 30) / 3,
            shift: 38,
            clamp: 127,
        };
        assert!(params.simd_exact());
        let mut reference = vec![0i8; rows * outf];
        for (row, out) in reference.chunks_exact_mut(outf).enumerate() {
            (kernels::dispatch_for(kernels::KernelKind::Scalar).requant)(
                &acc[row * outf..(row + 1) * outf],
                &requant_bias,
                params,
                out,
            );
        }
        for kind in kernels::available() {
            let requant = kernels::dispatch_for(kind).requant;
            let mut out = vec![0i8; rows * outf];
            for (row, chunk) in out.chunks_exact_mut(outf).enumerate() {
                requant(
                    &acc[row * outf..(row + 1) * outf],
                    &requant_bias,
                    params,
                    chunk,
                );
            }
            assert_eq!(
                out,
                reference,
                "requant epilogue must stay bit-identical on {}",
                kind.name()
            );
            group.bench_with_input(
                BenchmarkId::new(format!("requant_{}", kind.name()), &shape),
                &rows,
                |b, _| {
                    b.iter(|| {
                        for (row, chunk) in out.chunks_exact_mut(outf).enumerate() {
                            requant(
                                black_box(&acc[row * outf..(row + 1) * outf]),
                                &requant_bias,
                                params,
                                chunk,
                            );
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

struct KernelComparisonRow {
    id: String,
    kernel: String,
    panel: String,
    shape: String,
    mean_ns: f64,
    speedup_vs_scalar: f64,
}

impl_to_json!(KernelComparisonRow {
    id,
    kernel,
    panel,
    shape,
    mean_ns,
    speedup_vs_scalar
});

/// Derives per-kernel speedups over the scalar reference from the raw
/// `kernel_comparison` bench rows (ids look like `w4_avx2/64x128x512`).
fn kernel_comparison_report(rows: &[criterion::BenchResult]) -> Vec<KernelComparisonRow> {
    let mut results = Vec::new();
    for row in rows {
        let Some((bench, shape)) = row.id.split_once('/') else {
            continue;
        };
        let Some((panel, kernel)) = bench.split_once('_') else {
            continue;
        };
        let scalar_ns = rows
            .iter()
            .find(|r| r.id == format!("{panel}_scalar/{shape}"))
            .map(|r| r.mean_ns);
        results.push(KernelComparisonRow {
            id: row.id.clone(),
            kernel: kernel.to_string(),
            panel: panel.to_string(),
            shape: shape.to_string(),
            mean_ns: row.mean_ns,
            speedup_vs_scalar: scalar_ns.map_or(1.0, |s| s / row.mean_ns),
        });
    }
    results
}

/// Thread counts the scaling group sweeps (1 = the serial baseline).
const SCALING_THREADS: [usize; 3] = [1, 2, 4];

/// Batch sizes the scaling group sweeps.
const SCALING_BATCHES: [usize; 2] = [16, 32];

/// Sharded batch classification on the int backend across worker-pool
/// sizes, on an encoder-dominated model (enough integer GEMM work per
/// sequence that sharding overhead is negligible). All engines load the
/// same artifact, so every variant computes bit-identical logits — asserted
/// before timing.
fn bench_thread_scaling(c: &mut Criterion) {
    let config = BertConfig {
        vocab_size: 44,
        hidden: 128,
        layers: 2,
        heads: 4,
        intermediate: 256,
        max_len: MAX_LEN,
        type_vocab_size: 2,
        num_classes: 2,
        layer_norm_eps: 1e-5,
    };
    let artifact = w4_artifact(config, 9);
    let engine_for = |threads: usize| {
        EngineBuilder::new(TaskKind::Sst2)
            .backend(BackendKind::Int)
            .batch_size(64)
            .threads(threads)
            .from_artifact(artifact.clone())
            .expect("scaling engine")
    };
    let engines: Vec<(usize, Engine)> = SCALING_THREADS
        .iter()
        .map(|&t| (t, engine_for(t)))
        .collect();

    let mut group = c.benchmark_group("thread_scaling");
    for &batch in &SCALING_BATCHES {
        let encoded = EncodedBatch::from_examples((0..batch).map(example).collect());
        let baseline = engines[0].1.classify_batch(&encoded).expect("serial");
        for (threads, engine) in &engines {
            assert_eq!(
                engine.classify_batch(&encoded).expect("parallel").logits,
                baseline.logits,
                "sharded execution must stay bit-identical before it is timed"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("int_t{threads}"), batch),
                &batch,
                |b, _| b.iter(|| engine.classify_batch(black_box(&encoded)).expect("batch")),
            );
        }
    }
    group.finish();
}

struct ThreadScalingRow {
    id: String,
    threads: u64,
    batch: u64,
    mean_ns: f64,
    seq_per_s: f64,
    speedup_vs_serial: f64,
}

impl_to_json!(ThreadScalingRow {
    id,
    threads,
    batch,
    mean_ns,
    seq_per_s,
    speedup_vs_serial
});

struct ThreadScalingReport {
    bench: String,
    budget_ms: u64,
    host_cpus: u64,
    results: Vec<ThreadScalingRow>,
}

impl_to_json!(ThreadScalingReport {
    bench,
    budget_ms,
    host_cpus,
    results
});

/// Derives the thread-scaling report (throughput and speedup over the
/// serial engine per batch size) from the raw `thread_scaling` bench rows.
fn thread_scaling_report(rows: &[criterion::BenchResult]) -> ThreadScalingReport {
    let mean_of = |threads: usize, batch: usize| -> Option<f64> {
        rows.iter()
            .find(|r| r.id == format!("int_t{threads}/{batch}"))
            .map(|r| r.mean_ns)
    };
    let mut results = Vec::new();
    for &batch in &SCALING_BATCHES {
        let serial_ns = mean_of(1, batch);
        for &threads in &SCALING_THREADS {
            let Some(mean_ns) = mean_of(threads, batch) else {
                continue;
            };
            results.push(ThreadScalingRow {
                id: format!("int_t{threads}/{batch}"),
                threads: threads as u64,
                batch: batch as u64,
                mean_ns,
                seq_per_s: batch as f64 / (mean_ns / 1e9),
                speedup_vs_serial: serial_ns.map_or(1.0, |s| s / mean_ns),
            });
        }
    }
    ThreadScalingReport {
        bench: "thread_scaling".to_string(),
        budget_ms: criterion::budget_ms(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        results,
    }
}

/// Builds a calibrated w4 artifact for an arbitrary architecture, the same
/// convert path the serving engines use.
fn w4_artifact(config: BertConfig, seed: u64) -> ModelArtifact {
    let words: Vec<String> = (0..config.vocab_size - 4)
        .map(|i| format!("w{i}"))
        .collect();
    let vocab = Vocab::from_tokens(&words);
    let max_len = config.max_len;
    let model = BertModel::new(config, seed);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..4 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(i), &mut hook)
            .expect("calibration");
    }
    let int_model = convert(&model, &hook).expect("conversion");
    ModelArtifact::new(TaskKind::Sst2, int_model, Tokenizer::new(vocab, max_len))
}

struct ArtifactSizeRow {
    id: String,
    weight_bits: u64,
    v1_bytes: u64,
    v2_bytes: u64,
    v2_over_v1: f64,
}

impl_to_json!(ArtifactSizeRow {
    id,
    weight_bits,
    v1_bytes,
    v2_bytes,
    v2_over_v1
});

struct ArtifactSizeReport {
    bench: String,
    results: Vec<ArtifactSizeRow>,
}

impl_to_json!(ArtifactSizeReport { bench, results });

/// Measures the on-disk size of w4 artifacts in the legacy v1 format versus
/// the nibble-packed v2 format, for the tiny serving model of this bench
/// and for an encoder-dominated architecture (the regime real checkpoints
/// live in, where the packing should roughly halve the file).
fn artifact_size_rows() -> Vec<ArtifactSizeRow> {
    let shapes = [
        ("tiny_serving", BertConfig::tiny(44, MAX_LEN, 2)),
        (
            "encoder_dominated",
            BertConfig {
                vocab_size: 44,
                hidden: 128,
                layers: 4,
                heads: 4,
                intermediate: 512,
                max_len: MAX_LEN,
                type_vocab_size: 2,
                num_classes: 2,
                layer_norm_eps: 1e-5,
            },
        ),
    ];
    shapes
        .into_iter()
        .map(|(id, config)| {
            let artifact = w4_artifact(config, 5);
            let v1 = artifact.to_bytes_v1().len() as u64;
            let v2 = artifact.to_bytes().len() as u64;
            ArtifactSizeRow {
                id: id.to_string(),
                weight_bits: u64::from(artifact.model.weight_bits()),
                v1_bytes: v1,
                v2_bytes: v2,
                v2_over_v1: v2 as f64 / v1 as f64,
            }
        })
        .collect()
}

struct BenchRow {
    group: String,
    id: String,
    mean_ns: f64,
    iterations: u64,
}

impl_to_json!(BenchRow {
    group,
    id,
    mean_ns,
    iterations
});

struct BenchReport {
    bench: String,
    budget_ms: u64,
    kernel: String,
    results: Vec<BenchRow>,
    kernel_comparison: Vec<KernelComparisonRow>,
}

impl_to_json!(BenchReport {
    bench,
    budget_ms,
    kernel,
    results,
    kernel_comparison
});

fn main() {
    let mut criterion = Criterion::default();
    bench_engine_batching(&mut criterion);
    bench_blocked_vs_naive(&mut criterion);
    bench_kernel_comparison(&mut criterion);
    bench_thread_scaling(&mut criterion);

    // The thread-scaling and kernel-comparison rows feed their own derived
    // reports; everything else stays in the engine_batch trajectory.
    let (scaling_rows, other_rows): (Vec<_>, Vec<_>) = criterion
        .take_results()
        .into_iter()
        .partition(|r| r.group == "thread_scaling");
    let (kernel_rows, other_rows): (Vec<_>, Vec<_>) = other_rows
        .into_iter()
        .partition(|r| r.group == "kernel_comparison");
    let results: Vec<BenchRow> = other_rows
        .into_iter()
        .map(|r| BenchRow {
            group: r.group,
            id: r.id,
            mean_ns: r.mean_ns,
            iterations: r.iterations,
        })
        .collect();
    let kernel_comparison = kernel_comparison_report(&kernel_rows);
    for row in &kernel_comparison {
        println!(
            "kernel_comparison {}: {:.3} ms, {:.2}x vs scalar",
            row.id,
            row.mean_ns / 1e6,
            row.speedup_vs_scalar
        );
    }
    let report = BenchReport {
        bench: "engine_batch".to_string(),
        budget_ms: criterion::budget_ms(),
        kernel: kernels::selected().name.to_string(),
        results,
        kernel_comparison,
    };
    // Benches run with the package directory as CWD; aim at the workspace
    // results/ directory so the perf trajectory lives next to the tables.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = fqbert_bench::save_json_in(&dir, "BENCH_engine_batch", &report)
        .expect("write BENCH_engine_batch.json");
    println!("wrote {}", path.display());

    let sizes = ArtifactSizeReport {
        bench: "artifact_size".to_string(),
        results: artifact_size_rows(),
    };
    for row in &sizes.results {
        println!(
            "artifact {} (w{}): v1 {} B → v2 {} B ({:.1}%)",
            row.id,
            row.weight_bits,
            row.v1_bytes,
            row.v2_bytes,
            100.0 * row.v2_over_v1
        );
    }
    let path = fqbert_bench::save_json_in(&dir, "BENCH_artifact_size", &sizes)
        .expect("write BENCH_artifact_size.json");
    println!("wrote {}", path.display());

    let scaling = thread_scaling_report(&scaling_rows);
    for row in &scaling.results {
        println!(
            "thread_scaling {}: {:.2} ms/batch, {:.0} seq/s, {:.2}x vs serial",
            row.id,
            row.mean_ns / 1e6,
            row.seq_per_s,
            row.speedup_vs_serial
        );
    }
    println!(
        "(host exposes {} CPU(s) — speedups flatten at the core count)",
        scaling.host_cpus
    );
    let path = fqbert_bench::save_json_in(&dir, "BENCH_thread_scaling", &scaling)
        .expect("write BENCH_thread_scaling.json");
    println!("wrote {}", path.display());
}
