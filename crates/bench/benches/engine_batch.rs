//! Criterion benchmark of the unified runtime's batched inference: one
//! `classify_batch` call over N sequences versus N batch-of-one calls on
//! the integer backend (first entry of the engine perf trajectory), plus
//! the float backend for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{Example, TaskKind, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, Engine, EngineBuilder};
use std::hint::black_box;

const MAX_LEN: usize = 24;
const SEQ_LEN: usize = 16;

fn example(i: usize) -> Example {
    let mut tokens = vec![2usize];
    tokens.extend((0..SEQ_LEN - 2).map(|d| 4 + (i * 7 + d * 3) % 40));
    tokens.push(3);
    Example {
        segment_ids: vec![0; tokens.len()],
        attention_mask: vec![1; tokens.len()],
        token_ids: tokens,
        label: 0,
    }
}

fn engines() -> (Engine, Engine) {
    let words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 3);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..8 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(i), &mut hook)
            .expect("calibration");
    }
    let builder = || {
        EngineBuilder::new(TaskKind::Sst2)
            .vocab(vocab.clone(), MAX_LEN)
            .batch_size(64)
    };
    let int = builder()
        .backend(BackendKind::Int)
        .build_with_hook(&model, &hook)
        .expect("int engine");
    let float = builder()
        .backend(BackendKind::Float)
        .build(&model)
        .expect("float engine");
    (int, float)
}

fn bench_engine_batching(c: &mut Criterion) {
    let (int_engine, float_engine) = engines();
    let mut group = c.benchmark_group("engine_batch");
    for &batch in &[4usize, 16, 32] {
        let examples: Vec<Example> = (0..batch).map(example).collect();
        let encoded = EncodedBatch::from_examples(examples.clone());
        let singles: Vec<EncodedBatch> = examples
            .iter()
            .map(|e| EncodedBatch::from_examples(vec![e.clone()]))
            .collect();

        group.bench_with_input(BenchmarkId::new("int_batched", batch), &batch, |b, _| {
            b.iter(|| {
                int_engine
                    .classify_batch(black_box(&encoded))
                    .expect("batched")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("int_one_at_a_time", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    for single in &singles {
                        int_engine
                            .classify_batch(black_box(single))
                            .expect("single");
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("float_batched", batch), &batch, |b, _| {
            b.iter(|| {
                float_engine
                    .classify_batch(black_box(&encoded))
                    .expect("batched")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("float_one_at_a_time", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    for single in &singles {
                        float_engine
                            .classify_batch(black_box(single))
                            .expect("single");
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batching);
criterion_main!(benches);
