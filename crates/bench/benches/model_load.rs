//! Model-loading benchmark: zero-copy lazy artifact loads against the
//! eager unpack path, cross-variant float-tensor dedup, and the serving
//! stack's response-cache hit path against a full engine round trip.
//!
//! Emits `results/BENCH_model_load.json` with, per variant, cold-start
//! time and resident bytes for the eager and lazy paths (before and after
//! the first forward materializes the weight panels), the dedup savings
//! of co-loading the w4 + w8 variants of one task through a shared
//! [`TensorCache`], and the cache-hit-over-engine speedup. Every
//! comparison asserts bit-identity before any timing, so the numbers can
//! never come from diverging outputs.

use fqbert_autograd::Graph;
use fqbert_bench::impl_to_json;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{TaskKind, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, Engine, EngineBuilder, TensorCache};
use fqbert_serve::telemetry::Scope;
use fqbert_serve::{BatchPolicy, BatchQueue, CacheKey, RequestInputs, ResponseCache};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const MAX_LEN: usize = 24;
const TEXTS: [&str; 3] = ["w1 w2 w3 w4", "w5 w6", "w7 w8 w9"];

fn builder() -> EngineBuilder {
    EngineBuilder::new(TaskKind::Sst2).backend(BackendKind::Int)
}

/// Saves calibrated w4 and w8 artifacts of one float model (identical
/// float tensors — the multi-variant serving scenario) and returns their
/// paths.
fn save_artifacts(dir: &Path) -> (PathBuf, PathBuf) {
    let words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 3);
    let mut paths = Vec::new();
    for (name, quant) in [("w4", QuantConfig::fq_bert()), ("w8", QuantConfig::w8a8())] {
        let mut hook = QatHook::calibration_only(quant);
        for i in 0..8 {
            let tokens: Vec<usize> = std::iter::once(2)
                .chain((0..5).map(|d| 4 + (i * 7 + d * 3) % 40))
                .chain(std::iter::once(3))
                .collect();
            let example = fqbert_nlp::Example {
                segment_ids: vec![0; tokens.len()],
                attention_mask: vec![1; tokens.len()],
                token_ids: tokens,
                label: 0,
            };
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound
                .forward(&mut graph, &example, &mut hook)
                .expect("calibration");
        }
        let engine = EngineBuilder::new(TaskKind::Sst2)
            .vocab(vocab.clone(), MAX_LEN)
            .backend(BackendKind::Int)
            .build_with_hook(&model, &hook)
            .expect("build engine");
        let path = dir.join(format!("model_load_{name}.fqbt"));
        engine.save(&path).expect("save artifact");
        paths.push(path);
    }
    (paths.remove(0), paths.remove(0))
}

/// Best-of-`reps` wall time of `load`, in microseconds, together with the
/// last engine it produced.
fn time_load(reps: usize, load: impl Fn() -> Engine) -> (f64, Engine) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let engine = load();
        best = best.min(start.elapsed().as_secs_f64() * 1e6);
        last = Some(engine);
    }
    (best, last.expect("at least one rep"))
}

/// Flattened logit bit patterns over the shared benchmark texts.
fn logits(engine: &Engine) -> Vec<u32> {
    engine
        .classify_texts(&TEXTS)
        .expect("classify")
        .iter()
        .flat_map(|s| s.logits.iter().map(|x| x.to_bits()))
        .collect()
}

struct VariantRow {
    id: String,
    cold_start_us: f64,
    resident_bytes: u64,
    resident_after_forward_bytes: u64,
}

impl_to_json!(VariantRow {
    id,
    cold_start_us,
    resident_bytes,
    resident_after_forward_bytes,
});

struct Report {
    bench: String,
    budget_ms: u64,
    lazy_over_eager_cold_start_speedup: f64,
    lazy_panel_fraction_of_eager: f64,
    independent_resident_bytes: u64,
    dedup_resident_bytes: u64,
    dedup_fraction: f64,
    dedup_shared_tensors: u64,
    cache_hit_us: f64,
    engine_round_trip_us: f64,
    cache_hit_speedup: f64,
    results: Vec<VariantRow>,
}

impl_to_json!(Report {
    bench,
    budget_ms,
    lazy_over_eager_cold_start_speedup,
    lazy_panel_fraction_of_eager,
    independent_resident_bytes,
    dedup_resident_bytes,
    dedup_fraction,
    dedup_shared_tensors,
    cache_hit_us,
    engine_round_trip_us,
    cache_hit_speedup,
    results,
});

fn main() {
    let dir = std::env::temp_dir().join("fqbert_model_load_bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let (w4_path, w8_path) = save_artifacts(&dir);
    let reps = (criterion::budget_ms() / 10).clamp(3, 20) as usize;

    // Phase 1: cold start. The eager path reads, CRC-checks, unpacks every
    // weight tensor to i16 codes and packs GEMM panels up front; the
    // zero-copy path validates the same bytes but defers all
    // materialization to first use.
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut fractions = Vec::new();
    for (name, path) in [("w4", &w4_path), ("w8", &w8_path)] {
        let (eager_us, eager) = time_load(reps, || builder().load_eager(path).expect("eager load"));
        let (lazy_us, lazy) = time_load(reps, || builder().load(path).expect("lazy load"));
        // Identity first: lazily materialized panels must reproduce the
        // eager logits bit for bit — otherwise the timings are meaningless.
        assert_eq!(
            logits(&eager),
            logits(&lazy),
            "{name}: lazy load diverges from eager"
        );
        let lazy_before = {
            let fresh = builder().load(path).expect("fresh lazy load");
            fresh.resident_bytes()
        };
        let (eager_resident, lazy_resident) = (eager.resident_bytes(), lazy.resident_bytes());
        // Per-variant with 10% noise headroom — the tiny test model makes
        // the w8 margin thin; the mean across variants is asserted strictly
        // below.
        assert!(
            lazy_us < eager_us * 1.1,
            "{name}: lazy cold start ({lazy_us:.0} us) must beat eager ({eager_us:.0} us)"
        );
        assert!(
            lazy_resident < eager_resident,
            "{name}: materialized lazy model ({lazy_resident} B) must stay below \
             the eager unpack path ({eager_resident} B)"
        );
        speedups.push(eager_us / lazy_us);
        fractions.push(lazy_resident as f64 / eager_resident as f64);
        println!(
            "{name}: cold start eager {eager_us:>8.0} us, lazy {lazy_us:>8.0} us \
             ({:.1}x); resident eager {eager_resident} B, lazy {lazy_before} B \
             cold / {lazy_resident} B after first forward",
            eager_us / lazy_us
        );
        rows.push(VariantRow {
            id: format!("{name}_eager"),
            cold_start_us: eager_us,
            resident_bytes: eager_resident as u64,
            resident_after_forward_bytes: eager_resident as u64,
        });
        rows.push(VariantRow {
            id: format!("{name}_lazy"),
            cold_start_us: lazy_us,
            resident_bytes: lazy_before as u64,
            resident_after_forward_bytes: lazy_resident as u64,
        });
    }

    let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!(
        mean_speedup > 1.0,
        "lazy cold start must beat eager on average ({mean_speedup:.2}x)"
    );

    // Phase 2: dedup. Loading both variants through one TensorCache shares
    // their float tensors (embeddings, layer norms, classifier); loading
    // them independently duplicates every one.
    let independent = builder().load(&w4_path).expect("w4").resident_bytes()
        + builder().load(&w8_path).expect("w8").resident_bytes();
    let mut cache = TensorCache::new();
    let first = builder()
        .load_with_cache(&w4_path, &mut cache)
        .expect("w4 shared");
    let second = builder()
        .load_with_cache(&w8_path, &mut cache)
        .expect("w8 shared");
    let shared = second.load_stats();
    // Naive per-engine sums double-count the tensors the second load
    // interned onto the first's allocations; subtracting the shared bytes
    // yields the pair's true footprint.
    let dedup = first.resident_bytes() + second.resident_bytes() - shared.shared_bytes;
    let fraction = dedup as f64 / independent as f64;
    assert_eq!(shared.shared_tensors, 7, "w8 must share all float tensors");
    assert!(
        fraction < 0.8,
        "dedup pair ({dedup} B) must reside under 0.8x of independent loads ({independent} B)"
    );
    println!(
        "dedup: independent {independent} B, shared {dedup} B ({:.2}x, {} tensor(s) interned)",
        fraction, shared.shared_tensors
    );

    // Phase 3: response-cache hit against a full engine round trip through
    // the batch queue. Bit-identity is asserted before any timing.
    let engine = Arc::new(builder().load(&w4_path).expect("serving engine"));
    // Immediate flushes: the engine-side number measures the engine, not
    // the batching delay window.
    let queue = Arc::new(BatchQueue::start(
        Arc::clone(&engine),
        BatchPolicy::immediate(),
    ));
    let response_cache = ResponseCache::new(32, &Scope::detached(""));
    let texts: Vec<String> = TEXTS.iter().map(|t| t.to_string()).collect();
    let key = CacheKey {
        model: "w4".to_string(),
        inputs: RequestInputs::Texts(texts),
    };
    let submit = || {
        let batch = EncodedBatch::from_texts(engine.tokenizer(), &TEXTS);
        queue.submit(batch.examples().to_vec()).wait()
    };
    let direct = submit().expect("direct round trip");
    let seeded = response_cache
        .get_or_serve(key.clone(), None, submit)
        .expect("seed the cache");
    let replay = response_cache
        .get_or_serve(key.clone(), None, || panic!("must replay"))
        .expect("replay");
    assert!(replay.cached, "repeat must be served from the cache");
    let bits = |r: &fqbert_serve::TicketResponse| -> Vec<u32> {
        r.results
            .iter()
            .flat_map(|s| s.logits.iter().map(|x| x.to_bits()))
            .collect()
    };
    assert_eq!(bits(&direct), bits(&seeded), "seed diverges from queue");
    assert_eq!(bits(&direct), bits(&replay), "replay diverges from queue");

    let timed_reps = reps.max(10);
    let mut engine_us = f64::INFINITY;
    for _ in 0..timed_reps {
        let start = Instant::now();
        submit().expect("engine round trip");
        engine_us = engine_us.min(start.elapsed().as_secs_f64() * 1e6);
    }
    let mut hit_us = f64::INFINITY;
    for _ in 0..timed_reps {
        let start = Instant::now();
        response_cache
            .get_or_serve(key.clone(), None, || panic!("must replay"))
            .expect("cache hit");
        hit_us = hit_us.min(start.elapsed().as_secs_f64() * 1e6);
    }
    let cache_speedup = engine_us / hit_us.max(f64::MIN_POSITIVE);
    assert!(
        cache_speedup >= 5.0,
        "cache hit ({hit_us:.1} us) must be at least 5x faster than the \
         engine round trip ({engine_us:.1} us)"
    );
    println!("response cache: engine {engine_us:.1} us, hit {hit_us:.1} us ({cache_speedup:.0}x)");
    queue.shutdown();

    let report = Report {
        bench: "model_load".to_string(),
        budget_ms: criterion::budget_ms(),
        lazy_over_eager_cold_start_speedup: mean_speedup,
        lazy_panel_fraction_of_eager: fractions.iter().sum::<f64>() / fractions.len() as f64,
        independent_resident_bytes: independent as u64,
        dedup_resident_bytes: dedup as u64,
        dedup_fraction: fraction,
        dedup_shared_tensors: shared.shared_tensors as u64,
        cache_hit_us: hit_us,
        engine_round_trip_us: engine_us,
        cache_hit_speedup: cache_speedup,
        results: rows,
    };
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = fqbert_bench::save_json_in(&dir, "BENCH_model_load", &report)
        .expect("write BENCH_model_load.json");
    println!("wrote {}", path.display());

    std::fs::remove_file(&w4_path).ok();
    std::fs::remove_file(&w8_path).ok();
}
