//! Criterion benchmark of the quantized special-function kernels: LUT softmax
//! and fixed-point layer norm against their float references.

use criterion::{criterion_group, criterion_main, Criterion};
use fqbert_quant::{QuantizedLayerNorm, SoftmaxLut};
use fqbert_tensor::{RngSource, Tensor};
use std::hint::black_box;

fn bench_softmax(c: &mut Criterion) {
    let seq = 128usize;
    let scores_f: Vec<f32> = (0..seq).map(|i| (i as f32 * 0.37).sin() * 8.0).collect();
    let scores_i: Vec<i32> = scores_f.iter().map(|&x| (x * 8.0) as i32).collect();
    let float_row = Tensor::from_vec(scores_f, &[1, seq]).expect("shape");
    let lut = SoftmaxLut::new(8.0, 255).expect("valid lut");

    let mut group = c.benchmark_group("softmax_row_128");
    group.bench_function("float_reference", |b| {
        b.iter(|| black_box(&float_row).softmax_rows().expect("softmax"))
    });
    group.bench_function("lut_integer", |b| {
        b.iter(|| lut.apply_row(black_box(&scores_i)))
    });
    group.finish();
}

fn bench_layernorm(c: &mut Criterion) {
    let hidden = 768usize;
    let mut rng = RngSource::seed_from_u64(1);
    let x = rng.normal_tensor(&[1, hidden], 0.0, 1.0);
    let gamma = Tensor::ones(&[hidden]);
    let beta = Tensor::zeros(&[hidden]);
    let ln_q = QuantizedLayerNorm::from_float(gamma.as_slice(), beta.as_slice(), 1e-5)
        .expect("valid params");
    let x_q: Vec<i8> = x.as_slice().iter().map(|&v| (v * 32.0) as i8).collect();
    let zeros = vec![0i8; hidden];

    let mut group = c.benchmark_group("layer_norm_768");
    group.bench_function("float_reference", |b| {
        b.iter(|| black_box(&x).layer_norm(&gamma, &beta, 1e-5).expect("ln"))
    });
    group.bench_function("fixed_point", |b| {
        b.iter(|| {
            ln_q.apply_residual(black_box(&x_q), 32.0, &zeros, 1.0, 32.0)
                .expect("quantized ln")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_softmax, bench_layernorm);
criterion_main!(benches);
