//! Criterion benchmark comparing the float GEMM used by the FP32 baseline
//! against the integer GEMM used by the FQ-BERT engine (the kernel-level view
//! of Table IV's CPU column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fqbert_tensor::{IntTensor, RngSource};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let mut rng = RngSource::seed_from_u64(n as u64);
        let a_f = rng.uniform_tensor(&[n, n], -1.0, 1.0);
        let b_f = rng.uniform_tensor(&[n, n], -1.0, 1.0);
        let a_i = IntTensor::<i8>::from_vec(
            a_f.as_slice().iter().map(|&x| (x * 127.0) as i8).collect(),
            &[n, n],
        )
        .expect("shape");
        let b_i = IntTensor::<i8>::from_vec(
            b_f.as_slice().iter().map(|&x| (x * 7.0) as i8).collect(),
            &[n, n],
        )
        .expect("shape");

        group.bench_with_input(BenchmarkId::new("f32", n), &n, |bench, _| {
            bench.iter(|| black_box(&a_f).matmul(black_box(&b_f)).expect("matmul"))
        });
        group.bench_with_input(BenchmarkId::new("int8_acc32", n), &n, |bench, _| {
            bench.iter(|| black_box(&a_i).matmul_i32(black_box(&b_i)).expect("matmul"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
