//! Criterion benchmark of one encoder layer: float forward pass vs the
//! integer-only FQ-BERT engine on the same (tiny) model.

use criterion::{criterion_group, criterion_main, Criterion};
use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel, NoopHook};
use fqbert_core::{convert, IntBertModel, QatHook};
use fqbert_nlp::Example;
use fqbert_quant::QuantConfig;
use std::hint::black_box;

fn setup() -> (BertModel, IntBertModel, Example) {
    let model = BertModel::new(BertConfig::tiny(60, 32, 2), 17);
    let tokens: Vec<usize> = (0..24).map(|i| 2 + (i * 3) % 50).collect();
    let example = Example {
        segment_ids: vec![0; tokens.len()],
        attention_mask: vec![1; tokens.len()],
        token_ids: tokens,
        label: 0,
    };
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for _ in 0..3 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example, &mut hook)
            .expect("calibration forward");
    }
    let int_model = convert(&model, &hook).expect("conversion");
    (model, int_model, example)
}

fn bench_encoder(c: &mut Criterion) {
    let (model, int_model, example) = setup();
    let mut group = c.benchmark_group("tiny_bert_seq24");
    group.bench_function("float_forward", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound
                .forward(&mut graph, black_box(&example), &mut NoopHook)
                .expect("forward")
        })
    });
    group.bench_function("integer_engine_forward", |b| {
        b.iter(|| {
            int_model
                .forward_logits(
                    black_box(&example.token_ids),
                    black_box(&example.segment_ids),
                )
                .expect("forward")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
