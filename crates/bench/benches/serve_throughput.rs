//! Serving-throughput benchmark: dynamic batching (`BatchQueue` merging
//! concurrent requests into one engine call) against the batch-size-1
//! baseline (every request flushed alone), both on the integer backend
//! with the same closed-loop producer traffic.
//!
//! Emits `results/BENCH_serve_throughput.json` with requests/second for
//! both policies and the dynamic-over-batch1 speedup; CI runs it in quick
//! mode (`FQBERT_BENCH_MS`) and uploads the artifact.
//!
//! A second phase overloads a *bounded* queue with ten times the producer
//! count and measures what admission control buys: client-observed
//! latency percentiles (p50/p95/p99, recorded into a telemetry
//! [`Histogram`]) over the completed requests plus the shed rate. That
//! phase emits `results/BENCH_serve_latency.json`.

use fqbert_autograd::Graph;
use fqbert_bench::impl_to_json;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{Example, TaskKind, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, Engine, EngineBuilder};
use fqbert_serve::telemetry::Histogram;
use fqbert_serve::{BatchPolicy, BatchQueue, ServeError};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_LEN: usize = 24;
const SEQ_LEN: usize = 6;
/// Concurrent closed-loop producers (clients with one request in flight).
const PRODUCERS: usize = 32;

fn example(i: usize) -> Example {
    let mut tokens = vec![2usize];
    tokens.extend((0..SEQ_LEN - 2).map(|d| 4 + (i * 7 + d * 3) % 40));
    tokens.push(3);
    Example {
        segment_ids: vec![0; tokens.len()],
        attention_mask: vec![1; tokens.len()],
        token_ids: tokens,
        label: 0,
    }
}

fn int_engine() -> Arc<Engine> {
    let words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 3);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..8 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(i), &mut hook)
            .expect("calibration");
    }
    Arc::new(
        EngineBuilder::new(TaskKind::Sst2)
            .vocab(vocab, MAX_LEN)
            .backend(BackendKind::Int)
            .batch_size(64)
            .build_with_hook(&model, &hook)
            .expect("int engine"),
    )
}

/// Interleaved measurement rounds per mode (A/B/A/B/… cancels slow drift
/// like thermal throttling out of the comparison).
const ROUNDS: usize = 3;

#[derive(Default)]
struct RunResult {
    requests: u64,
    seconds: f64,
    flushes: u64,
    flushed_sequences: u64,
    largest_flush: u64,
}

impl RunResult {
    fn accumulate(&mut self, other: &RunResult) {
        self.requests += other.requests;
        self.seconds += other.seconds;
        self.flushes += other.flushes;
        self.flushed_sequences += other.flushed_sequences;
        self.largest_flush = self.largest_flush.max(other.largest_flush);
    }

    fn mean_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_sequences as f64 / self.flushes as f64
        }
    }
}

/// Drives `PRODUCERS` closed-loop clients against one queue for roughly
/// `duration` and reports completed requests.
fn run_mode(engine: &Arc<Engine>, policy: BatchPolicy, duration: Duration) -> RunResult {
    let queue = Arc::new(BatchQueue::start(Arc::clone(engine), policy));
    // Warm up packing scratch and branch predictors outside the window.
    queue
        .classify((0..4).map(example).collect())
        .expect("warmup");
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut producers = Vec::new();
    for producer in 0..PRODUCERS {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        producers.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut i = producer;
            while !stop.load(Ordering::Relaxed) {
                queue.classify(vec![example(i)]).expect("benchmark request");
                completed += 1;
                i += PRODUCERS;
            }
            completed
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let requests: u64 = producers
        .into_iter()
        .map(|p| p.join().expect("producer"))
        .sum();
    let seconds = start.elapsed().as_secs_f64();
    let stats = queue.stats();
    queue.shutdown();
    RunResult {
        requests,
        seconds,
        // Includes the single four-sequence warmup flush — noise at any
        // realistic budget.
        flushes: stats.flushes,
        flushed_sequences: stats.sequences,
        largest_flush: stats.largest_flush,
    }
}

/// Producer count for the overload phase: ~10× the throughput load, far
/// beyond what the bounded queue admits, so shedding must engage.
const OVERLOAD_PRODUCERS: usize = PRODUCERS * 10;

struct LatencyRun {
    completed: u64,
    shed: u64,
    seconds: f64,
    latency: fqbert_serve::telemetry::HistogramSnapshot,
    flushes: u64,
    flushed_sequences: u64,
    largest_flush: u64,
}

/// Overloads a bounded queue with `OVERLOAD_PRODUCERS` closed-loop clients
/// and records client-observed latency for completed requests; shed
/// requests (`server_overloaded`) are counted instead.
fn run_overload(engine: &Arc<Engine>, policy: BatchPolicy, duration: Duration) -> LatencyRun {
    let queue = Arc::new(BatchQueue::start(Arc::clone(engine), policy));
    queue
        .classify((0..4).map(example).collect())
        .expect("warmup");
    let latency = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut producers = Vec::new();
    for producer in 0..OVERLOAD_PRODUCERS {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        let latency = Arc::clone(&latency);
        producers.push(std::thread::spawn(move || {
            let mut completed = 0u64;
            let mut shed = 0u64;
            let mut i = producer;
            while !stop.load(Ordering::Relaxed) {
                let sent = Instant::now();
                match queue.classify(vec![example(i)]) {
                    Ok(_) => {
                        latency.record_duration(sent.elapsed());
                        completed += 1;
                    }
                    Err(ServeError::ServerOverloaded) => {
                        shed += 1;
                        // Honour the error's contract: back off before
                        // retrying. Shed answers return immediately, so
                        // without this the producers spin-starve the
                        // flush worker on the queue mutex.
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => panic!("benchmark request failed: {e}"),
                }
                i += OVERLOAD_PRODUCERS;
            }
            (completed, shed)
        }));
    }
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let (mut completed, mut shed) = (0u64, 0u64);
    for producer in producers {
        let (c, s) = producer.join().expect("producer");
        completed += c;
        shed += s;
    }
    let seconds = start.elapsed().as_secs_f64();
    let stats = queue.stats();
    queue.shutdown();
    LatencyRun {
        completed,
        shed,
        seconds,
        latency: latency.snapshot(),
        flushes: stats.flushes,
        flushed_sequences: stats.sequences,
        largest_flush: stats.largest_flush,
    }
}

struct LatencyReport {
    bench: String,
    backend: String,
    budget_ms: u64,
    producers: usize,
    policy: String,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    requests_per_sec: f64,
    latency_p50_us: f64,
    latency_p95_us: f64,
    latency_p99_us: f64,
    latency_mean_us: f64,
    latency_max_us: u64,
    mean_flush: f64,
    largest_flush: u64,
}

impl_to_json!(LatencyReport {
    bench,
    backend,
    budget_ms,
    producers,
    policy,
    completed,
    shed,
    shed_rate,
    requests_per_sec,
    latency_p50_us,
    latency_p95_us,
    latency_p99_us,
    latency_mean_us,
    latency_max_us,
    mean_flush,
    largest_flush,
});

struct ModeRow {
    id: String,
    policy: String,
    producers: usize,
    requests: u64,
    seconds: f64,
    requests_per_sec: f64,
    mean_flush: f64,
    largest_flush: u64,
}

impl_to_json!(ModeRow {
    id,
    policy,
    producers,
    requests,
    seconds,
    requests_per_sec,
    mean_flush,
    largest_flush,
});

struct Report {
    bench: String,
    backend: String,
    budget_ms: u64,
    dynamic_over_batch1_speedup: f64,
    dynamic_batching_wins: bool,
    results: Vec<ModeRow>,
}

impl_to_json!(Report {
    bench,
    backend,
    budget_ms,
    dynamic_over_batch1_speedup,
    dynamic_batching_wins,
    results,
});

fn main() {
    let engine = int_engine();
    // Reuse the workspace-wide bench budget; each round gets two budgets
    // so the window spans many flushes even in quick mode.
    let duration = Duration::from_millis(criterion::budget_ms().max(10) * 2);

    let dynamic_policy = BatchPolicy {
        max_batch: PRODUCERS,
        max_delay: Duration::from_micros(300),
        max_queue: usize::MAX,
    };
    let batch1_policy = BatchPolicy::immediate();

    println!(
        "serve_throughput: {PRODUCERS} closed-loop producers, {ROUNDS} interleaved rounds of \
         {:.0} ms per mode",
        duration.as_secs_f64() * 1e3
    );
    let mut dynamic = RunResult::default();
    let mut batch1 = RunResult::default();
    for _ in 0..ROUNDS {
        dynamic.accumulate(&run_mode(&engine, dynamic_policy, duration));
        batch1.accumulate(&run_mode(&engine, batch1_policy, duration));
    }

    let dynamic_rps = dynamic.requests as f64 / dynamic.seconds;
    let batch1_rps = batch1.requests as f64 / batch1.seconds;
    let speedup = dynamic_rps / batch1_rps.max(f64::MIN_POSITIVE);
    println!(
        "  dynamic : {:>8.1} req/s ({} requests, mean flush {:.2}, largest {})",
        dynamic_rps,
        dynamic.requests,
        dynamic.mean_flush(),
        dynamic.largest_flush
    );
    println!(
        "  batch-1 : {:>8.1} req/s ({} requests, mean flush {:.2})",
        batch1_rps,
        batch1.requests,
        batch1.mean_flush()
    );
    println!("  speedup : {speedup:.2}x");

    let report = Report {
        bench: "serve_throughput".to_string(),
        backend: engine.backend().name().to_string(),
        budget_ms: criterion::budget_ms(),
        dynamic_over_batch1_speedup: speedup,
        dynamic_batching_wins: dynamic_rps > batch1_rps,
        results: vec![
            ModeRow {
                id: "dynamic".to_string(),
                policy: format!(
                    "max_batch={} max_delay_ms={}",
                    dynamic_policy.max_batch,
                    dynamic_policy.max_delay.as_secs_f64() * 1e3
                ),
                producers: PRODUCERS,
                requests: dynamic.requests,
                seconds: dynamic.seconds,
                requests_per_sec: dynamic_rps,
                mean_flush: dynamic.mean_flush(),
                largest_flush: dynamic.largest_flush,
            },
            ModeRow {
                id: "batch1".to_string(),
                policy: "max_batch=1 max_delay_ms=0".to_string(),
                producers: PRODUCERS,
                requests: batch1.requests,
                seconds: batch1.seconds,
                requests_per_sec: batch1_rps,
                mean_flush: batch1.mean_flush(),
                largest_flush: batch1.largest_flush,
            },
        ],
    };
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = fqbert_bench::save_json_in(&dir, "BENCH_serve_throughput", &report)
        .expect("write BENCH_serve_throughput.json");
    println!("wrote {}", path.display());

    // Overload phase: ten-fold producers against a bounded queue. The
    // bound (two flush windows deep) keeps admitted-request latency flat
    // while the excess is shed with `server_overloaded`.
    let overload_policy = BatchPolicy {
        max_batch: PRODUCERS,
        max_delay: Duration::from_micros(300),
        max_queue: PRODUCERS * 2,
    };
    println!(
        "serve_latency: {OVERLOAD_PRODUCERS} closed-loop producers against a \
         {}-sequence queue bound, {:.0} ms window",
        overload_policy.max_queue,
        duration.as_secs_f64() * 1e3
    );
    let overload = run_overload(&engine, overload_policy, duration);
    let answered = overload.completed + overload.shed;
    let shed_rate = overload.shed as f64 / (answered.max(1)) as f64;
    println!(
        "  completed: {} req ({:.1} req/s), shed: {} ({:.1}% of {} answered)",
        overload.completed,
        overload.completed as f64 / overload.seconds,
        overload.shed,
        shed_rate * 100.0,
        answered
    );
    println!(
        "  latency  : p50 {:.0} us, p95 {:.0} us, p99 {:.0} us, max {} us",
        overload.latency.p50(),
        overload.latency.p95(),
        overload.latency.p99(),
        overload.latency.max
    );
    let latency_report = LatencyReport {
        bench: "serve_latency".to_string(),
        backend: engine.backend().name().to_string(),
        budget_ms: criterion::budget_ms(),
        producers: OVERLOAD_PRODUCERS,
        policy: format!(
            "max_batch={} max_delay_ms={} max_queue={}",
            overload_policy.max_batch,
            overload_policy.max_delay.as_secs_f64() * 1e3,
            overload_policy.max_queue
        ),
        completed: overload.completed,
        shed: overload.shed,
        shed_rate,
        requests_per_sec: overload.completed as f64 / overload.seconds,
        latency_p50_us: overload.latency.p50(),
        latency_p95_us: overload.latency.p95(),
        latency_p99_us: overload.latency.p99(),
        latency_mean_us: overload.latency.mean(),
        latency_max_us: overload.latency.max,
        mean_flush: if overload.flushes == 0 {
            0.0
        } else {
            overload.flushed_sequences as f64 / overload.flushes as f64
        },
        largest_flush: overload.largest_flush,
    };
    let path = fqbert_bench::save_json_in(&dir, "BENCH_serve_latency", &latency_report)
        .expect("write BENCH_serve_latency.json");
    println!("wrote {}", path.display());
}
