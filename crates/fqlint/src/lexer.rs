//! A hand-rolled Rust lexer sufficient for token-stream lint rules.
//!
//! The lexer recognises every surface form that matters for *not
//! misreading* Rust source — strings (plain, raw, byte, raw-byte), char and
//! byte literals, lifetimes, nested block comments, numeric literals with
//! suffixes — and deliberately does not build a syntax tree: the rule
//! engine in [`crate::rules`] works on the flat token stream. Numeric
//! literals are classified int vs float (and carry their value when it fits
//! a `u128`) because the float-escape and narrowing-cast rules depend on
//! exactly that distinction.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Integer literal, any base, with or without suffix.
    Int,
    /// Float literal (`1.0`, `1.`, `1e3`, `2f32`, ...).
    Float,
    /// String-ish literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`,
    /// `br#"..."#`.
    Str,
    /// Char literal `'x'` (including escapes) or byte literal `b'x'`.
    Char,
    /// `// ...` comment (doc comments included).
    LineComment,
    /// `/* ... */` comment, nesting respected (doc comments included).
    BlockComment,
    /// Any single punctuation character (`.`, `(`, `[`, `!`, ...).
    Punct,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The token's integer value, when it is an integer literal whose value
    /// fits `u128` (underscores stripped; hex/octal/binary handled).
    pub fn int_value(&self) -> Option<u128> {
        if self.kind != TokKind::Int {
            return None;
        }
        let digits: String = self.text.chars().filter(|c| *c != '_').collect();
        let (radix, body) =
            if let Some(rest) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
                (16, rest)
            } else if let Some(rest) = digits.strip_prefix("0o").or(digits.strip_prefix("0O")) {
                (8, rest)
            } else if let Some(rest) = digits.strip_prefix("0b").or(digits.strip_prefix("0B")) {
                (2, rest)
            } else {
                (10, digits.as_str())
            };
        // Strip a type suffix (`u8`, `i64`, `usize`, ...): the value part is
        // the longest prefix of valid digits for the radix.
        let value_len = body.chars().take_while(|c| c.is_digit(radix)).count();
        if value_len == 0 {
            return None;
        }
        u128::from_str_radix(&body[..value_len], radix).ok()
    }
}

/// A lexing failure: the offending line and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the failure.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

/// Lexes `src` into a token stream (comments included).
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings/comments/chars or bytes
/// that cannot start any Rust token. Every `.rs` file in this workspace
/// must lex cleanly; a `LexError` is itself a reportable finding.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(token) = lx.next_token()? {
        tokens.push(token);
    }
    Ok(tokens)
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.src.get(self.pos).copied();
        if let Some(b) = byte {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        byte
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        // Skip whitespace.
        while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
        let Some(byte) = self.peek(0) else {
            return Ok(None);
        };
        let start = self.pos;
        let line = self.line;
        let token = |kind, text| Token { kind, text, line };

        // Comments.
        if byte == b'/' && self.peek(1) == Some(b'/') {
            while self.peek(0).is_some_and(|b| b != b'\n') {
                self.bump();
            }
            return Ok(Some(token(TokKind::LineComment, self.text_from(start))));
        }
        if byte == b'/' && self.peek(1) == Some(b'*') {
            self.bump();
            self.bump();
            let mut depth = 1usize;
            loop {
                match (self.peek(0), self.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        self.bump();
                        self.bump();
                        depth += 1;
                    }
                    (Some(b'*'), Some(b'/')) => {
                        self.bump();
                        self.bump();
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(_), _) => {
                        self.bump();
                    }
                    (None, _) => return Err(self.error("unterminated block comment")),
                }
            }
            return Ok(Some(token(TokKind::BlockComment, self.text_from(start))));
        }

        // Raw strings / raw identifiers / byte strings (r, b, br prefixes).
        if byte == b'r' || byte == b'b' {
            if let Some(tok) = self.maybe_prefixed_literal(start, line)? {
                return Ok(Some(tok));
            }
        }

        // Identifiers and keywords.
        if byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80 {
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80)
            {
                self.bump();
            }
            return Ok(Some(token(TokKind::Ident, self.text_from(start))));
        }

        // Numbers.
        if byte.is_ascii_digit() {
            let kind = self.lex_number()?;
            return Ok(Some(token(kind, self.text_from(start))));
        }

        // Lifetimes and char literals.
        if byte == b'\'' {
            let kind = self.lex_quote()?;
            return Ok(Some(token(kind, self.text_from(start))));
        }

        // Plain strings.
        if byte == b'"' {
            self.bump();
            self.lex_string_body()?;
            return Ok(Some(token(TokKind::Str, self.text_from(start))));
        }

        // Everything else: single punctuation characters.
        if byte.is_ascii_punctuation() {
            self.bump();
            return Ok(Some(token(TokKind::Punct, self.text_from(start))));
        }
        Err(self.error(format!("unexpected byte 0x{byte:02x}")))
    }

    /// Handles `r`/`b`-prefixed literals: raw strings `r"…"`/`r#"…"#`, raw
    /// identifiers `r#name`, byte strings `b"…"`, byte chars `b'x'`, and
    /// raw byte strings `br#"…"#`. Returns `None` when the prefix is just
    /// the start of an ordinary identifier.
    fn maybe_prefixed_literal(
        &mut self,
        start: usize,
        line: u32,
    ) -> Result<Option<Token>, LexError> {
        let first = self.peek(0);
        let token = |kind, text| Token { kind, text, line };
        let (raw_at, str_at): (usize, usize) = match (first, self.peek(1)) {
            // r"..."  or  r#... (raw string or raw ident)
            (Some(b'r'), Some(b'"')) => (usize::MAX, 1),
            (Some(b'r'), Some(b'#')) => (1, usize::MAX),
            // b"..."  b'...'  br"..."  br#"..."#
            (Some(b'b'), Some(b'"')) => (usize::MAX, 1),
            (Some(b'b'), Some(b'\'')) => {
                self.bump(); // b
                self.bump(); // '
                self.lex_char_body()?;
                return Ok(Some(token(TokKind::Char, self.text_from(start))));
            }
            (Some(b'b'), Some(b'r')) => match self.peek(2) {
                Some(b'"') => (usize::MAX, 2),
                Some(b'#') => (2, usize::MAX),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        if raw_at != usize::MAX {
            // Count the hashes after the prefix; a quote must follow for
            // this to be a raw string, otherwise it is a raw identifier.
            let mut hashes = 0usize;
            while self.peek(raw_at + hashes) == Some(b'#') {
                hashes += 1;
            }
            match self.peek(raw_at + hashes) {
                Some(b'"') => {
                    for _ in 0..raw_at + hashes + 1 {
                        self.bump();
                    }
                    self.lex_raw_string_body(hashes)?;
                    return Ok(Some(token(TokKind::Str, self.text_from(start))));
                }
                _ if raw_at == 1 && hashes == 1 => {
                    // r#ident: lex as an identifier.
                    self.bump(); // r
                    self.bump(); // #
                    while self
                        .peek(0)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                    {
                        self.bump();
                    }
                    return Ok(Some(token(TokKind::Ident, self.text_from(start))));
                }
                _ => return Ok(None),
            }
        }
        // Non-raw string at offset `str_at`.
        for _ in 0..str_at + 1 {
            self.bump();
        }
        self.lex_string_body()?;
        Ok(Some(token(TokKind::Str, self.text_from(start))))
    }

    /// Consumes a raw string body after the opening quote, until a quote
    /// followed by `hashes` hash characters.
    fn lex_raw_string_body(&mut self, hashes: usize) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.error("unterminated raw string")),
            }
        }
    }

    /// Consumes a plain string body after the opening quote.
    fn lex_string_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => {
                    // Any escape: skip the escaped character (covers \" \\
                    // \n \u{...} and line continuations alike).
                    self.bump();
                }
                Some(_) => {}
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    /// Consumes a char-literal body after the opening quote.
    fn lex_char_body(&mut self) -> Result<(), LexError> {
        match self.bump() {
            Some(b'\\') => {
                match self.bump() {
                    Some(b'u') => {
                        // \u{...}
                        if self.peek(0) == Some(b'{') {
                            while self.peek(0).is_some_and(|b| b != b'}') {
                                self.bump();
                            }
                            self.bump();
                        }
                    }
                    Some(_) => {}
                    None => return Err(self.error("unterminated char literal")),
                }
            }
            Some(_) => {}
            None => return Err(self.error("unterminated char literal")),
        }
        match self.bump() {
            Some(b'\'') => Ok(()),
            _ => Err(self.error("unterminated char literal")),
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) and lexes either.
    fn lex_quote(&mut self) -> Result<TokKind, LexError> {
        self.bump(); // opening quote
        let next = self.peek(0);
        let after = self.peek(1);
        let is_ident_char =
            |b: Option<u8>| b.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
        if is_ident_char(next) && after != Some(b'\'') {
            // Lifetime: 'a, 'static, '_ — no closing quote.
            while is_ident_char(self.peek(0)) {
                self.bump();
            }
            return Ok(TokKind::Lifetime);
        }
        self.lex_char_body()?;
        Ok(TokKind::Char)
    }

    /// Lexes a numeric literal starting at an ASCII digit, classifying it
    /// int vs float. Handles `0x/0o/0b` bases, underscores, exponents,
    /// trailing-dot floats, and type suffixes.
    fn lex_number(&mut self) -> Result<TokKind, LexError> {
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            return Ok(TokKind::Int);
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.bump();
        }
        let mut float = false;
        // A dot makes it a float unless it starts a range (`1..n`) or a
        // method/field access (`1.max(2)`).
        if self.peek(0) == Some(b'.') {
            let after = self.peek(1);
            let starts_ident =
                after.is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b >= 0x80);
            if after != Some(b'.') && !starts_ident {
                float = true;
                self.bump();
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.bump();
                }
            }
        }
        // Exponent part (`1e5`, `2.5E-3`).
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exp_digit = |b: Option<u8>| b.is_some_and(|b| b.is_ascii_digit());
            if exp_digit(sign) || (matches!(sign, Some(b'+' | b'-')) && exp_digit(digit)) {
                float = true;
                self.bump();
                self.bump();
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.bump();
                }
            }
        }
        // Type suffix (`u8`, `i64`, `f32`, `usize`, ...).
        let suffix_start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        Ok(if float { TokKind::Float } else { TokKind::Int })
    }
}
