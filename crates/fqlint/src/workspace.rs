//! Workspace walking and per-file rule scoping.
//!
//! Which rules run where is the lint *policy* of this repository:
//!
//! * **R1 `float-escape`** runs on the designated integer-datapath
//!   modules — the int forward path, the integer GEMM and nibble packing,
//!   and the requantize/softmax-LUT apply paths.
//! * **R2 `narrowing-cast`** runs on all library code of the datapath
//!   crates (`crates/tensor`, `crates/quant`).
//! * **R3 `panic-path`** and **R4 `lock-hygiene`** run on all library code
//!   of the serving stack (`crates/serve`, `crates/runtime`) and of the
//!   telemetry crate (`crates/telemetry`) its hot paths record into.
//! * **R5 `unsafe-outside-kernels`** runs on *all* library code: `unsafe`
//!   is forbidden everywhere except the designated SIMD kernel modules,
//!   where each occurrence must carry a justified allow comment.
//!
//! Test targets (`tests/`, `benches/`, `examples/`, `src/bin/`,
//! `build.rs`) are lexed — the whole workspace must parse — but exempt
//! from the rules: panicking asserts are what tests are made of.

use crate::report::WorkspaceReport;
use crate::rules::{analyze_source, RuleSet};
use std::path::{Path, PathBuf};

/// Files R1 float-escape applies to (workspace-relative, `/`-separated).
/// The SIMD kernel modules under `gemm/kernels/` are included: they are
/// the innermost integer datapath and must never touch a float.
const FLOAT_ESCAPE_FILES: [&str; 5] = [
    "crates/fqbert/src/int_model.rs",
    "crates/tensor/src/gemm/mod.rs",
    "crates/tensor/src/pack4.rs",
    "crates/quant/src/requant.rs",
    "crates/quant/src/softmax_lut.rs",
];

/// Module trees where `unsafe` is legitimate — the SIMD micro-kernels,
/// whose intrinsics are inherently unsafe. R5 still demands a justified
/// allow comment on every occurrence inside these trees; everywhere else
/// `unsafe` is a violation outright.
const KERNEL_MODULE_TREES: [&str; 1] = ["crates/tensor/src/gemm/kernels/"];

/// Crate source trees R2 narrowing-cast applies to.
const NARROWING_CAST_TREES: [&str; 2] = ["crates/tensor/src/", "crates/quant/src/"];

/// Crate source trees R3/R4 (panic-free serving, lock hygiene) apply to.
const SERVING_TREES: [&str; 3] = [
    "crates/serve/src/",
    "crates/runtime/src/",
    "crates/telemetry/src/",
];

/// Directories never walked: build output, VCS metadata, and fqlint's own
/// known-bad rule fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Path fragments that mark a file as a non-library target.
const AUX_MARKERS: [&str; 4] = ["/tests/", "/benches/", "/examples/", "/src/bin/"];

/// The rule families applicable to `rel` (a `/`-separated
/// workspace-relative path).
pub fn rules_for_path(rel: &str) -> RuleSet {
    if is_aux_target(rel) {
        return RuleSet::default();
    }
    // fqlint's own sources are exempt: its docs and diagnostics spell out
    // deliberately malformed `fqlint::allow` examples, which the directive
    // parser would report as bad suppressions.
    if rel.starts_with("crates/fqlint/") {
        return RuleSet::default();
    }
    let in_kernel_module = KERNEL_MODULE_TREES.iter().any(|t| rel.starts_with(t));
    RuleSet {
        float_escape: FLOAT_ESCAPE_FILES.contains(&rel)
            || (in_kernel_module && rel.ends_with(".rs")),
        narrowing_cast: NARROWING_CAST_TREES.iter().any(|t| rel.starts_with(t)),
        panic_path: SERVING_TREES.iter().any(|t| rel.starts_with(t)),
        lock_hygiene: SERVING_TREES.iter().any(|t| rel.starts_with(t)),
        unsafe_outside_kernels: true,
        in_kernel_module,
    }
}

/// Whether `rel` is a test/bench/example/bin/build target rather than
/// library code.
pub fn is_aux_target(rel: &str) -> bool {
    let slashed = format!("/{rel}");
    AUX_MARKERS.iter().any(|m| slashed.contains(m)) || rel.ends_with("build.rs")
}

/// Recursively collects every `.rs` file under `root`, skipping build
/// output, VCS metadata and fqlint's own rule fixtures. Paths come back
/// sorted for deterministic reports.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                // fqlint's golden fixtures are deliberate rule violations.
                if path.ends_with("crates/fqlint/tests/fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the full analysis over the workspace at `root`.
///
/// # Errors
///
/// Propagates I/O failures walking or reading files; lexer failures are
/// collected into the report instead (they fail the run, with context).
pub fn run(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for path in collect_rust_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let rules = rules_for_path(&rel);
        if rules.any() {
            report.files_checked += 1;
        }
        match analyze_source(&rel, &src, rules) {
            Ok(analysis) => {
                report.findings.extend(analysis.findings);
                report.suppressed.extend(analysis.suppressed);
            }
            Err(err) => report.lex_errors.push((rel, err.to_string())),
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Finds the workspace root: the nearest ancestor of `start` (inclusive)
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
