//! Human and machine-readable rendering of an analysis run.
//!
//! The JSON writer is hand-rolled (the workspace builds fully offline, no
//! serde); the format is stable and consumed by the CI artifact upload.

use crate::rules::{Finding, RuleId, Suppressed};
use std::collections::BTreeMap;

/// Outcome of analysing the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Workspace-relative paths of every `.rs` file the lexer parsed.
    pub files_scanned: usize,
    /// Files each rule family actually ran on.
    pub files_checked: usize,
    /// Unsuppressed findings, ordered by (file, line).
    pub findings: Vec<Finding>,
    /// Findings silenced by justified `fqlint::allow` comments.
    pub suppressed: Vec<Suppressed>,
    /// Files the lexer failed on, with the error message. Always a hard
    /// failure: the tool must be able to read the whole workspace.
    pub lex_errors: Vec<(String, String)>,
}

impl WorkspaceReport {
    /// Whether the run found nothing wrong (no findings, no lexer errors).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.lex_errors.is_empty()
    }

    /// Finding counts per rule name, including zeroes for silent rules.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for rule in RuleId::ALL {
            counts.insert(rule.name(), 0);
        }
        for finding in &self.findings {
            *counts.entry(finding.rule.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Renders the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (file, err) in &self.lex_errors {
            out.push_str(&format!("error[lexer]: {file}: {err}\n"));
        }
        for finding in &self.findings {
            out.push_str(&format!(
                "{}[{}]: {}:{}: {}\n",
                finding.rule.severity().name(),
                finding.rule.name(),
                finding.file,
                finding.line,
                finding.message
            ));
        }
        out.push_str(&format!(
            "fqlint: {} file(s) scanned, {} checked by rules; {} finding(s), \
             {} suppressed with justification, {} lexer error(s)\n",
            self.files_scanned,
            self.files_checked,
            self.findings.len(),
            self.suppressed.len(),
            self.lex_errors.len()
        ));
        out
    }

    /// Renders the machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"fqlint\",\n");
        out.push_str("  \"format_version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str("  \"summary\": {");
        let counts = self.counts();
        let entries: Vec<String> = counts
            .iter()
            .map(|(rule, count)| format!("\"{rule}\": {count}"))
            .collect();
        out.push_str(&entries.join(", "));
        out.push_str("},\n");
        out.push_str("  \"findings\": [\n");
        let rows: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"severity\": {}, \
                     \"message\": {}}}",
                    json_str(&f.file),
                    f.line,
                    json_str(f.rule.name()),
                    json_str(f.rule.severity().name()),
                    json_str(&f.message)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressed\": [\n");
        let rows: Vec<String> = self
            .suppressed
            .iter()
            .map(|s| {
                format!(
                    "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"justification\": {}}}",
                    json_str(&s.finding.file),
                    s.finding.line,
                    json_str(s.finding.rule.name()),
                    json_str(&s.justification)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"lex_errors\": [\n");
        let rows: Vec<String> = self
            .lex_errors
            .iter()
            .map(|(file, err)| {
                format!(
                    "    {{\"file\": {}, \"error\": {}}}",
                    json_str(file),
                    json_str(err)
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        if !rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
