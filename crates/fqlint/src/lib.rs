//! `fqlint` — workspace static analysis for the fully-quantized invariant
//! and panic-free serving.
//!
//! The paper's central claim is that the inference datapath is *fully
//! quantized*, and the serving stack's claim is that edge-case input
//! degrades a request, never a worker thread. Neither property is visible
//! to `rustc` or clippy; both are one careless edit away from silently
//! regressing. This crate turns them into CI-enforced invariants with a
//! dependency-free, hand-rolled Rust lexer ([`lexer`]) and a token-stream
//! rule engine ([`rules`]) in the same offline spirit as the in-tree
//! proptest/criterion/JSON shims.
//!
//! Rule families (see [`rules`] for details and `README.md` for the
//! policy rationale):
//!
//! | id | meaning |
//! |----|---------|
//! | `float-escape`   | no `f32`/`f64` in the integer-datapath modules |
//! | `narrowing-cast` | no unguarded truncating `as` casts in datapath crates |
//! | `panic-path`     | no unwrap/expect/panic!/bare indexing in serving libs |
//! | `lock-hygiene`   | no poison-panics, no sends under a held lock |
//!
//! Suppressions are inline comments with a mandatory justification:
//!
//! ```text
//! // fqlint::allow(float-escape): scale storage — floats never enter the
//! // per-token compute, only the per-tensor metadata.
//! ```
//!
//! placed directly above an item (annotating the whole item as a
//! quantization *boundary*) or trailing the offending line.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use lexer::{lex, LexError, TokKind, Token};
pub use report::WorkspaceReport;
pub use rules::{analyze_source, Finding, RuleId, RuleSet, Severity, Suppressed};
pub use workspace::{find_root, rules_for_path, run};
