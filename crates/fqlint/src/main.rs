//! The `fqlint` CLI: analyse the workspace, print findings, emit the JSON
//! report, and (with `--deny`) gate CI on a clean run.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
fqlint — static analysis for the fully-quantized + panic-free invariants

USAGE:
    fqlint [--root PATH] [--deny] [--json PATH] [--quiet]

OPTIONS:
    --root PATH   Workspace root to analyse (default: nearest ancestor
                  with a [workspace] Cargo.toml)
    --deny        Exit nonzero when any unsuppressed finding remains
    --json PATH   Write the machine-readable findings report to PATH
    --quiet       Suppress per-finding human output (summary only)
";

struct Args {
    root: Option<PathBuf>,
    deny: bool,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        deny: false,
        json: None,
        quiet: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    iter.next().ok_or("--root needs a path argument")?,
                ));
            }
            "--deny" => args.deny = true,
            "--json" => {
                args.json = Some(PathBuf::from(
                    iter.next().ok_or("--json needs a path argument")?,
                ));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("fqlint: {msg}");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| fqlint::find_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("fqlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match fqlint::run(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("fqlint: failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(json_path) = &args.json {
        if let Some(parent) = json_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(err) = std::fs::write(json_path, report.render_json()) {
            eprintln!("fqlint: cannot write {}: {err}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if args.quiet {
        if let Some(summary) = report.render_human().lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{}", report.render_human());
    }
    if !report.lex_errors.is_empty() {
        // A file the lexer cannot read means the invariants are unchecked:
        // always a hard failure, --deny or not.
        return ExitCode::from(2);
    }
    if args.deny && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
