//! The token-stream rule engine: four rule families over lexed Rust.
//!
//! * **R1 `float-escape`** — `f32`/`f64` idents, float literals and
//!   float-only methods inside the designated integer-datapath modules.
//! * **R2 `narrowing-cast`** — `as` casts to integer types of ≤ 32 bits in
//!   the datapath crates, unless the source is a literal that provably
//!   fits or the value was `clamp`ed immediately before the cast.
//! * **R3 `panic-path`** — `unwrap`/`expect`, panicking macros and bare
//!   slice/array indexing in serving-stack library code.
//! * **R4 `lock-hygiene`** — `.lock().unwrap()`/`.lock().expect(...)`
//!   (a poisoned mutex panics the whole worker) and channel sends issued
//!   while a lock guard is live.
//! * **R5 `unsafe-outside-kernels`** — any `unsafe` keyword. Outside the
//!   designated SIMD kernel modules it is a hard violation; inside them
//!   every occurrence must still carry a justified allow comment, so the
//!   audit trail of soundness arguments stays complete.
//!
//! Findings are suppressed by `// fqlint::allow(rule): justification`
//! comments (justification mandatory). A trailing comment suppresses its
//! own line; a standalone comment before an item (`fn`, `impl`, `struct`,
//! ...) suppresses the rule for the whole item — that is the "annotated
//! boundary" form used where the datapath legitimately touches floats
//! (conversion, calibration, scale storage); anywhere else a standalone
//! comment covers the following line. `#[cfg(test)]` items, and files
//! under `tests/`, `benches/`, `examples/` or `src/bin/`, are exempt from
//! the library-code rules.

use crate::lexer::{lex, LexError, TokKind, Token};

/// Stable identifier of one rule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: float type/literal/method in an integer-datapath module.
    FloatEscape,
    /// R2: truncating `as` cast in a datapath crate.
    NarrowingCast,
    /// R3: panic source in serving-stack library code.
    PanicPath,
    /// R4: lock poisoning panic or a send under a held lock.
    LockHygiene,
    /// R5: `unsafe` code outside the designated kernel modules, or
    /// unjustified `unsafe` inside them.
    UnsafeOutsideKernels,
    /// A malformed `fqlint::allow` comment (unknown rule or missing
    /// justification). Not suppressible.
    BadSuppression,
}

impl RuleId {
    /// All suppressible rules, in severity order.
    pub const ALL: [RuleId; 5] = [
        RuleId::FloatEscape,
        RuleId::NarrowingCast,
        RuleId::PanicPath,
        RuleId::LockHygiene,
        RuleId::UnsafeOutsideKernels,
    ];

    /// The spelling used in reports and `fqlint::allow(...)` comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::FloatEscape => "float-escape",
            RuleId::NarrowingCast => "narrowing-cast",
            RuleId::PanicPath => "panic-path",
            RuleId::LockHygiene => "lock-hygiene",
            RuleId::UnsafeOutsideKernels => "unsafe-outside-kernels",
            RuleId::BadSuppression => "bad-suppression",
        }
    }

    /// Parses a rule name as spelled in an allow comment.
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Report severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::FloatEscape
            | RuleId::PanicPath
            | RuleId::UnsafeOutsideKernels
            | RuleId::BadSuppression => Severity::Error,
            RuleId::NarrowingCast | RuleId::LockHygiene => Severity::Warning,
        }
    }
}

/// How serious a finding is. `--deny` fails the run on *any* unsuppressed
/// finding regardless of severity; the distinction is for human triage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Invariant violation.
    Error,
    /// Latent hazard that needs widening, a guard, or a justification.
    Warning,
}

impl Severity {
    /// The spelling used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human explanation of the violation.
    pub message: String,
}

/// A finding that an `fqlint::allow` comment silenced, kept for the report
/// so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The justification written in the allow comment.
    pub justification: String,
}

/// Outcome of analysing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified allow comment.
    pub suppressed: Vec<Suppressed>,
}

/// Which rule families to run on a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// Run R1 float-escape.
    pub float_escape: bool,
    /// Run R2 narrowing-cast.
    pub narrowing_cast: bool,
    /// Run R3 panic-path.
    pub panic_path: bool,
    /// Run R4 lock-hygiene.
    pub lock_hygiene: bool,
    /// Run R5 unsafe-outside-kernels.
    pub unsafe_outside_kernels: bool,
    /// Whether the file under analysis is inside a designated kernel
    /// module tree, where justified `unsafe` is legitimate (R5 then
    /// demands the justification rather than forbidding `unsafe`).
    pub in_kernel_module: bool,
}

impl RuleSet {
    /// Every rule family enabled (used by fixture tests).
    pub fn all() -> Self {
        Self {
            float_escape: true,
            narrowing_cast: true,
            panic_path: true,
            lock_hygiene: true,
            unsafe_outside_kernels: true,
            in_kernel_module: false,
        }
    }

    /// Whether any rule is enabled.
    pub fn any(self) -> bool {
        self.float_escape
            || self.narrowing_cast
            || self.panic_path
            || self.lock_hygiene
            || self.unsafe_outside_kernels
    }
}

/// Integer types an `as` cast can truncate into (≤ 32 bits). Casts to
/// 64-bit and pointer-sized types are not flagged: every accumulator in
/// this workspace is at most `i64`-valued via `i128` products, and
/// `usize`/`isize` are 64-bit on every supported target.
const NARROW_INT_TYPES: [(&str, u32, bool); 6] = [
    ("i8", 8, true),
    ("u8", 8, false),
    ("i16", 16, true),
    ("u16", 16, false),
    ("i32", 32, true),
    ("u32", 32, false),
];

/// Methods that exist on `f32`/`f64` but not on integer types: calling one
/// proves a float value is live in the datapath.
const FLOAT_ONLY_METHODS: [&str; 22] = [
    "sqrt",
    "powf",
    "powi",
    "exp",
    "exp2",
    "exp_m1",
    "ln",
    "ln_1p",
    "log2",
    "log10",
    "floor",
    "ceil",
    "round",
    "trunc",
    "fract",
    "recip",
    "hypot",
    "to_degrees",
    "to_radians",
    "is_nan",
    "is_infinite",
    "is_finite",
];

/// Macros that unconditionally panic when reached (debug_assert* compiles
/// out of release serving builds and is exempt).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that can begin an item declaration; a standalone allow comment
/// directly above one of these covers the whole item.
const ITEM_KEYWORDS: [&str; 12] = [
    "pub", "fn", "struct", "enum", "union", "trait", "impl", "mod", "const", "static", "type",
    "unsafe",
];

/// One parsed `fqlint::allow` directive and the line span it covers.
#[derive(Debug)]
struct Allow {
    rule: RuleId,
    justification: String,
    /// Inclusive line range the suppression applies to.
    lines: (u32, u32),
}

/// Analyses one file's source under `rules`, returning findings with
/// `file` set to `path` (workspace-relative).
///
/// # Errors
///
/// Returns the lexer error for source the lexer cannot tokenise.
pub fn analyze_source(path: &str, src: &str, rules: RuleSet) -> Result<FileAnalysis, LexError> {
    let tokens = lex(src)?;
    if !rules.any() {
        return Ok(FileAnalysis::default());
    }
    // Code tokens only; comments drive suppressions and nothing else.
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut analysis = FileAnalysis::default();
    let allows = collect_allows(path, &tokens, &code, &mut analysis.findings);
    let test_spans = test_item_spans(&code);

    let in_tests = |line: u32| test_spans.iter().any(|(a, b)| (*a..=*b).contains(&line));
    let mut raw: Vec<Finding> = Vec::new();
    let mut emit = |line: u32, rule: RuleId, message: String| {
        if !in_tests(line) {
            raw.push(Finding {
                file: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    if rules.float_escape {
        scan_float_escape(&code, &mut emit);
    }
    if rules.narrowing_cast {
        scan_narrowing_cast(&code, &mut emit);
    }
    if rules.panic_path {
        scan_panic_path(&code, &mut emit);
    }
    if rules.lock_hygiene {
        scan_lock_hygiene(&code, &mut emit);
    }
    if rules.unsafe_outside_kernels {
        scan_unsafe(&code, rules.in_kernel_module, &mut emit);
    }

    for finding in raw {
        let allow = allows
            .iter()
            .find(|a| a.rule == finding.rule && (a.lines.0..=a.lines.1).contains(&finding.line));
        match allow {
            Some(allow) => analysis.suppressed.push(Suppressed {
                finding,
                justification: allow.justification.clone(),
            }),
            None => analysis.findings.push(finding),
        }
    }
    analysis.findings.sort_by_key(|f| (f.line, f.rule));
    Ok(analysis)
}

/// Parses every `fqlint::allow(rule): justification` comment and computes
/// its suppression span. Malformed directives become `bad-suppression`
/// findings (which no allow can silence).
fn collect_allows(
    path: &str,
    tokens: &[Token],
    code: &[&Token],
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (index, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(at) = tok.text.find("fqlint::allow") else {
            continue;
        };
        let rest = &tok.text[at + "fqlint::allow".len()..];
        let mut bad = |msg: &str| {
            findings.push(Finding {
                file: path.to_string(),
                line: tok.line,
                rule: RuleId::BadSuppression,
                message: msg.to_string(),
            });
        };
        let Some(open) = rest.find('(') else {
            bad("fqlint::allow must name a rule: `fqlint::allow(rule): justification`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("fqlint::allow has an unclosed rule list");
            continue;
        };
        let rule_name = rest[open + 1..close].trim();
        let Some(rule) = RuleId::parse(rule_name) else {
            bad(&format!(
                "fqlint::allow names unknown rule `{rule_name}` (known: float-escape, \
                 narrowing-cast, panic-path, lock-hygiene, unsafe-outside-kernels)"
            ));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let justification = after
            .strip_prefix(':')
            .map(|j| j.trim().trim_end_matches("*/").trim())
            .unwrap_or("");
        if justification.is_empty() {
            bad(&format!(
                "fqlint::allow({rule_name}) lacks a justification — write \
                 `fqlint::allow({rule_name}): <why this is sound>`"
            ));
            continue;
        }
        // Trailing comment (code precedes it on the same line) covers its
        // own line; a standalone comment covers the next item or line.
        let trailing = tokens[..index].iter().any(|t| {
            t.line == tok.line && !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment)
        });
        let lines = if trailing {
            (tok.line, tok.line)
        } else {
            standalone_span(tok.line, code)
        };
        allows.push(Allow {
            rule,
            justification: justification.to_string(),
            lines,
        });
    }
    allows
}

/// Span covered by a standalone allow comment at `line`: the entire next
/// item when one follows (skipping attributes), otherwise the next line.
fn standalone_span(line: u32, code: &[&Token]) -> (u32, u32) {
    let mut i = match code.iter().position(|t| t.line > line) {
        Some(i) => i,
        None => return (line, line + 1),
    };
    // Skip attributes (`#[...]`) between the comment and the item.
    while i < code.len() && code[i].text == "#" {
        if i + 1 < code.len() && code[i + 1].text == "[" {
            let mut depth = 0usize;
            i += 1;
            while i < code.len() {
                match code[i].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i += 1;
        } else {
            break;
        }
    }
    if i >= code.len() {
        return (line, line + 1);
    }
    if !ITEM_KEYWORDS.contains(&code[i].text.as_str()) {
        // Not an item: cover the whole statement that follows (a finding
        // on the continuation line of a multi-line expression still counts
        // as annotated).
        return (line, statement_end_line(code, i));
    }
    (line, item_end_line(code, i))
}

/// Last line of the statement starting at `code[start]`: the first `;` at
/// the statement's own nesting depth, or the token before the `}`/`)` that
/// closes the surrounding block.
fn statement_end_line(code: &[&Token], start: usize) -> u32 {
    let mut depth: i64 = 0;
    for tok in &code[start..] {
        match tok.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                if depth == 0 {
                    return tok.line;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => return tok.line,
            _ => {}
        }
    }
    code.last().map_or(0, |t| t.line)
}

/// Last line of the item starting at `code[start]`: the matching `}` of
/// the first item-level brace block, or the first item-level `;` if one
/// comes first. `;` inside parentheses or brackets — array types like
/// `[i16; 8]` in a signature — does not end the item.
fn item_end_line(code: &[&Token], start: usize) -> u32 {
    let mut brace_depth = 0usize;
    let mut group_depth: i64 = 0;
    let mut i = start;
    while i < code.len() {
        match code[i].text.as_str() {
            ";" if brace_depth == 0 && group_depth == 0 => return code[i].line,
            "(" | "[" => group_depth += 1,
            ")" | "]" => group_depth -= 1,
            "{" => brace_depth += 1,
            "}" => {
                brace_depth -= 1;
                if brace_depth == 0 {
                    return code[i].line;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.last().map_or(0, |t| t.line)
}

/// Line spans of `#[cfg(test)]` items (usually `mod tests { ... }`).
fn test_item_spans(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 5 < code.len() {
        let is_cfg_test = code[i].text == "#"
            && code[i + 1].text == "["
            && code[i + 2].text == "cfg"
            && code[i + 3].text == "("
            && code[i + 4].text == "test"
            && code[i + 5].text == ")";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = code[i].line;
        // Find the end of this attribute, skip any further attributes, then
        // measure the item that follows.
        let mut j = i + 6;
        while j < code.len() && code[j].text != "]" {
            j += 1;
        }
        j += 1;
        while j + 1 < code.len() && code[j].text == "#" && code[j + 1].text == "[" {
            let mut depth = 0usize;
            j += 1;
            while j < code.len() {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            j += 1;
        }
        if j < code.len() {
            spans.push((start_line, item_end_line(code, j)));
        }
        i = j.max(i + 1);
    }
    spans
}

/// R1: float types, float literals and float-only method calls.
fn scan_float_escape(code: &[&Token], emit: &mut impl FnMut(u32, RuleId, String)) {
    for (i, tok) in code.iter().enumerate() {
        match tok.kind {
            TokKind::Ident if tok.text == "f32" || tok.text == "f64" => {
                emit(
                    tok.line,
                    RuleId::FloatEscape,
                    format!("`{}` in integer-datapath module", tok.text),
                );
            }
            TokKind::Ident
                if FLOAT_ONLY_METHODS.contains(&tok.text.as_str())
                    && i > 0
                    && code[i - 1].text == "."
                    && code.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                emit(
                    tok.line,
                    RuleId::FloatEscape,
                    format!(
                        "float-only method `.{}()` in integer-datapath module",
                        tok.text
                    ),
                );
            }
            TokKind::Float => {
                emit(
                    tok.line,
                    RuleId::FloatEscape,
                    format!("float literal `{}` in integer-datapath module", tok.text),
                );
            }
            _ => {}
        }
    }
}

/// Whether the integer literal `value` (with `negative` sign) fits the
/// narrow target type described by (bits, signed).
fn literal_fits(value: u128, negative: bool, bits: u32, signed: bool) -> bool {
    if negative {
        return signed && value <= 1u128 << (bits - 1);
    }
    let max = if signed {
        (1u128 << (bits - 1)) - 1
    } else {
        (1u128 << bits) - 1
    };
    value <= max
}

/// R2: `as` casts into ≤ 32-bit integer types, minus literals that fit and
/// `clamp(...)` results (two-sided range guard).
fn scan_narrowing_cast(code: &[&Token], emit: &mut impl FnMut(u32, RuleId, String)) {
    for i in 1..code.len() {
        if code[i].kind != TokKind::Ident || code[i].text != "as" {
            continue;
        }
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        let Some(&(name, bits, signed)) = NARROW_INT_TYPES
            .iter()
            .find(|(name, _, _)| *name == target.text)
        else {
            continue;
        };
        let prev = code[i - 1];
        // A literal source whose value provably fits the target is safe.
        if prev.kind == TokKind::Int {
            let negative = i >= 2 && code[i - 2].text == "-";
            if prev
                .int_value()
                .is_some_and(|v| literal_fits(v, negative, bits, signed))
            {
                continue;
            }
        }
        // A chained cast from a provably-smaller type (`x as u8 as i32`)
        // widens; `char as u32` always fits.
        if prev.kind == TokKind::Ident
            && i >= 2
            && code[i - 2].text == "as"
            && widens_into(&prev.text, bits, signed)
        {
            continue;
        }
        // `i8::MIN as i32` and friends: an extreme of a provably-smaller
        // type widens into the target. (`::` lexes as two `:` tokens.)
        if (prev.text == "MIN" || prev.text == "MAX")
            && i >= 4
            && code[i - 2].text == ":"
            && code[i - 3].text == ":"
            && widens_into(&code[i - 4].text, bits, signed)
        {
            continue;
        }
        // `expr.clamp(lo, hi) as T` is range-guarded by construction.
        if prev.text == ")" {
            if let Some(open) = matching_open(code, i - 1) {
                if open >= 1 && code[open - 1].text == "clamp" {
                    continue;
                }
            }
        }
        emit(
            code[i].line,
            RuleId::NarrowingCast,
            format!(
                "narrowing `as {name}` cast — widen, range-guard (`clamp`/`try_into`), or \
                 justify with fqlint::allow"
            ),
        );
    }
}

/// Whether a value of integer type `src` always fits the narrow target
/// described by (bits, signed) — used to pass chained widening casts.
fn widens_into(src: &str, bits: u32, signed: bool) -> bool {
    if src == "char" {
        return !signed && bits == 32;
    }
    let Some(&(_, src_bits, src_signed)) =
        NARROW_INT_TYPES.iter().find(|(name, _, _)| *name == src)
    else {
        return false;
    };
    match (src_signed, signed) {
        (false, false) | (true, true) => src_bits <= bits,
        // Unsigned fits a signed target one size up.
        (false, true) => src_bits < bits,
        // Signed into unsigned never provably fits (negative wraps).
        (true, false) => false,
    }
}

/// Index of the `(` matching the `)` at `close`, if any.
fn matching_open(code: &[&Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        match code[i].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// R3: unwrap/expect, panicking macros, and bare indexing.
fn scan_panic_path(code: &[&Token], emit: &mut impl FnMut(u32, RuleId, String)) {
    for i in 0..code.len() {
        let tok = code[i];
        if tok.kind != TokKind::Ident && tok.text != "[" {
            continue;
        }
        // `.unwrap()` / `.expect(...)` and friends.
        if matches!(
            tok.text.as_str(),
            "unwrap" | "expect" | "unwrap_err" | "expect_err"
        ) && i > 0
            && code[i - 1].text == "."
            && code.get(i + 1).is_some_and(|t| t.text == "(")
        {
            emit(
                tok.line,
                RuleId::PanicPath,
                format!("`.{}()` can panic in serving-path library code", tok.text),
            );
            continue;
        }
        // Panicking macros.
        if PANIC_MACROS.contains(&tok.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.text == "!")
            && (i == 0 || code[i - 1].text != ".")
        {
            emit(
                tok.line,
                RuleId::PanicPath,
                format!(
                    "`{}!` panics when reached in serving-path library code",
                    tok.text
                ),
            );
            continue;
        }
        // Bare indexing: `expr[...]` where expr ends in an identifier,
        // call, or another index. Array literals/types/attributes have a
        // non-postfix token (or `#`) before the bracket and are not
        // flagged.
        if tok.text == "[" && i > 0 {
            let prev = code[i - 1];
            let is_postfix = matches!(prev.kind, TokKind::Ident)
                && !is_keyword_before_bracket(&prev.text)
                || prev.text == ")"
                || prev.text == "]";
            if is_postfix {
                emit(
                    tok.line,
                    RuleId::PanicPath,
                    "bare slice/array indexing can panic — use `.get(..)` or justify the \
                     bound with fqlint::allow"
                        .to_string(),
                );
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `in [..]`, `else [..]`...).
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(
        text,
        "return"
            | "in"
            | "if"
            | "else"
            | "match"
            | "break"
            | "mut"
            | "dyn"
            | "as"
            | "where"
            | "let"
            | "for"
            | "loop"
            | "move"
            | "ref"
    )
}

/// R5: every `unsafe` keyword. Outside the designated kernel module trees
/// `unsafe` is forbidden outright (serving code stays safe Rust); inside
/// them each occurrence must still be annotated with a justified
/// `fqlint::allow(unsafe-outside-kernels)` comment — the finding fires
/// unconditionally and the suppression machinery turns a justified one
/// into an auditable `Suppressed` entry.
fn scan_unsafe(
    code: &[&Token],
    in_kernel_module: bool,
    emit: &mut impl FnMut(u32, RuleId, String),
) {
    for tok in code {
        if tok.kind != TokKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let message = if in_kernel_module {
            "`unsafe` in a kernel module must carry a \
             `// fqlint::allow(unsafe-outside-kernels): <soundness argument>` justification"
                .to_string()
        } else {
            "`unsafe` outside the designated GEMM kernel modules — keep serving code safe \
             Rust, or move the kernel under the kernels tree"
                .to_string()
        };
        emit(tok.line, RuleId::UnsafeOutsideKernels, message);
    }
}

/// R4: `.lock().unwrap()`-style poison panics, and channel `send` calls
/// while a `let`-bound lock guard is still live in the enclosing block.
fn scan_lock_hygiene(code: &[&Token], emit: &mut impl FnMut(u32, RuleId, String)) {
    // Poison panics: .lock().unwrap() / .lock().expect(...)
    for i in 0..code.len() {
        if code[i].text == "lock"
            && i > 0
            && code[i - 1].text == "."
            && code.get(i + 1).is_some_and(|t| t.text == "(")
            && code.get(i + 2).is_some_and(|t| t.text == ")")
            && code.get(i + 3).is_some_and(|t| t.text == ".")
            && code
                .get(i + 4)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
        {
            emit(
                code[i].line,
                RuleId::LockHygiene,
                format!(
                    "`.lock().{}()` panics on a poisoned mutex and cascades through the \
                     worker pool — recover with `unwrap_or_else(PoisonError::into_inner)`",
                    code[i + 4].text
                ),
            );
        }
    }
    // Sends under a held guard. Track `let`-bound guards whose initializer
    // contains `.lock(`; a guard lives until its block closes or it is
    // explicitly dropped.
    let mut depth: i64 = 0;
    let mut guards: Vec<(String, i64)> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        match code[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|(_, d)| *d <= depth);
            }
            "let" => {
                // let [mut] NAME = ... .lock( ... ;   — the scan stops at
                // the first top-level `{` or statement end, so a guard
                // acquired inside a nested block binds that block's own
                // `let`, not this one. The token cursor does not jump:
                // nested statements are processed in their own turn.
                let mut j = i + 1;
                if code.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                if let Some(name_tok) = code.get(j) {
                    if name_tok.kind == TokKind::Ident {
                        let mut k = j + 1;
                        let mut stmt_depth: i64 = 0;
                        let mut locks = false;
                        while k < code.len() {
                            match code[k].text.as_str() {
                                "{" if stmt_depth == 0 => break,
                                "(" | "[" | "{" => stmt_depth += 1,
                                ")" | "]" | "}" => {
                                    if stmt_depth == 0 {
                                        break;
                                    }
                                    stmt_depth -= 1;
                                }
                                ";" if stmt_depth == 0 => break,
                                // `.lock(` — or a lock-wrapping helper
                                // such as `lock_clean(` / `lock_poisoned(`
                                // whose return value is still a guard.
                                text if text.starts_with("lock")
                                    && code.get(k + 1).is_some_and(|t| t.text == "(") =>
                                {
                                    locks = true;
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        if locks {
                            guards.push((name_tok.text.clone(), depth));
                        }
                    }
                }
            }
            // drop(NAME) releases that guard.
            "drop"
                if code.get(i + 1).is_some_and(|t| t.text == "(")
                    && code.get(i + 3).is_some_and(|t| t.text == ")") =>
            {
                if let Some(name_tok) = code.get(i + 2) {
                    guards.retain(|(name, _)| *name != name_tok.text);
                }
            }
            "send"
                if i > 0
                    && code[i - 1].text == "."
                    && code.get(i + 1).is_some_and(|t| t.text == "(") =>
            {
                if let Some((name, _)) = guards.last() {
                    emit(
                        code[i].line,
                        RuleId::LockHygiene,
                        format!(
                            "channel send while lock guard `{name}` is held — deliver \
                             after releasing the lock"
                        ),
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }
}
