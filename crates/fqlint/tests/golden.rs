//! Golden-fixture tests: each fixture under `tests/fixtures/` is a small
//! known-bad source file, and the expected findings are the *exact*
//! `(line, rule)` multiset — so a rule that stops firing, fires twice, or
//! fires on the wrong line fails loudly, not quietly.
//!
//! The fixtures directory is excluded from the workspace walk in
//! `workspace::collect_rust_files`, so these deliberately-bad files never
//! show up in the real report.

use fqlint::{analyze_source, RuleId, RuleSet};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Analyzes a fixture with every rule enabled and asserts the exact
/// sorted `(line, rule)` lists for findings and suppressions.
fn check(name: &str, expect_findings: &[(u32, RuleId)], expect_suppressed: &[(u32, RuleId)]) {
    let src = fixture(name);
    let analysis =
        analyze_source(name, &src, RuleSet::all()).unwrap_or_else(|e| panic!("{name}: {e}"));

    let mut got: Vec<(u32, RuleId)> = analysis.findings.iter().map(|f| (f.line, f.rule)).collect();
    got.sort();
    let mut want = expect_findings.to_vec();
    want.sort();
    assert_eq!(got, want, "{name} findings: {:#?}", analysis.findings);

    let mut got: Vec<(u32, RuleId)> = analysis
        .suppressed
        .iter()
        .map(|s| (s.finding.line, s.finding.rule))
        .collect();
    got.sort();
    let mut want = expect_suppressed.to_vec();
    want.sort();
    assert_eq!(got, want, "{name} suppressed: {:#?}", analysis.suppressed);

    // Every suppression must carry a non-empty justification.
    for s in &analysis.suppressed {
        assert!(
            !s.justification.is_empty(),
            "{name}: empty justification survived at line {}",
            s.finding.line
        );
    }
}

#[test]
fn float_escape_fixture() {
    use RuleId::{BadSuppression, FloatEscape};
    check(
        "float_escape.rs",
        &[
            (1, FloatEscape),     // param `f32`
            (1, FloatEscape),     // return `f32`
            (2, FloatEscape),     // literal `1.5`
            (3, FloatEscape),     // `as f64`
            (3, FloatEscape),     // `.sqrt()`
            (4, FloatEscape),     // `as f32`
            (12, FloatEscape),    // return type NOT covered by the line-13 trailing allow
            (16, BadSuppression), // missing justification
            (19, BadSuppression), // unknown rule name
        ],
        &[
            (8, FloatEscape),  // item-level boundary: param `f32`
            (8, FloatEscape),  // item-level boundary: return `f32`
            (9, FloatEscape),  // item-level boundary: literal `0.5`
            (13, FloatEscape), // trailing allow on the literal's own line
        ],
    );
}

#[test]
fn narrowing_cast_fixture() {
    use RuleId::NarrowingCast;
    check(
        "narrowing.rs",
        &[
            (2, NarrowingCast),  // i64 -> i32, unguarded
            (10, NarrowingCast), // -200 does not fit i8
            (18, NarrowingCast), // `x as u8` truncates; the chained `as i32` widens and passes
        ],
        &[(26, NarrowingCast)],
    );
    // Not expected above, i.e. proven safe: `255 as i16` (literal fits),
    // `clamp(..) as i16` (range-guarded), `as i32` after `as u8` (chained
    // widening), `i8::MIN as i32` (extreme of a smaller type), and the
    // `#[cfg(test)]` module's cast (exempt).
}

#[test]
fn panic_path_fixture() {
    use RuleId::PanicPath;
    check(
        "panics.rs",
        &[
            (2, PanicPath),  // unwrap()
            (6, PanicPath),  // expect()
            (11, PanicPath), // panic!
            (13, PanicPath), // assert!
            (17, PanicPath), // xs[0]
        ],
        &[(30, PanicPath)], // annotated item: xs[xs.len() - 1]
    );
    // `vec![..]`, array literals/types, slice patterns, `debug_assert!`
    // and `unwrap_or` must not flag, and the `#[cfg(test)]` module with
    // unwrap + indexing is exempt.
}

#[test]
fn lock_hygiene_fixture() {
    use RuleId::{LockHygiene, PanicPath};
    check(
        "locks.rs",
        &[
            (9, LockHygiene),  // .lock().unwrap() poisons-panic the worker
            (9, PanicPath),    // ...and is also a plain unwrap
            (14, LockHygiene), // send while `state` guard is live
        ],
        &[],
    );
    // send-after-drop, and a send after the guard's block closed, are
    // clean; the `drop(state)` / inner-block scoping is what's under test.
}

#[test]
fn unsafe_fixture() {
    use RuleId::UnsafeOutsideKernels;
    check(
        "unsafe_code.rs",
        &[
            (2, UnsafeOutsideKernels), // unsafe block, no justification
            (5, UnsafeOutsideKernels), // unsafe fn, no justification
        ],
        &[
            (12, UnsafeOutsideKernels), // item-level boundary comment
            (16, UnsafeOutsideKernels), // trailing allow on the line
        ],
    );
    // The `#[cfg(test)]` module's unsafe block is exempt.
}

#[test]
fn unsafe_rule_distinguishes_kernel_modules() {
    // Inside a designated kernel module the same `unsafe` tokens fire with
    // a must-justify message rather than a forbidden-outright one, and the
    // justified occurrences suppress identically.
    let src = fixture("unsafe_code.rs");
    let in_kernels = RuleSet {
        in_kernel_module: true,
        ..RuleSet::all()
    };
    let analysis = analyze_source("unsafe_code.rs", &src, in_kernels).expect("analyze");
    let lines: Vec<u32> = analysis.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 5]);
    for f in &analysis.findings {
        assert!(
            f.message.contains("must carry"),
            "kernel-module message should demand justification: {}",
            f.message
        );
    }
    let outside = analyze_source("unsafe_code.rs", &src, RuleSet::all()).expect("analyze");
    for f in &outside.findings {
        assert!(
            f.message.contains("outside the designated"),
            "non-kernel message should forbid unsafe outright: {}",
            f.message
        );
    }
    assert_eq!(analysis.suppressed.len(), 2);
}

#[test]
fn policy_matches_layout() {
    // The workspace policy map: which rules run where.
    let rs = fqlint::rules_for_path("crates/fqbert/src/int_model.rs");
    assert!(rs.float_escape && !rs.panic_path);

    let rs = fqlint::rules_for_path("crates/tensor/src/gemm/mod.rs");
    assert!(rs.float_escape && rs.narrowing_cast);

    // The SIMD kernel modules: innermost integer datapath (R1 applies),
    // and the only place justified `unsafe` is legitimate.
    let rs = fqlint::rules_for_path("crates/tensor/src/gemm/kernels/x86.rs");
    assert!(rs.float_escape && rs.narrowing_cast);
    assert!(rs.unsafe_outside_kernels && rs.in_kernel_module);

    let rs = fqlint::rules_for_path("crates/tensor/src/shape.rs");
    assert!(!rs.float_escape && rs.narrowing_cast);

    let rs = fqlint::rules_for_path("crates/serve/src/queue.rs");
    assert!(rs.panic_path && rs.lock_hygiene && !rs.float_escape);

    let rs = fqlint::rules_for_path("crates/runtime/src/pool.rs");
    assert!(rs.panic_path && rs.lock_hygiene);

    // Telemetry records on every hot serving path: same panic-free and
    // lock-hygiene bar as the serving stack itself.
    let rs = fqlint::rules_for_path("crates/telemetry/src/registry.rs");
    assert!(rs.panic_path && rs.lock_hygiene && !rs.narrowing_cast);

    // R5 covers every library file; only kernel modules get the
    // must-justify variant.
    let rs = fqlint::rules_for_path("crates/serve/src/server.rs");
    assert!(rs.unsafe_outside_kernels && !rs.in_kernel_module);

    // Aux targets are exempt from everything.
    assert!(!fqlint::rules_for_path("crates/serve/tests/integration.rs").any());
    assert!(!fqlint::rules_for_path("crates/serve/src/bin/serve.rs").any());
    assert!(!fqlint::rules_for_path("crates/tensor/benches/gemm.rs").any());
}
