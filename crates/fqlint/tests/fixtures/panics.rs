pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn bad_macros(flag: bool) {
    if flag {
        panic!("boom");
    }
    assert!(flag);
}

pub fn bad_index(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn not_flagged(x: Option<u32>) -> u32 {
    let ys = vec![1, 2, 3];
    let _arr: [u8; 2] = [0, 1];
    let [_a, _b] = [4u32, 5];
    debug_assert!(!ys.is_empty());
    x.unwrap_or(0)
}

// fqlint::allow(panic-path): last element exists — the caller checked is_empty
pub fn annotated(xs: &[u32]) -> u32 {
    xs[xs.len() - 1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        assert_eq!(Some(1).unwrap(), 1);
        let xs = [1, 2];
        assert!(xs[0] < xs[1]);
    }
}
