pub fn bad_type(x: f32) -> f32 {
    let y = 1.5;
    let z = (x as f64).sqrt();
    y + z as f32
}

// fqlint::allow(float-escape): boundary item — scale conversion happens once at build time
pub fn boundary(scale: f32) -> f32 {
    scale * 0.5
}

pub fn trailing() -> f32 {
    1.0 // fqlint::allow(float-escape): trailing comments cover only their own line
}

// fqlint::allow(float-escape)
pub fn missing_justification() {}

// fqlint::allow(not-a-rule): the rule name is unknown
pub fn unknown_rule() {}
