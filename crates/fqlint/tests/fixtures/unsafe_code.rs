fn read_first(xs: &[i32]) -> i32 {
    unsafe { *xs.as_ptr() }
}

unsafe fn raw_add(p: *mut i32) {
    *p += 1;
}

// fqlint::allow(unsafe-outside-kernels): load is in-bounds by the caller's
// length contract; this fixture models a justified kernel-style access.
fn justified_block(xs: &[i32]) -> i32 {
    unsafe { *xs.as_ptr().add(1) }
}

fn trailing_allow(xs: &[i32]) -> i32 {
    unsafe { *xs.as_ptr() } // fqlint::allow(unsafe-outside-kernels): in-bounds: slice is non-empty
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let x = 0i32;
        let _ = unsafe { *(&x as *const i32) };
    }
}
