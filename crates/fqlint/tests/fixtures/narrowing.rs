pub fn bad(x: i64) -> i32 {
    x as i32
}

pub fn literal_fits() -> i16 {
    255 as i16
}

pub fn literal_overflows() -> i8 {
    -200 as i8
}

pub fn guarded(x: i64) -> i16 {
    x.clamp(-100, 100) as i16
}

pub fn chained_widening(x: i64) -> i32 {
    x as u8 as i32
}

pub fn extreme_constants(x: i64) -> i32 {
    x.clamp(i8::MIN as i32 as i64, i8::MAX as i32 as i64) as i32
}

pub fn annotated(x: usize) -> u32 {
    x as u32 // fqlint::allow(narrowing-cast): callers pass tensor dims far below 2^32
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_in_tests_are_exempt() {
        let _ = 1_000_000i64 as i16;
    }
}
