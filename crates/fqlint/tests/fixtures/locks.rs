use std::sync::{mpsc, Mutex};

pub struct Queue {
    state: Mutex<Vec<u32>>,
}

impl Queue {
    pub fn poison_panic(&self) -> usize {
        self.state.lock().unwrap().len()
    }

    pub fn send_under_lock(&self, tx: &mpsc::Sender<u32>) {
        let state = self.state.lock();
        let _ = tx.send(1);
        drop(state);
    }

    pub fn send_after_drop(&self, tx: &mpsc::Sender<u32>) {
        let state = self.state.lock();
        drop(state);
        let _ = tx.send(2);
    }

    pub fn send_outside_block(&self, tx: &mpsc::Sender<u32>) {
        {
            let _guard = self.state.lock();
        }
        let _ = tx.send(3);
    }
}
