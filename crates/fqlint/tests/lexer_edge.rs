//! Edge cases the lexer must not misread: raw strings, nested block
//! comments, char vs byte vs lifetime quoting, and numeric literal
//! classification — each one a way a naive scanner would misparse real
//! Rust and report phantom findings (or miss real ones hidden in code it
//! skipped as "string").

use fqlint::{lex, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .expect("lexes")
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

fn kind_of(src: &str) -> TokKind {
    let tokens = lex(src).expect("lexes");
    assert_eq!(
        tokens.len(),
        1,
        "expected one token for {src:?}: {tokens:?}"
    );
    tokens[0].kind
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    // A raw string containing quotes must not terminate early — otherwise
    // its tail would be lexed as code.
    let toks = kinds(r##"let s = r#"contains "quotes" and \ backslash"#;"##);
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Str && t.contains("quotes")));
    assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some(";"));

    // More hashes.
    let toks = kinds(r###"r##"inner "# still inside"##"###);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].0, TokKind::Str);

    // Raw byte string.
    assert_eq!(kind_of(r###"br#"bytes "q""#"###), TokKind::Str);

    // An f32 "hidden" inside a raw string is not a code token.
    let toks = kinds(r##"let s = r"f32 1.5 unwrap()";"##);
    assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "f32"));
    assert!(!toks.iter().any(|(k, _)| *k == TokKind::Float));
}

#[test]
fn raw_identifiers_are_identifiers_not_strings() {
    let toks = kinds("let r#type = 1;");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
}

#[test]
fn block_comments_nest() {
    let toks = kinds("a /* outer /* inner */ still comment */ b");
    let idents: Vec<&str> = toks
        .iter()
        .filter(|(k, _)| *k == TokKind::Ident)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(idents, ["a", "b"]);
    // Unterminated nesting is an error, not a hang or a silent truncation.
    assert!(lex("/* /* */").is_err());
}

#[test]
fn char_literals_vs_lifetimes() {
    assert_eq!(kind_of("'a'"), TokKind::Char);
    assert_eq!(kind_of("'_'"), TokKind::Char);
    assert_eq!(kind_of(r"'\n'"), TokKind::Char);
    assert_eq!(kind_of(r"'\''"), TokKind::Char);
    assert_eq!(kind_of(r"'\u{1F600}'"), TokKind::Char);
    assert_eq!(kind_of("'static"), TokKind::Lifetime);
    assert_eq!(kind_of("'a"), TokKind::Lifetime);
    assert_eq!(kind_of("'_"), TokKind::Lifetime);

    // In context: generics with lifetimes followed by char literals.
    let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
    let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
    let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
    assert_eq!((lifetimes, chars), (2, 1));
}

#[test]
fn byte_literals_and_byte_strings() {
    assert_eq!(kind_of("b'x'"), TokKind::Char);
    assert_eq!(kind_of(r"b'\n'"), TokKind::Char);
    assert_eq!(kind_of(r#"b"bytes""#), TokKind::Str);
    // `b` alone is an identifier.
    assert_eq!(kind_of("b"), TokKind::Ident);
}

#[test]
fn numeric_classification() {
    assert_eq!(kind_of("1"), TokKind::Int);
    assert_eq!(kind_of("1_000u32"), TokKind::Int);
    assert_eq!(kind_of("0xff"), TokKind::Int);
    assert_eq!(kind_of("0o77"), TokKind::Int);
    assert_eq!(kind_of("0b1010i64"), TokKind::Int);
    assert_eq!(kind_of("1.0"), TokKind::Float);
    assert_eq!(kind_of("1."), TokKind::Float);
    assert_eq!(kind_of("1e5"), TokKind::Float);
    assert_eq!(kind_of("2.5E-3"), TokKind::Float);
    assert_eq!(kind_of("1f32"), TokKind::Float);
    assert_eq!(kind_of("3f64"), TokKind::Float);

    // Ranges and method calls on integers are not floats.
    let toks = kinds("0..10");
    assert_eq!(toks[0].0, TokKind::Int);
    let toks = kinds("1.max(2)");
    assert_eq!(toks[0].0, TokKind::Int);

    // Values for the narrowing-cast fit check.
    let toks = lex("255 256 0xffff_ffff 127i8").expect("lexes");
    let values: Vec<Option<u128>> = toks.iter().map(|t| t.int_value()).collect();
    assert_eq!(values, [Some(255), Some(256), Some(0xffff_ffff), Some(127)]);
}

#[test]
fn strings_with_escapes_do_not_leak_code() {
    let toks = kinds(r#"let s = "escaped \" quote and \\ and \u{41}"; x"#);
    assert_eq!(
        toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
        1,
        "{toks:?}"
    );
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    assert!(lex(r#""unterminated"#).is_err());
}

#[test]
fn line_numbers_track_every_token_form() {
    let src = "a\n\"two\nlines\"\nb /* c\nd */ e\nf";
    let toks = lex(src).expect("lexes");
    let line_of = |text: &str| {
        toks.iter()
            .find(|t| t.text == text)
            .map(|t| t.line)
            .expect("token present")
    };
    assert_eq!(line_of("a"), 1);
    assert_eq!(line_of("\"two\nlines\""), 2); // string starts on line 2
    assert_eq!(line_of("b"), 4);
    assert_eq!(line_of("e"), 5); // after the multi-line block comment
    assert_eq!(line_of("f"), 6);
}

#[test]
fn every_workspace_file_lexes() {
    // The acceptance criterion in one test: the lexer must parse every
    // `.rs` file in this repository without error.
    let root = fqlint::find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = fqlint::workspace::collect_rust_files(&root).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk found too few files");
    for file in files {
        let src = std::fs::read_to_string(&file).expect("read source");
        if let Err(err) = lex(&src) {
            panic!("lexer failed on {}: {err}", file.display());
        }
    }
}
