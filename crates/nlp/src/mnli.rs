//! Synthetic MNLI: 3-way natural-language inference over premise/hypothesis
//! pairs.
//!
//! Each example is built from an *entity* and a set of *attributes*; every
//! attribute has a fixed antonym. The premise asserts some attributes of the
//! entity; the hypothesis either repeats one of them (entailment), asserts
//! the antonym of one (contradiction), or asserts an unrelated attribute
//! (neutral). Entities are grouped into genres: the training and *matched*
//! evaluation sets draw entities from the training genres, while the
//! *mismatched* evaluation set draws entities from held-out genres — giving
//! the same matched/mismatched distribution shift the real MNLI has (the
//! attribute/antonym system, which determines the label, is shared).

use crate::glue::{Example, TaskDataset, TaskKind};
use crate::tokenizer::Tokenizer;
use crate::vocab::Vocab;
use fqbert_tensor::RngSource;

/// Configuration of the synthetic MNLI generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MnliConfig {
    /// Number of training pairs.
    pub train_size: usize,
    /// Number of evaluation pairs per split (matched and mismatched).
    pub dev_size: usize,
    /// Number of genres used for training / matched evaluation.
    pub train_genres: usize,
    /// Number of held-out genres used for mismatched evaluation.
    pub heldout_genres: usize,
    /// Entities per genre.
    pub entities_per_genre: usize,
    /// Number of attribute/antonym pairs (shared across genres).
    pub attribute_pairs: usize,
    /// Number of attributes asserted by each premise.
    pub premise_attributes: usize,
    /// Probability of flipping the gold label (label noise).
    pub label_noise: f64,
    /// Padded sequence length produced by the tokenizer.
    pub max_len: usize,
}

impl Default for MnliConfig {
    fn default() -> Self {
        Self {
            train_size: 3000,
            dev_size: 400,
            train_genres: 4,
            heldout_genres: 2,
            entities_per_genre: 12,
            attribute_pairs: 30,
            premise_attributes: 3,
            label_noise: 0.02,
            max_len: 32,
        }
    }
}

impl MnliConfig {
    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            train_size: 300,
            dev_size: 90,
            train_genres: 2,
            heldout_genres: 1,
            entities_per_genre: 5,
            attribute_pairs: 10,
            premise_attributes: 2,
            label_noise: 0.0,
            max_len: 20,
        }
    }
}

/// Output of [`MnliGenerator::generate`]: the training task plus the two
/// evaluation flavours of the paper's Table I.
#[derive(Debug, Clone)]
pub struct MnliSplits {
    /// Training set together with the matched development split.
    pub matched: TaskDataset,
    /// Mismatched development split (same vocabulary, held-out genres); its
    /// `train` field is empty.
    pub mismatched: TaskDataset,
}

/// Label indices used by the generator.
pub const ENTAILMENT: usize = 0;
/// Neutral label index.
pub const NEUTRAL: usize = 1;
/// Contradiction label index.
pub const CONTRADICTION: usize = 2;

/// Generator for the synthetic MNLI task.
#[derive(Debug, Clone)]
pub struct MnliGenerator {
    config: MnliConfig,
}

impl MnliGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: MnliConfig) -> Self {
        Self { config }
    }

    fn total_genres(&self) -> usize {
        self.config.train_genres + self.config.heldout_genres
    }

    fn build_vocab(&self) -> Vocab {
        let mut words = vec!["is".to_string(), "and".to_string(), "the".to_string()];
        for g in 0..self.total_genres() {
            for e in 0..self.config.entities_per_genre {
                words.push(format!("ent{g}x{e}"));
            }
        }
        for a in 0..self.config.attribute_pairs {
            words.push(format!("attr{a}"));
            words.push(format!("anti{a}"));
        }
        Vocab::from_tokens(words)
    }

    /// Generates one premise/hypothesis pair from the genre range
    /// `[genre_lo, genre_hi)`.
    fn generate_pair(
        &self,
        rng: &mut RngSource,
        genre_lo: usize,
        genre_hi: usize,
    ) -> (String, String, usize) {
        let cfg = &self.config;
        let genre = rng.usize_in(genre_lo, genre_hi);
        let entity = format!("ent{}x{}", genre, rng.usize_in(0, cfg.entities_per_genre));

        // Pick distinct premise attributes.
        let mut attrs: Vec<usize> = Vec::new();
        while attrs.len() < cfg.premise_attributes {
            let a = rng.usize_in(0, cfg.attribute_pairs);
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        let premise_words: Vec<String> = attrs.iter().map(|a| format!("attr{a}")).collect();
        let premise = format!("the {entity} is {}", premise_words.join(" and "));

        let label = rng.usize_in(0, 3);
        let hypothesis = match label {
            ENTAILMENT => {
                let a = attrs[rng.usize_in(0, attrs.len())];
                format!("the {entity} is attr{a}")
            }
            CONTRADICTION => {
                let a = attrs[rng.usize_in(0, attrs.len())];
                format!("the {entity} is anti{a}")
            }
            _ => {
                // Neutral: an attribute (or its antonym) not mentioned in the
                // premise, so its truth cannot be determined.
                let mut a = rng.usize_in(0, cfg.attribute_pairs);
                while attrs.contains(&a) {
                    a = rng.usize_in(0, cfg.attribute_pairs);
                }
                let word = if rng.bool_with(0.5) {
                    format!("attr{a}")
                } else {
                    format!("anti{a}")
                };
                format!("the {entity} is {word}")
            }
        };
        let mut final_label = label;
        if rng.bool_with(cfg.label_noise) {
            final_label = (final_label + 1 + rng.usize_in(0, 2)) % 3;
        }
        (premise, hypothesis, final_label)
    }

    /// Generates the matched and mismatched datasets deterministically from
    /// `seed`.
    pub fn generate(&self, seed: u64) -> MnliSplits {
        let cfg = &self.config;
        let vocab = self.build_vocab();
        let tokenizer = Tokenizer::new(vocab, cfg.max_len);
        let mut rng = RngSource::seed_from_u64(seed);
        let make = |n: usize, lo: usize, hi: usize, rng: &mut RngSource| -> Vec<Example> {
            (0..n)
                .map(|_| {
                    let (premise, hypothesis, label) = self.generate_pair(rng, lo, hi);
                    let enc = tokenizer.encode_pair(&premise, &hypothesis);
                    Example {
                        token_ids: enc.token_ids,
                        segment_ids: enc.segment_ids,
                        attention_mask: enc.attention_mask,
                        label,
                    }
                })
                .collect()
        };
        let train = make(cfg.train_size, 0, cfg.train_genres, &mut rng);
        let dev_matched = make(cfg.dev_size, 0, cfg.train_genres, &mut rng);
        let dev_mismatched = make(
            cfg.dev_size,
            cfg.train_genres,
            self.total_genres(),
            &mut rng,
        );
        let vocab_size = tokenizer.vocab().len();
        MnliSplits {
            matched: TaskDataset {
                task: TaskKind::MnliMatched,
                vocab: tokenizer.vocab().clone(),
                num_classes: 3,
                vocab_size,
                max_len: cfg.max_len,
                train,
                dev: dev_matched,
            },
            mismatched: TaskDataset {
                task: TaskKind::MnliMismatched,
                vocab: tokenizer.vocab().clone(),
                num_classes: 3,
                vocab_size,
                max_len: cfg.max_len,
                train: Vec::new(),
                dev: dev_mismatched,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = MnliGenerator::new(MnliConfig::tiny());
        let a = gen.generate(9);
        let b = gen.generate(9);
        assert_eq!(a.matched.train, b.matched.train);
        assert_eq!(a.mismatched.dev, b.mismatched.dev);
    }

    #[test]
    fn sizes_match_config() {
        let cfg = MnliConfig::tiny();
        let splits = MnliGenerator::new(cfg.clone()).generate(1);
        assert_eq!(splits.matched.train.len(), cfg.train_size);
        assert_eq!(splits.matched.dev.len(), cfg.dev_size);
        assert_eq!(splits.mismatched.dev.len(), cfg.dev_size);
        assert!(splits.mismatched.train.is_empty());
    }

    #[test]
    fn labels_cover_three_classes() {
        let splits = MnliGenerator::new(MnliConfig::tiny()).generate(2);
        for class in 0..3 {
            assert!(
                splits.matched.train.iter().any(|e| e.label == class),
                "class {class} missing from training data"
            );
        }
        assert!(splits.matched.train.iter().all(|e| e.label < 3));
    }

    #[test]
    fn matched_and_mismatched_use_disjoint_entities() {
        let cfg = MnliConfig::tiny();
        let gen = MnliGenerator::new(cfg.clone());
        let vocab = gen.build_vocab();
        let splits = gen.generate(3);
        // Entity tokens of the held-out genres must not appear in training.
        let heldout_prefixes: Vec<String> = (cfg.train_genres
            ..cfg.train_genres + cfg.heldout_genres)
            .map(|g| format!("ent{g}x"))
            .collect();
        for ex in &splits.matched.train {
            for &t in &ex.token_ids {
                if let Some(tok) = vocab.id_to_token(t) {
                    assert!(
                        !heldout_prefixes.iter().any(|p| tok.starts_with(p)),
                        "held-out entity {tok} leaked into the training split"
                    );
                }
            }
        }
    }

    #[test]
    fn rule_based_oracle_reaches_high_accuracy() {
        // The label is decidable from whether the hypothesis attribute (or
        // its antonym) appears in the premise — verify the generated data is
        // consistent with that rule.
        let cfg = MnliConfig::tiny();
        let gen = MnliGenerator::new(cfg.clone());
        let vocab = gen.build_vocab();
        let splits = gen.generate(4);
        let mut correct = 0usize;
        for ex in &splits.matched.dev {
            // Split the pair back using the [SEP] positions.
            let sep = vocab.sep_id();
            let seps: Vec<usize> = ex
                .token_ids
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == sep)
                .map(|(i, _)| i)
                .collect();
            let premise: Vec<&str> = ex.token_ids[1..seps[0]]
                .iter()
                .filter_map(|&t| vocab.id_to_token(t))
                .collect();
            let hypothesis: Vec<&str> = ex.token_ids[seps[0] + 1..seps[1]]
                .iter()
                .filter_map(|&t| vocab.id_to_token(t))
                .collect();
            let hyp_attr = hypothesis
                .iter()
                .find(|w| w.starts_with("attr") || w.starts_with("anti"))
                .copied()
                .unwrap_or("");
            let pred = if premise.contains(&hyp_attr) {
                ENTAILMENT
            } else {
                let flipped = if let Some(rest) = hyp_attr.strip_prefix("attr") {
                    format!("anti{rest}")
                } else {
                    format!("attr{}", hyp_attr.trim_start_matches("anti"))
                };
                if premise.contains(&flipped.as_str()) {
                    CONTRADICTION
                } else {
                    NEUTRAL
                }
            };
            if pred == ex.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / splits.matched.dev.len() as f64;
        assert!(acc > 0.95, "oracle accuracy unexpectedly low: {acc}");
    }
}
