//! Synthetic SST-2: binary sentiment classification over generated sentences.
//!
//! Sentences are built from positive, negative and neutral word pools plus a
//! negation word that flips the sentiment of the *following* word. The label
//! is the sign of the net (negation-aware) sentiment, with a configurable
//! amount of label noise. The negation rule makes word order matter, so a
//! model needs more than a bag-of-words to reach the accuracy ceiling —
//! mirroring why a transformer (and not a unigram classifier) is the right
//! tool for the real SST-2.

use crate::glue::{Example, TaskDataset, TaskKind};
use crate::tokenizer::Tokenizer;
use crate::vocab::Vocab;
use fqbert_tensor::RngSource;

/// Configuration of the synthetic SST-2 generator.
#[derive(Debug, Clone, PartialEq)]
pub struct Sst2Config {
    /// Number of training sentences.
    pub train_size: usize,
    /// Number of evaluation sentences.
    pub dev_size: usize,
    /// Number of distinct positive / negative words (each).
    pub sentiment_words: usize,
    /// Number of distinct neutral filler words.
    pub neutral_words: usize,
    /// Sentence length range (words, before `[CLS]`/`[SEP]`).
    pub min_words: usize,
    /// Maximum sentence length in words.
    pub max_words: usize,
    /// Probability that a sentiment word is preceded by the negation word.
    pub negation_prob: f64,
    /// Probability of flipping the gold label (label noise).
    pub label_noise: f64,
    /// Padded sequence length produced by the tokenizer.
    pub max_len: usize,
}

impl Default for Sst2Config {
    fn default() -> Self {
        Self {
            train_size: 2000,
            dev_size: 400,
            sentiment_words: 24,
            neutral_words: 60,
            min_words: 4,
            max_words: 12,
            negation_prob: 0.25,
            label_noise: 0.02,
            max_len: 32,
        }
    }
}

impl Sst2Config {
    /// A reduced configuration for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            train_size: 200,
            dev_size: 80,
            sentiment_words: 8,
            neutral_words: 16,
            min_words: 3,
            max_words: 8,
            negation_prob: 0.2,
            label_noise: 0.0,
            max_len: 16,
        }
    }
}

/// Generator for the synthetic SST-2 task.
#[derive(Debug, Clone)]
pub struct Sst2Generator {
    config: Sst2Config,
}

impl Sst2Generator {
    /// Creates a generator with the given configuration.
    pub fn new(config: Sst2Config) -> Self {
        Self { config }
    }

    /// Builds the word vocabulary used by the generator.
    pub fn build_vocab(&self) -> Vocab {
        let mut words = vec!["not".to_string()];
        for i in 0..self.config.sentiment_words {
            words.push(format!("pos{i}"));
            words.push(format!("neg{i}"));
        }
        for i in 0..self.config.neutral_words {
            words.push(format!("filler{i}"));
        }
        Vocab::from_tokens(words)
    }

    /// Generates one sentence and its gold label.
    fn generate_sentence(&self, rng: &mut RngSource) -> (String, usize) {
        let cfg = &self.config;
        let n_words = rng.usize_in(cfg.min_words, cfg.max_words + 1);
        let mut words = Vec::with_capacity(n_words + 2);
        let mut score: i32 = 0;
        for _ in 0..n_words {
            let roll = rng.uniform(0.0, 1.0);
            if roll < 0.45 {
                // Sentiment-bearing word, possibly negated.
                let positive = rng.bool_with(0.5);
                let idx = rng.usize_in(0, cfg.sentiment_words);
                let negated = rng.bool_with(cfg.negation_prob);
                if negated {
                    words.push("not".to_string());
                }
                words.push(if positive {
                    format!("pos{idx}")
                } else {
                    format!("neg{idx}")
                });
                let polarity = if positive { 1 } else { -1 };
                score += if negated { -polarity } else { polarity };
            } else {
                words.push(format!("filler{}", rng.usize_in(0, cfg.neutral_words)));
            }
        }
        // Guarantee a non-zero score so the label is well defined.
        if score == 0 {
            let positive = rng.bool_with(0.5);
            let idx = rng.usize_in(0, cfg.sentiment_words);
            words.push(if positive {
                format!("pos{idx}")
            } else {
                format!("neg{idx}")
            });
            score += if positive { 1 } else { -1 };
        }
        let mut label = usize::from(score > 0);
        if rng.bool_with(cfg.label_noise) {
            label = 1 - label;
        }
        (words.join(" "), label)
    }

    /// Generates the full dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> TaskDataset {
        let vocab = self.build_vocab();
        let tokenizer = Tokenizer::new(vocab, self.config.max_len);
        let mut rng = RngSource::seed_from_u64(seed);
        let make = |n: usize, rng: &mut RngSource| -> Vec<Example> {
            (0..n)
                .map(|_| {
                    let (text, label) = self.generate_sentence(rng);
                    let enc = tokenizer.encode_single(&text);
                    Example {
                        token_ids: enc.token_ids,
                        segment_ids: enc.segment_ids,
                        attention_mask: enc.attention_mask,
                        label,
                    }
                })
                .collect()
        };
        let train = make(self.config.train_size, &mut rng);
        let dev = make(self.config.dev_size, &mut rng);
        TaskDataset {
            vocab: tokenizer.vocab().clone(),
            task: TaskKind::Sst2,
            num_classes: 2,
            vocab_size: tokenizer.vocab().len(),
            max_len: self.config.max_len,
            train,
            dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = Sst2Generator::new(Sst2Config::tiny());
        let a = gen.generate(7);
        let b = gen.generate(7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.dev, b.dev);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let gen = Sst2Generator::new(Sst2Config::tiny());
        assert_ne!(gen.generate(1).train, gen.generate(2).train);
    }

    #[test]
    fn sizes_and_shapes_match_config() {
        let cfg = Sst2Config::tiny();
        let ds = Sst2Generator::new(cfg.clone()).generate(3);
        assert_eq!(ds.train.len(), cfg.train_size);
        assert_eq!(ds.dev.len(), cfg.dev_size);
        assert_eq!(ds.num_classes, 2);
        for ex in ds.train.iter().chain(ds.dev.iter()) {
            assert_eq!(ex.token_ids.len(), cfg.max_len);
            assert!(ex.label < 2);
        }
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let ds = Sst2Generator::new(Sst2Config::default()).generate(11);
        let positives = ds.train.iter().filter(|e| e.label == 1).count();
        let frac = positives as f64 / ds.train.len() as f64;
        assert!(
            (0.35..0.65).contains(&frac),
            "label balance out of range: {frac}"
        );
    }

    #[test]
    fn token_ids_are_within_vocab() {
        let ds = Sst2Generator::new(Sst2Config::tiny()).generate(5);
        for ex in &ds.train {
            assert!(ex.token_ids.iter().all(|&t| t < ds.vocab_size));
        }
    }

    #[test]
    fn bag_of_words_majority_classifier_beats_chance() {
        // Sanity check that the synthetic task carries learnable signal: a
        // crude heuristic that counts pos* vs neg* tokens (ignoring negation)
        // must beat chance but stay below the ceiling.
        let gen = Sst2Generator::new(Sst2Config::default());
        let ds = gen.generate(13);
        let vocab = gen.build_vocab();
        let mut correct = 0usize;
        for ex in &ds.dev {
            let mut score = 0i32;
            for &t in &ex.token_ids {
                if let Some(tok) = vocab.id_to_token(t) {
                    if tok.starts_with("pos") {
                        score += 1;
                    } else if tok.starts_with("neg") && tok != "neg" {
                        score -= 1;
                    }
                }
            }
            let pred = usize::from(score > 0);
            if pred == ex.label {
                correct += 1;
            }
        }
        let acc = correct as f64 / ds.dev.len() as f64;
        assert!(acc > 0.6, "bag-of-words accuracy too low: {acc}");
        assert!(acc < 0.99, "task should not be trivially solvable: {acc}");
    }
}
