//! Word-level vocabulary with the special tokens used by BERT.

use std::collections::HashMap;

/// Padding token string.
pub const PAD_TOKEN: &str = "[PAD]";
/// Unknown-word token string.
pub const UNK_TOKEN: &str = "[UNK]";
/// Classification token prepended to every sequence.
pub const CLS_TOKEN: &str = "[CLS]";
/// Separator token between sentence pairs.
pub const SEP_TOKEN: &str = "[SEP]";

/// A word-level vocabulary mapping tokens to contiguous ids.
///
/// Ids 0–3 are always the special tokens `[PAD]`, `[UNK]`, `[CLS]`, `[SEP]`,
/// in that order, matching the conventions of the BERT embedding layer in
/// `fqbert-bert`.
///
/// # Examples
///
/// ```
/// use fqbert_nlp::Vocab;
///
/// let mut v = Vocab::new();
/// let id = v.add_token("good");
/// assert_eq!(v.token_to_id("good"), Some(id));
/// assert_eq!(v.id_to_token(id), Some("good"));
/// assert_eq!(v.pad_id(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary containing only the four special tokens.
    pub fn new() -> Self {
        let mut vocab = Self {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for tok in [PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN] {
            vocab.add_token(tok);
        }
        vocab
    }

    /// Creates a vocabulary from an iterator of word tokens (special tokens
    /// are inserted first automatically).
    pub fn from_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab = Self::new();
        for t in tokens {
            vocab.add_token(t.as_ref());
        }
        vocab
    }

    /// Adds a token if absent and returns its id.
    pub fn add_token(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
        id
    }

    /// Returns the id of a token, if present.
    pub fn token_to_id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Returns the token string for an id, if present.
    pub fn id_to_token(&self, id: usize) -> Option<&str> {
        self.id_to_token.get(id).map(String::as_str)
    }

    /// Returns the id of a token, or the `[UNK]` id for unknown words.
    pub fn id_or_unk(&self, token: &str) -> usize {
        self.token_to_id(token).unwrap_or_else(|| self.unk_id())
    }

    /// Number of tokens (including the special tokens).
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Returns `true` when only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 4
    }

    /// Id of `[PAD]` (always 0).
    pub fn pad_id(&self) -> usize {
        0
    }

    /// Id of `[UNK]` (always 1).
    pub fn unk_id(&self) -> usize {
        1
    }

    /// Id of `[CLS]` (always 2).
    pub fn cls_id(&self) -> usize {
        2
    }

    /// Id of `[SEP]` (always 3).
    pub fn sep_id(&self) -> usize {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_tokens_have_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.token_to_id(PAD_TOKEN), Some(0));
        assert_eq!(v.token_to_id(UNK_TOKEN), Some(1));
        assert_eq!(v.token_to_id(CLS_TOKEN), Some(2));
        assert_eq!(v.token_to_id(SEP_TOKEN), Some(3));
        assert_eq!(v.len(), 4);
        assert!(v.is_empty());
    }

    #[test]
    fn add_token_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add_token("hello");
        let b = v.add_token("hello");
        assert_eq!(a, b);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn id_or_unk_falls_back() {
        let v = Vocab::from_tokens(["cat"]);
        assert_eq!(v.id_or_unk("cat"), 4);
        assert_eq!(v.id_or_unk("dog"), v.unk_id());
    }

    #[test]
    fn round_trip_token_id() {
        let v = Vocab::from_tokens(["a", "b", "c"]);
        for id in 0..v.len() {
            let tok = v.id_to_token(id).unwrap();
            assert_eq!(v.token_to_id(tok), Some(id));
        }
        assert!(v.id_to_token(99).is_none());
    }
}
