//! Whitespace tokenizer producing fixed-length `[CLS] … [SEP]` encodings.

use crate::vocab::Vocab;

/// Encodes whitespace-separated text into fixed-length token-id sequences in
/// the BERT input format.
///
/// Single sentences are encoded as `[CLS] tokens… [SEP] [PAD]…`; sentence
/// pairs as `[CLS] premise… [SEP] hypothesis… [SEP] [PAD]…` with segment ids
/// 0 for the first segment (including `[CLS]` and the first `[SEP]`) and 1
/// for the second.
///
/// # Examples
///
/// ```
/// use fqbert_nlp::{Tokenizer, Vocab};
///
/// let vocab = Vocab::from_tokens(["good", "movie"]);
/// let tok = Tokenizer::new(vocab, 8);
/// let enc = tok.encode_single("good movie");
/// assert_eq!(enc.token_ids.len(), 8);
/// assert_eq!(enc.token_ids[0], 2); // [CLS]
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vocab,
    max_len: usize,
}

/// A fixed-length encoded sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoding {
    /// Token ids, padded/truncated to the tokenizer's maximum length.
    pub token_ids: Vec<usize>,
    /// Segment ids (0 = first sentence, 1 = second sentence).
    pub segment_ids: Vec<usize>,
    /// Attention mask (1 = real token, 0 = padding).
    pub attention_mask: Vec<usize>,
}

impl Tokenizer {
    /// Creates a tokenizer over `vocab` that emits sequences of exactly
    /// `max_len` ids.
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 3` (there must be room for `[CLS]`, one token and
    /// `[SEP]`).
    pub fn new(vocab: Vocab, max_len: usize) -> Self {
        assert!(max_len >= 3, "max_len must be at least 3, got {max_len}");
        Self { vocab, max_len }
    }

    /// Returns the underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Maximum sequence length produced by this tokenizer.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    fn word_ids(&self, text: &str) -> Vec<usize> {
        text.split_whitespace()
            .map(|w| self.vocab.id_or_unk(&w.to_lowercase()))
            .collect()
    }

    /// Encodes a single sentence.
    pub fn encode_single(&self, text: &str) -> Encoding {
        let words = self.word_ids(text);
        let budget = self.max_len - 2; // [CLS] and [SEP]
        let words = &words[..words.len().min(budget)];
        let mut token_ids = Vec::with_capacity(self.max_len);
        token_ids.push(self.vocab.cls_id());
        token_ids.extend_from_slice(words);
        token_ids.push(self.vocab.sep_id());
        self.finish(token_ids, None)
    }

    /// Encodes a sentence pair (premise, hypothesis).
    pub fn encode_pair(&self, first: &str, second: &str) -> Encoding {
        let a = self.word_ids(first);
        let b = self.word_ids(second);
        let budget = self.max_len - 3; // [CLS] and two [SEP]
                                       // Give each segment half the budget, handing unused room to the other.
        let half = budget / 2;
        let a_take = a
            .len()
            .min(budget.saturating_sub(b.len().min(half)).max(half));
        let b_take = b.len().min(budget - a.len().min(a_take));
        let mut token_ids = Vec::with_capacity(self.max_len);
        token_ids.push(self.vocab.cls_id());
        token_ids.extend_from_slice(&a[..a_take]);
        token_ids.push(self.vocab.sep_id());
        let first_len = token_ids.len();
        token_ids.extend_from_slice(&b[..b_take]);
        token_ids.push(self.vocab.sep_id());
        self.finish(token_ids, Some(first_len))
    }

    fn finish(&self, mut token_ids: Vec<usize>, first_segment_len: Option<usize>) -> Encoding {
        token_ids.truncate(self.max_len);
        let real_len = token_ids.len();
        token_ids.resize(self.max_len, self.vocab.pad_id());
        let mut segment_ids = vec![0usize; self.max_len];
        if let Some(first_len) = first_segment_len {
            for s in segment_ids.iter_mut().take(real_len).skip(first_len) {
                *s = 1;
            }
        }
        let mut attention_mask = vec![0usize; self.max_len];
        for m in attention_mask.iter_mut().take(real_len) {
            *m = 1;
        }
        Encoding {
            token_ids,
            segment_ids,
            attention_mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokenizer(max_len: usize) -> Tokenizer {
        let vocab = Vocab::from_tokens(["the", "cat", "sat", "good", "bad", "dog"]);
        Tokenizer::new(vocab, max_len)
    }

    #[test]
    fn single_sentence_layout() {
        let tok = tokenizer(8);
        let enc = tok.encode_single("the cat sat");
        assert_eq!(enc.token_ids.len(), 8);
        assert_eq!(enc.token_ids[0], tok.vocab().cls_id());
        assert_eq!(enc.token_ids[4], tok.vocab().sep_id());
        assert_eq!(enc.token_ids[5], tok.vocab().pad_id());
        assert_eq!(enc.attention_mask, vec![1, 1, 1, 1, 1, 0, 0, 0]);
        assert!(enc.segment_ids.iter().all(|&s| s == 0));
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let tok = tokenizer(6);
        let enc = tok.encode_single("the zebra");
        assert_eq!(enc.token_ids[2], tok.vocab().unk_id());
    }

    #[test]
    fn long_sentence_is_truncated() {
        let tok = tokenizer(5);
        let enc = tok.encode_single("the cat sat the cat sat the cat");
        assert_eq!(enc.token_ids.len(), 5);
        assert_eq!(enc.token_ids[4], tok.vocab().sep_id());
        assert!(enc.attention_mask.iter().all(|&m| m == 1));
    }

    #[test]
    fn pair_encoding_segments() {
        let tok = tokenizer(10);
        let enc = tok.encode_pair("the cat", "good dog");
        // Layout: [CLS] the cat [SEP] good dog [SEP] [PAD]…
        assert_eq!(enc.token_ids[0], tok.vocab().cls_id());
        assert_eq!(enc.token_ids[3], tok.vocab().sep_id());
        assert_eq!(enc.token_ids[6], tok.vocab().sep_id());
        assert_eq!(enc.segment_ids[..4], [0, 0, 0, 0]);
        assert_eq!(enc.segment_ids[4..7], [1, 1, 1]);
        assert_eq!(enc.attention_mask[..7], [1; 7]);
        assert_eq!(enc.attention_mask[7..], [0, 0, 0]);
    }

    #[test]
    fn casing_is_normalised() {
        let tok = tokenizer(6);
        let a = tok.encode_single("GOOD");
        let b = tok.encode_single("good");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_len must be at least 3")]
    fn tiny_max_len_panics() {
        let _ = Tokenizer::new(Vocab::new(), 2);
    }
}
