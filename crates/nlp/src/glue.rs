//! GLUE-style task plumbing: examples, datasets, splits and metrics.

/// Which GLUE task an example or dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Binary sentiment classification (Stanford Sentiment Treebank v2).
    Sst2,
    /// 3-way natural-language inference, matched genre split.
    MnliMatched,
    /// 3-way natural-language inference, mismatched (held-out genre) split.
    MnliMismatched,
}

impl TaskKind {
    /// Number of output classes for the task.
    pub fn num_classes(self) -> usize {
        match self {
            TaskKind::Sst2 => 2,
            TaskKind::MnliMatched | TaskKind::MnliMismatched => 3,
        }
    }

    /// Human-readable task name used in the experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Sst2 => "SST-2",
            TaskKind::MnliMatched => "MNLI",
            TaskKind::MnliMismatched => "MNLI-m",
        }
    }

    /// Human-readable label of class `index`, matching the generator's
    /// label conventions (SST-2: `1` is positive; MNLI: the
    /// [`crate::mnli::ENTAILMENT`]/[`crate::mnli::NEUTRAL`]/
    /// [`crate::mnli::CONTRADICTION`] constants). Out-of-range indices
    /// render as `unknown` rather than panicking, so serving paths can
    /// label any model output.
    pub fn class_name(self, index: usize) -> &'static str {
        let names: &[&'static str] = match self {
            TaskKind::Sst2 => &["negative", "positive"],
            TaskKind::MnliMatched | TaskKind::MnliMismatched => {
                &["entailment", "neutral", "contradiction"]
            }
        };
        names.get(index).copied().unwrap_or("unknown")
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One encoded classification example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Fixed-length token ids (already padded/truncated).
    pub token_ids: Vec<usize>,
    /// Segment ids (0/1) aligned with `token_ids`.
    pub segment_ids: Vec<usize>,
    /// Attention mask aligned with `token_ids`.
    pub attention_mask: Vec<usize>,
    /// Gold label index.
    pub label: usize,
}

/// Identifies a train or evaluation split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Training split.
    Train,
    /// Development / evaluation split.
    Dev,
}

/// A dataset for one task: a train split and a dev split over a shared
/// vocabulary.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// Which task this dataset realises.
    pub task: TaskKind,
    /// The word vocabulary the examples were encoded with (needed to build
    /// a serving tokenizer for raw text).
    pub vocab: crate::Vocab,
    /// Number of label classes.
    pub num_classes: usize,
    /// Vocabulary size (including special tokens).
    pub vocab_size: usize,
    /// Maximum (padded) sequence length.
    pub max_len: usize,
    /// Training examples.
    pub train: Vec<Example>,
    /// Evaluation examples.
    pub dev: Vec<Example>,
}

impl TaskDataset {
    /// Returns the requested split.
    pub fn split(&self, split: Split) -> &[Example] {
        match split {
            Split::Train => &self.train,
            Split::Dev => &self.dev,
        }
    }

    /// Returns `(token id matrix rows, labels)` for a batch of examples,
    /// useful when driving the model directly.
    pub fn labels(&self, split: Split) -> Vec<usize> {
        self.split(split).iter().map(|e| e.label).collect()
    }
}

/// Classification accuracy in percent, the metric reported by the paper for
/// both SST-2 and MNLI.
///
/// # Panics
///
/// Panics if the two slices have different lengths or are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must have equal length"
    );
    assert!(!labels.is_empty(), "accuracy of an empty set is undefined");
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    100.0 * correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_metadata() {
        assert_eq!(TaskKind::Sst2.num_classes(), 2);
        assert_eq!(TaskKind::MnliMatched.num_classes(), 3);
        assert_eq!(TaskKind::MnliMismatched.num_classes(), 3);
        assert_eq!(TaskKind::Sst2.to_string(), "SST-2");
        assert_eq!(TaskKind::MnliMismatched.to_string(), "MNLI-m");
    }

    #[test]
    fn class_names_cover_every_class_and_tolerate_bad_indices() {
        assert_eq!(TaskKind::Sst2.class_name(0), "negative");
        assert_eq!(TaskKind::Sst2.class_name(1), "positive");
        assert_eq!(
            TaskKind::MnliMatched.class_name(crate::mnli::ENTAILMENT),
            "entailment"
        );
        assert_eq!(
            TaskKind::MnliMatched.class_name(crate::mnli::NEUTRAL),
            "neutral"
        );
        assert_eq!(
            TaskKind::MnliMismatched.class_name(crate::mnli::CONTRADICTION),
            "contradiction"
        );
        assert_eq!(TaskKind::Sst2.class_name(9), "unknown");
    }

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 75.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 100.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accuracy_empty_panics() {
        accuracy(&[], &[]);
    }

    #[test]
    fn dataset_split_access() {
        let ex = Example {
            token_ids: vec![2, 5, 3],
            segment_ids: vec![0, 0, 0],
            attention_mask: vec![1, 1, 1],
            label: 1,
        };
        let ds = TaskDataset {
            task: TaskKind::Sst2,
            vocab: crate::Vocab::new(),
            num_classes: 2,
            vocab_size: 10,
            max_len: 3,
            train: vec![ex.clone(), ex.clone()],
            dev: vec![ex],
        };
        assert_eq!(ds.split(Split::Train).len(), 2);
        assert_eq!(ds.split(Split::Dev).len(), 1);
        assert_eq!(ds.labels(Split::Dev), vec![1]);
    }
}
