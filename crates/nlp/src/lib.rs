//! Synthetic GLUE-like data pipeline for the FQ-BERT reproduction.
//!
//! The paper evaluates FQ-BERT on the SST-2 (binary sentiment) and MNLI
//! (3-way natural-language inference) tasks of the GLUE benchmark. Those
//! corpora cannot be redistributed here and a 110 M-parameter pretrained
//! model cannot be shipped, so this crate provides **synthetic** stand-ins
//! that preserve the properties the quantization experiments depend on:
//!
//! * [`sst2`] generates sentences from sentiment-bearing word distributions
//!   (with negation, so the task is not purely bag-of-words) labelled
//!   positive/negative.
//! * [`mnli`] generates premise/hypothesis pairs over entity–attribute
//!   "genres" labelled entailment / neutral / contradiction, with a held-out
//!   genre providing the *mismatched* evaluation split.
//! * [`vocab`] and [`tokenizer`] provide the word-level vocabulary and the
//!   `[CLS] … [SEP] …` encoding used by the BERT model.
//! * [`glue`] defines the task/dataset/metric plumbing shared by the
//!   experiments.
//!
//! Everything is seeded and fully deterministic.
//!
//! # Examples
//!
//! ```
//! use fqbert_nlp::{Sst2Config, Sst2Generator};
//!
//! let dataset = Sst2Generator::new(Sst2Config::default()).generate(42);
//! assert!(dataset.train.len() > 0);
//! assert_eq!(dataset.num_classes, 2);
//! ```

pub mod glue;
pub mod mnli;
pub mod sst2;
pub mod tokenizer;
pub mod vocab;

pub use glue::{accuracy, Example, Split, TaskDataset, TaskKind};
pub use mnli::{MnliConfig, MnliGenerator, MnliSplits};
pub use sst2::{Sst2Config, Sst2Generator};
pub use tokenizer::Tokenizer;
pub use vocab::{Vocab, CLS_TOKEN, PAD_TOKEN, SEP_TOKEN, UNK_TOKEN};
