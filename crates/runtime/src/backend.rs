//! The backend-agnostic inference abstraction and its three first-class
//! implementations: float, integer-only, and accelerator-simulated.

use crate::batch::{BatchCost, BatchOutput, EncodedBatch};
use crate::{Result, RuntimeError};
use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{cycle_model, AcceleratorConfig};
use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel, NoopHook};
use fqbert_core::IntBertModel;
use fqbert_tensor::GemmScratch;

/// Numeric precision a backend computes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// IEEE-754 single precision (the float baseline).
    Float32,
    /// Integer-only: quantized weights and 8-bit activations.
    Integer {
        /// Encoder weight bit-width (4 for FQ-BERT, 8 for the W8/A8 variant).
        weight_bits: u32,
    },
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Float32 => write!(f, "fp32"),
            Precision::Integer { weight_bits } => write!(f, "w{weight_bits}/a8"),
        }
    }
}

/// Static description of the hardware cost model a backend charges latency
/// through (only the simulated backend has one).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Target platform name (e.g. `ZCU102`).
    pub platform: String,
    /// Accelerator clock in MHz.
    pub clock_mhz: f64,
    /// Number of processing units.
    pub processing_units: usize,
    /// PEs per processing unit (the paper's `N`).
    pub pes_per_pu: usize,
    /// Multipliers per BIM (the paper's `M`).
    pub multipliers_per_bim: usize,
}

/// A deployable inference backend over a classification BERT.
///
/// This is the single entry point every workload goes through: the float
/// baseline, the integer-only FQ-BERT engine and the accelerator-simulated
/// engine all classify the same [`EncodedBatch`] and return the same
/// [`BatchOutput`], so callers can swap backends without touching their
/// pipeline.
///
/// Backends are `Send + Sync`: inference is a pure function of the
/// immutable model state, so one backend (or the [`crate::Engine`] wrapping
/// it) is shared cheaply behind an `Arc` across server worker threads.
pub trait InferenceBackend: Send + Sync {
    /// Classifies every sequence in the batch.
    ///
    /// # Errors
    ///
    /// Returns an error if a sequence is invalid for the underlying model
    /// (empty, overlong, out-of-vocabulary ids).
    fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput>;

    /// Classifies one shard of a larger batch using a caller-owned GEMM
    /// scratch buffer — the entry point of the parallel engine, whose
    /// worker threads each keep one scratch alive across every shard they
    /// serve. Must be bit-identical to [`InferenceBackend::classify_batch`]
    /// over the same sequences (the scratch holds packing capacity, never
    /// numeric state); backends without an integer GEMM simply ignore the
    /// scratch, which is what the default implementation does.
    ///
    /// # Errors
    ///
    /// As for [`InferenceBackend::classify_batch`].
    fn classify_shard(
        &self,
        batch: &EncodedBatch,
        scratch: &mut GemmScratch,
    ) -> Result<BatchOutput> {
        let _ = scratch;
        self.classify_batch(batch)
    }

    /// Short human-readable backend name (`float`, `int`, `sim`).
    fn name(&self) -> &str;

    /// The numeric precision this backend computes at.
    fn precision(&self) -> Precision;

    /// The hardware cost model charged by this backend, if any.
    fn cost_model(&self) -> Option<CostModel> {
        None
    }

    /// The architecture configuration of the underlying model.
    fn config(&self) -> &BertConfig;

    /// The quantized model, for backends that own one (used to persist
    /// artifacts).
    fn int_model(&self) -> Option<&IntBertModel> {
        None
    }
}

/// The float (FP32) baseline backend wrapping `fqbert-bert`.
///
/// Batching amortizes graph construction: the model's parameters are bound
/// onto one autograd tape per batch and every sequence's forward pass reuses
/// those nodes, instead of re-registering all parameters per example as the
/// old per-crate entry points did.
#[derive(Debug, Clone)]
pub struct FloatBackend {
    model: BertModel,
}

impl FloatBackend {
    /// Wraps a trained float model.
    pub fn new(model: BertModel) -> Self {
        Self { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &BertModel {
        &self.model
    }
}

impl InferenceBackend for FloatBackend {
    fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput> {
        if batch.is_empty() {
            return Ok(BatchOutput::from_logits(Vec::new(), None));
        }
        // One parameter binding for the whole batch.
        let mut graph = Graph::new();
        let bound = self.model.bind(&mut graph);
        let mut logits = Vec::with_capacity(batch.len());
        for example in batch.examples() {
            let id = bound.forward(&mut graph, example, &mut NoopHook)?;
            logits.push(graph.value(id).clone().into_vec());
        }
        Ok(BatchOutput::from_logits(logits, None))
    }

    fn name(&self) -> &str {
        "float"
    }

    fn precision(&self) -> Precision {
        Precision::Float32
    }

    fn config(&self) -> &BertConfig {
        self.model.config()
    }
}

/// The integer-only FQ-BERT backend wrapping `fqbert-core`'s
/// [`IntBertModel`].
///
/// Batching packs all sequences into one matrix so every linear projection
/// runs as a single blocked integer GEMM over panel-packed weights with the
/// requantize fused into the kernel epilogue (see
/// `IntEncoderLayer::forward_batch` and `fqbert_tensor::gemm`); one packing
/// scratch buffer is reused across all encoder layers of a batch. Batches
/// containing an all-padding (zero-length) sequence are rejected with an
/// `InvalidArgument` error rather than panicking.
#[derive(Debug, Clone)]
pub struct IntBackend {
    model: IntBertModel,
}

impl IntBackend {
    /// Wraps a converted integer model.
    pub fn new(model: IntBertModel) -> Self {
        Self { model }
    }

    /// The wrapped integer model.
    pub fn model(&self) -> &IntBertModel {
        &self.model
    }
}

impl InferenceBackend for IntBackend {
    fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput> {
        let logits = self.model.logits_batch(batch.examples())?;
        Ok(BatchOutput::from_logits(logits, None))
    }

    fn classify_shard(
        &self,
        batch: &EncodedBatch,
        scratch: &mut GemmScratch,
    ) -> Result<BatchOutput> {
        let logits = self
            .model
            .logits_batch_with_scratch(batch.examples(), scratch)?;
        Ok(BatchOutput::from_logits(logits, None))
    }

    fn name(&self) -> &str {
        "int"
    }

    fn precision(&self) -> Precision {
        Precision::Integer {
            weight_bits: self.model.weight_bits(),
        }
    }

    fn config(&self) -> &BertConfig {
        self.model.config()
    }

    fn int_model(&self) -> Option<&IntBertModel> {
        Some(&self.model)
    }
}

/// The accelerator-simulated backend: functionally identical to
/// [`IntBackend`] (it runs the same integer engine, which the bit-accurate
/// datapath tests prove equal to the hardware), while charging latency
/// through the `fqbert-accel` cycle model.
#[derive(Debug, Clone)]
pub struct SimBackend {
    int: IntBackend,
    accel: AcceleratorConfig,
}

impl SimBackend {
    /// Wraps an integer model together with an accelerator configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if the accelerator
    /// configuration is internally inconsistent.
    pub fn new(model: IntBertModel, accel: AcceleratorConfig) -> Result<Self> {
        accel.validate().map_err(RuntimeError::InvalidConfig)?;
        Ok(Self {
            int: IntBackend::new(model),
            accel,
        })
    }

    /// The accelerator configuration charged for latency.
    pub fn accelerator(&self) -> &AcceleratorConfig {
        &self.accel
    }

    /// Cycle-model latency of one sequence of `seq_len` tokens, charged at
    /// the per-layer, per-site weight bit-widths the wrapped model actually
    /// carries (so mixed-precision artifacts are priced faithfully).
    pub fn latency_of(&self, seq_len: usize) -> cycle_model::LatencyReport {
        let cfg = self.int.config();
        let shape = EncoderShape {
            seq_len,
            hidden: cfg.hidden,
            intermediate: cfg.intermediate,
            heads: cfg.heads,
        };
        let bits = self.int.model.layer_bit_widths();
        cycle_model::estimate_latency_mixed(&self.accel, &shape, &bits)
    }

    /// Attaches the cycle-model cost of every sequence in `batch` to `out`.
    ///
    /// The per-sequence cost is a pure function of the sequence length
    /// (cached once per distinct length within the call), so a batch split
    /// into shards charges exactly the same per-sequence costs as the
    /// unsharded batch — the parallel engine relies on this when it
    /// reassembles shard outputs.
    fn charge_costs(&self, out: &mut BatchOutput, batch: &EncodedBatch) {
        let mut total_cycles = 0u64;
        let mut latency_ms = 0.0f64;
        let mut cached: Vec<(usize, u64, f64)> = Vec::new();
        let mut sequence_costs = Vec::with_capacity(batch.len());
        for seq_len in batch.seq_lens() {
            let (cycles, ms) = match cached.iter().find(|(s, _, _)| *s == seq_len) {
                Some(&(_, cycles, ms)) => (cycles, ms),
                None => {
                    let report = self.latency_of(seq_len);
                    cached.push((seq_len, report.total_cycles, report.latency_ms));
                    (report.total_cycles, report.latency_ms)
                }
            };
            sequence_costs.push(BatchCost {
                total_cycles: cycles,
                latency_ms: ms,
            });
            total_cycles += cycles;
            latency_ms += ms;
        }
        out.cost = Some(BatchCost {
            total_cycles,
            latency_ms,
        });
        out.sequence_costs = Some(sequence_costs);
    }
}

impl InferenceBackend for SimBackend {
    fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput> {
        let mut out = self.int.classify_batch(batch)?;
        self.charge_costs(&mut out, batch);
        Ok(out)
    }

    fn classify_shard(
        &self,
        batch: &EncodedBatch,
        scratch: &mut GemmScratch,
    ) -> Result<BatchOutput> {
        let mut out = self.int.classify_shard(batch, scratch)?;
        self.charge_costs(&mut out, batch);
        Ok(out)
    }

    fn name(&self) -> &str {
        "sim"
    }

    fn precision(&self) -> Precision {
        self.int.precision()
    }

    fn cost_model(&self) -> Option<CostModel> {
        Some(CostModel {
            platform: self.accel.device.name().to_string(),
            clock_mhz: self.accel.frequency_hz / 1e6,
            processing_units: self.accel.num_pus,
            pes_per_pu: self.accel.pes_per_pu,
            multipliers_per_bim: self.accel.multipliers_per_bim,
        })
    }

    fn config(&self) -> &BertConfig {
        self.int.config()
    }

    fn int_model(&self) -> Option<&IntBertModel> {
        self.int.int_model()
    }
}
