//! The unified inference engine and its builder.

use crate::artifact::ModelArtifact;
use crate::backend::{FloatBackend, InferenceBackend, IntBackend, SimBackend};
use crate::batch::{BatchCost, BatchOutput, EncodedBatch};
use crate::pool::WorkerPool;
use crate::tensor_cache::{LoadStats, TensorCache};
use crate::{Result, RuntimeError};
use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_bert::BertModel;
use fqbert_core::{convert, FqBertError, QatHook};
use fqbert_nlp::{accuracy, Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_telemetry::{Counter, Gauge, Histogram, Registry};
use fqbert_tensor::gemm::kernels as gemm_kernels;
use fqbert_tensor::GemmScratch;
use std::path::Path;
use std::sync::Arc;

/// Which backend an [`EngineBuilder`] should construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The FP32 float baseline.
    Float,
    /// The integer-only FQ-BERT engine (default).
    #[default]
    Int,
    /// The integer engine with latency charged through the accelerator
    /// cycle model.
    Sim,
}

impl BackendKind {
    /// All backend kinds, in declaration order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Float, BackendKind::Int, BackendKind::Sim];

    /// The canonical config/CLI spelling (`float`, `int`, `sim`) — the same
    /// string the matching backend returns from
    /// [`crate::InferenceBackend::name`].
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Float => "float",
            BackendKind::Int => "int",
            BackendKind::Sim => "sim",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = RuntimeError;

    /// Parses the canonical spellings `float`, `int` and `sim`
    /// (case-insensitively, ignoring surrounding whitespace), so registry
    /// entries and CLI flags come from plain config strings.
    fn from_str(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "float" => Ok(BackendKind::Float),
            "int" => Ok(BackendKind::Int),
            "sim" => Ok(BackendKind::Sim),
            other => Err(RuntimeError::InvalidConfig(format!(
                "unknown backend kind `{other}` (expected `float`, `int` or `sim`)"
            ))),
        }
    }
}

/// How an engine executes a batch: on the caller's thread (`threads == 1`,
/// the default) or sharded across a fixed worker pool.
///
/// With `threads > 1` the engine splits every [`EncodedBatch`] into up to
/// `threads` contiguous shards and classifies them concurrently, one shard
/// per pool worker, each worker reusing its own
/// [`fqbert_tensor::GemmScratch`]. Sequences never share accumulators
/// across shards (every backend's per-sequence arithmetic is independent),
/// so sharded execution is bit-identical to serial execution at every
/// thread count — a property test pins this for all three backends.
///
/// `threads == 0` means "ask the OS" ([`std::thread::available_parallelism`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Worker threads for batch execution: `1` = serial on the calling
    /// thread, `0` = auto-detect from the host's available parallelism.
    pub threads: usize,
}

impl ExecPolicy {
    /// Serial execution on the calling thread (no pool).
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Sharded execution across `threads` pool workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// Reads the policy from the `FQBERT_THREADS` environment variable
    /// (`0` = auto-detect), falling back to serial when unset or
    /// unparsable. This is the builder default, so one environment variable
    /// switches every engine in a process — tests, benches and the serving
    /// stack — onto the worker pool.
    pub fn from_env() -> Self {
        let threads = std::env::var("FQBERT_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self { threads }
    }

    /// The concrete worker count this policy resolves to on this host
    /// (auto-detection applied, minimum 1).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Classification result for one input text.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted class index.
    pub prediction: usize,
    /// Class logits.
    pub logits: Vec<f32>,
}

/// Request-level classification result for one sequence: the predicted
/// class index *and* its task label name, raw logits, softmax scores, and
/// (for the simulated backend) the cycle-model cost of exactly this
/// sequence.
///
/// This is the unit a serving front-end returns per request, where the bare
/// [`Classification`] (index + logits) is not enough to render a response.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored {
    /// Predicted class index.
    pub prediction: usize,
    /// Human-readable label of the predicted class (e.g. `positive`).
    pub label: &'static str,
    /// Raw class logits.
    pub logits: Vec<f32>,
    /// Softmax of the logits (sums to 1).
    pub scores: Vec<f32>,
    /// Simulated accelerator cost of this sequence, if the backend charges
    /// one.
    pub cost: Option<BatchCost>,
}

/// Result of [`Engine::classify_scored`] over one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredOutput {
    /// Per-sequence scored classifications, in input order.
    pub results: Vec<Scored>,
    /// Total simulated cost of the batch, if the backend charges one.
    pub cost: Option<BatchCost>,
}

/// Splits `len` items into up to `parts` contiguous, near-equal ranges
/// (the first `len % parts` ranges get one extra item). Never returns an
/// empty range: with fewer items than parts, each item gets its own shard.
fn shard_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Numerically stable softmax over a logit slice.
fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return vec![1.0 / logits.len().max(1) as f32; logits.len()];
    }
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Accuracy summary of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Classification accuracy in percent.
    pub accuracy: f64,
    /// Number of evaluated examples.
    pub num_examples: usize,
    /// Simulated accelerator latency charged for the run, if the backend
    /// has a cost model.
    pub simulated_latency_ms: Option<f64>,
}

/// Cached handles to the engine's own metrics, all named under `engine.`
/// in its telemetry registry. Handles are resolved once at assembly so the
/// classify hot path never touches the registry lock — recording is a few
/// relaxed atomic adds per batch.
#[derive(Debug)]
struct EngineMetrics {
    /// Batches classified (`engine.calls`), including failed calls.
    calls: Arc<Counter>,
    /// Sequences classified (`engine.sequences`).
    sequences: Arc<Counter>,
    /// Wall-clock microseconds per `classify_batch` call
    /// (`engine.classify_us`).
    classify_us: Arc<Histogram>,
    /// Wall-clock microseconds per pool shard (`engine.shard_us`); empty
    /// under the serial policy.
    shard_us: Arc<Histogram>,
    /// Shards currently executing on pool workers
    /// (`engine.inflight_shards`).
    inflight_shards: Arc<Gauge>,
}

impl EngineMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            calls: registry.counter("engine.calls"),
            sequences: registry.counter("engine.sequences"),
            classify_us: registry.histogram("engine.classify_us"),
            shard_us: registry.histogram("engine.shard_us"),
            inflight_shards: registry.gauge("engine.inflight_shards"),
        }
    }
}

/// A task-aware serving engine: tokenizer + backend + batch size.
///
/// Built by [`EngineBuilder`]; every workload (examples, experiment
/// binaries, the `fqbert-serve` server) funnels through
/// [`Engine::classify_texts`] / [`Engine::classify_batch`] /
/// [`Engine::classify_scored`] regardless of which backend is loaded.
///
/// Every engine carries a telemetry [`Registry`] (private by default,
/// shareable via [`EngineBuilder::telemetry`]) recording call counts,
/// classify latency and per-shard timings under `engine.*` — see
/// [`Engine::telemetry`].
pub struct Engine {
    task: TaskKind,
    tokenizer: Tokenizer,
    backend: Arc<dyn InferenceBackend>,
    batch_size: usize,
    /// Present iff the execution policy resolved to more than one thread.
    /// Each worker owns one GEMM scratch pre-sized for the model's deepest
    /// projection, so the integer hot path neither contends on a shared
    /// buffer nor reallocates per shard.
    pool: Option<WorkerPool<GemmScratch>>,
    telemetry: Arc<Registry>,
    metrics: EngineMetrics,
    /// Dedup statistics of the artifact load that produced this engine
    /// (all-zero for engines built from in-memory models or eager loads).
    load_stats: LoadStats,
}

impl Engine {
    /// Assembles an engine, spinning up the worker pool when the policy
    /// asks for more than one thread.
    fn assemble(
        task: TaskKind,
        tokenizer: Tokenizer,
        backend: Arc<dyn InferenceBackend>,
        batch_size: usize,
        exec: ExecPolicy,
        telemetry: Option<Arc<Registry>>,
    ) -> Self {
        let threads = exec.effective_threads();
        let pool = (threads > 1).then(|| {
            let cfg = backend.config();
            let depth = cfg.hidden.max(cfg.intermediate);
            WorkerPool::new(threads, move |_| GemmScratch::with_depth(depth))
        });
        let telemetry = telemetry.unwrap_or_else(|| Arc::new(Registry::new()));
        let metrics = EngineMetrics::new(&telemetry);
        // Resolve the GEMM kernel dispatch now (first call latches the
        // FQBERT_KERNEL / feature-detection choice) and record it so every
        // snapshot of this engine says which micro-kernel served it.
        telemetry
            .label("engine.kernel")
            .set(gemm_kernels::selected().name);
        Self {
            task,
            tokenizer,
            backend,
            batch_size,
            pool,
            telemetry,
            metrics,
            load_stats: LoadStats::default(),
        }
    }

    /// The task this engine serves.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The tokenizer used to encode inputs.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The backend in use.
    pub fn backend(&self) -> &dyn InferenceBackend {
        self.backend.as_ref()
    }

    /// Sequences per backend call.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Worker threads batches are sharded across (1 = serial execution).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::threads)
    }

    /// Name of the GEMM micro-kernel serving this process: `avx2`, `sse2`,
    /// `neon` or `scalar` — whatever the runtime dispatch selected (or
    /// `FQBERT_KERNEL` forced) at first use.
    pub fn kernel(&self) -> &'static str {
        gemm_kernels::selected().name
    }

    /// Bytes of model weight storage currently resident for this engine's
    /// quantized model (0 for the float backend): the seven float tensors
    /// plus every layer's materialized panel/code/bias storage. Grows as
    /// zero-copy loaded layers materialize their GEMM panels on first use.
    pub fn resident_bytes(&self) -> usize {
        self.backend
            .int_model()
            .map_or(0, fqbert_core::IntBertModel::resident_bytes)
    }

    /// Dedup statistics of the artifact load that produced this engine:
    /// how many tensors (and bytes) were shared with previously loaded
    /// models instead of being loaded privately. All-zero for engines
    /// built from in-memory models or via the eager load path.
    pub fn load_stats(&self) -> LoadStats {
        self.load_stats
    }

    /// The engine's telemetry registry: `engine.calls` / `engine.sequences`
    /// counters, `engine.classify_us` / `engine.shard_us` latency
    /// histograms and the `engine.inflight_shards` gauge. Private to this
    /// engine unless one was shared via [`EngineBuilder::telemetry`].
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.telemetry
    }

    /// Classifies raw texts, batching them `batch_size` at a time.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_texts(&self, texts: &[&str]) -> Result<Vec<Classification>> {
        let mut out = Vec::with_capacity(texts.len());
        for chunk in texts.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_texts(&self.tokenizer, chunk);
            let result = self.classify_batch(&batch)?;
            for (prediction, logits) in result.predictions.into_iter().zip(result.logits) {
                out.push(Classification { prediction, logits });
            }
        }
        Ok(out)
    }

    /// Classifies sentence pairs (premise, hypothesis), batching them
    /// `batch_size` at a time.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_pairs(&self, pairs: &[(&str, &str)]) -> Result<Vec<Classification>> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_pairs(&self.tokenizer, chunk);
            let result = self.classify_batch(&batch)?;
            for (prediction, logits) in result.predictions.into_iter().zip(result.logits) {
                out.push(Classification { prediction, logits });
            }
        }
        Ok(out)
    }

    /// Classifies one pre-encoded batch: in a single backend call under the
    /// serial policy, or sharded across the worker pool when the engine was
    /// built with [`ExecPolicy`] threads > 1 (bit-identical either way —
    /// shards never share accumulators).
    ///
    /// # Errors
    ///
    /// Returns `InvalidArgument` for an empty batch (there is nothing to
    /// classify, and backends differ in how they would handle it);
    /// propagates backend errors and worker-pool failures otherwise.
    pub fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput> {
        if batch.is_empty() {
            return Err(RuntimeError::Core(FqBertError::InvalidArgument(
                "empty batch: classify_batch needs at least one sequence".to_string(),
            )));
        }
        self.metrics.calls.inc();
        self.metrics.sequences.add(batch.len() as u64);
        let timer = self.metrics.classify_us.start_timer();
        let result = match &self.pool {
            Some(pool) if batch.len() > 1 => self.classify_sharded(pool, batch),
            _ => self.backend.classify_batch(batch),
        };
        // Failed calls are timed too: a backend that errors slowly is a
        // latency problem the histogram should show.
        timer.observe();
        result
    }

    /// Splits `batch` into up to `pool.threads()` contiguous shards, runs
    /// them concurrently (one per worker, each with its own scratch) and
    /// reassembles the outputs in input order.
    fn classify_sharded(
        &self,
        pool: &WorkerPool<GemmScratch>,
        batch: &EncodedBatch,
    ) -> Result<BatchOutput> {
        let tasks: Vec<_> = shard_ranges(batch.len(), pool.threads())
            .into_iter()
            .map(|range| {
                let backend = Arc::clone(&self.backend);
                // A shard is a range view sharing the batch's storage — no
                // examples are copied onto the workers.
                let shard = batch.shard(range);
                let shard_us = Arc::clone(&self.metrics.shard_us);
                let inflight = Arc::clone(&self.metrics.inflight_shards);
                move |scratch: &mut GemmScratch| {
                    inflight.inc();
                    let timer = shard_us.start_timer();
                    let out = backend.classify_shard(&shard, scratch);
                    timer.observe();
                    inflight.dec();
                    out
                }
            })
            .collect();
        let mut logits = Vec::with_capacity(batch.len());
        let mut predictions = Vec::with_capacity(batch.len());
        let mut sequence_costs: Vec<BatchCost> = Vec::new();
        let mut costed_shards = 0usize;
        let mut shards = 0usize;
        for outcome in pool.run(tasks) {
            let shard = outcome.map_err(|e| RuntimeError::Execution(e.to_string()))??;
            shards += 1;
            logits.extend(shard.logits);
            predictions.extend(shard.predictions);
            if let Some(costs) = shard.sequence_costs {
                costed_shards += 1;
                sequence_costs.extend(costs);
            }
        }
        // Either every shard charges per-sequence costs (sim) or none does
        // (float/int) — a single backend serves all shards.
        debug_assert!(costed_shards == 0 || costed_shards == shards);
        // Re-derive the batch total from the concatenated per-sequence
        // costs in input order, exactly as the serial path folds them, so
        // the f64 latency sum is bit-identical at every thread count.
        let cost = (costed_shards > 0).then(|| {
            let mut total = BatchCost {
                total_cycles: 0,
                latency_ms: 0.0,
            };
            for c in &sequence_costs {
                total.total_cycles += c.total_cycles;
                total.latency_ms += c.latency_ms;
            }
            total
        });
        Ok(BatchOutput {
            logits,
            predictions,
            cost,
            sequence_costs: (costed_shards > 0).then_some(sequence_costs),
        })
    }

    /// Classifies one pre-encoded batch and returns request-level results:
    /// label names, softmax scores and per-sequence simulated costs on top
    /// of the raw predictions and logits.
    ///
    /// The logits are exactly those of [`Engine::classify_batch`] — the
    /// scored view adds derived data without touching the datapath, so
    /// serving through this API stays bit-identical to calling the backend
    /// directly.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_scored(&self, batch: &EncodedBatch) -> Result<ScoredOutput> {
        let out = self.classify_batch(batch)?;
        let mut sequence_costs = out
            .sequence_costs
            .map(|costs| costs.into_iter().map(Some).collect::<Vec<_>>())
            .unwrap_or_else(|| vec![None; out.logits.len()]);
        let results = out
            .predictions
            .into_iter()
            .zip(out.logits)
            .zip(sequence_costs.iter_mut())
            .map(|((prediction, logits), cost)| Scored {
                prediction,
                label: self.task.class_name(prediction),
                scores: softmax(&logits),
                logits,
                cost: cost.take(),
            })
            .collect();
        Ok(ScoredOutput {
            results,
            cost: out.cost,
        })
    }

    /// Evaluates accuracy over pre-encoded examples, batching internally.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn evaluate(&self, examples: &[Example]) -> Result<EvalSummary> {
        if examples.is_empty() {
            return Ok(EvalSummary {
                accuracy: 0.0,
                num_examples: 0,
                simulated_latency_ms: None,
            });
        }
        let mut predictions = Vec::with_capacity(examples.len());
        let mut simulated_ms: Option<f64> = None;
        for chunk in examples.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_examples(chunk.to_vec());
            let result = self.classify_batch(&batch)?;
            predictions.extend(result.predictions);
            if let Some(cost) = result.cost {
                *simulated_ms.get_or_insert(0.0) += cost.latency_ms;
            }
        }
        let labels: Vec<usize> = examples.iter().map(|e| e.label).collect();
        Ok(EvalSummary {
            accuracy: accuracy(&predictions, &labels),
            num_examples: examples.len(),
            simulated_latency_ms: simulated_ms,
        })
    }

    /// Persists the engine's quantized model (plus tokenizer and task) as a
    /// versioned binary artifact.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for the float backend (there
    /// is no quantized model to save) and I/O errors from writing.
    pub fn save(&self, path: &Path) -> Result<()> {
        let model = self.backend.int_model().ok_or_else(|| {
            RuntimeError::InvalidConfig(format!(
                "the `{}` backend holds no quantized model to save",
                self.backend.name()
            ))
        })?;
        ModelArtifact::new(self.task, model.clone(), self.tokenizer.clone()).save(path)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("task", &self.task)
            .field("backend", &self.backend.name())
            .field("precision", &self.backend.precision().to_string())
            .field("batch_size", &self.batch_size)
            .field("threads", &self.threads())
            .finish()
    }
}

/// Fluent constructor for [`Engine`]: task → tokenizer → backend →
/// batch size → calibration options.
///
/// Replaces the hand-rolled wiring the examples and the bench pipeline used
/// to duplicate (train → build hook → calibrate → convert → evaluate, each
/// slightly differently).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    task: TaskKind,
    tokenizer: Option<Tokenizer>,
    backend: BackendKind,
    batch_size: usize,
    quant: QuantConfig,
    calibration: Vec<Example>,
    accel: AcceleratorConfig,
    exec: ExecPolicy,
    telemetry: Option<Arc<Registry>>,
}

/// Default sequences per backend call.
pub const DEFAULT_BATCH_SIZE: usize = 8;

impl EngineBuilder {
    /// Starts a builder for `task` with the FQ-BERT defaults (integer
    /// backend, w4/a8 quantization, ZCU111 accelerator, batch size
    /// [`DEFAULT_BATCH_SIZE`]).
    pub fn new(task: TaskKind) -> Self {
        Self {
            task,
            tokenizer: None,
            backend: BackendKind::Int,
            batch_size: DEFAULT_BATCH_SIZE,
            quant: QuantConfig::fq_bert(),
            calibration: Vec::new(),
            accel: AcceleratorConfig::zcu111_n16_m16(),
            exec: ExecPolicy::default(),
            telemetry: None,
        }
    }

    /// Uses an existing tokenizer.
    pub fn tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = Some(tokenizer);
        self
    }

    /// Builds a tokenizer from a vocabulary and maximum sequence length.
    pub fn vocab(self, vocab: Vocab, max_len: usize) -> Self {
        self.tokenizer(Tokenizer::new(vocab, max_len))
    }

    /// Selects which backend to construct.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Sets the number of sequences per backend call.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the quantization configuration used when converting a float
    /// model (ignored by the float backend).
    pub fn quant(mut self, quant: QuantConfig) -> Self {
        self.quant = quant;
        self
    }

    /// Provides calibration examples: when building an integer backend
    /// without a QAT hook, the engine runs these through the float model in
    /// calibration-only mode to derive activation scales.
    pub fn calibrate_with(mut self, examples: &[Example]) -> Self {
        self.calibration = examples.to_vec();
        self
    }

    /// Sets the accelerator configuration charged by the simulated backend.
    pub fn accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    /// Sets the batch execution policy (serial or sharded across a worker
    /// pool). The default comes from the `FQBERT_THREADS` environment
    /// variable (serial when unset).
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for [`EngineBuilder::exec`] with an explicit thread count
    /// (`0` = auto-detect, `1` = serial).
    pub fn threads(self, threads: usize) -> Self {
        self.exec(ExecPolicy::with_threads(threads))
    }

    /// Registers the engine's metrics in an existing telemetry registry
    /// instead of a private one — how a server pools several engines'
    /// metrics. Note the metric names are fixed (`engine.*`), so engines
    /// sharing one registry share counters; give each engine its own
    /// registry and merge snapshots with a prefix
    /// ([`fqbert_telemetry::Snapshot::merge_prefixed`]) to keep them apart.
    pub fn telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    fn take_tokenizer(&mut self) -> Result<Tokenizer> {
        self.tokenizer.take().ok_or_else(|| {
            RuntimeError::InvalidConfig("a tokenizer (or vocab + max_len) is required".to_string())
        })
    }

    fn check_classes(&self, num_classes: usize) -> Result<()> {
        if num_classes != self.task.num_classes() {
            return Err(RuntimeError::InvalidConfig(format!(
                "model has {num_classes} classes but task {} needs {}",
                self.task,
                self.task.num_classes()
            )));
        }
        Ok(())
    }

    /// Builds the engine from a trained float model.
    ///
    /// For the integer and simulated backends the model is calibrated with
    /// the examples from [`EngineBuilder::calibrate_with`] (in
    /// calibration-only mode — the model itself is never perturbed) and then
    /// converted with this builder's quantization configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if no tokenizer was supplied,
    /// the model's head does not match the task, or (for integer backends)
    /// no calibration examples were provided; propagates conversion errors.
    pub fn build(mut self, model: &BertModel) -> Result<Engine> {
        self.check_classes(model.config().num_classes)?;
        let tokenizer = self.take_tokenizer()?;
        let backend: Arc<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => Arc::new(FloatBackend::new(model.clone())),
            BackendKind::Int | BackendKind::Sim => {
                if self.calibration.is_empty() {
                    return Err(RuntimeError::InvalidConfig(
                        "integer backends need calibration examples \
                         (EngineBuilder::calibrate_with) or a QAT hook \
                         (EngineBuilder::build_with_hook)"
                            .to_string(),
                    ));
                }
                let mut hook = QatHook::calibration_only(self.quant);
                for example in &self.calibration {
                    let mut graph = Graph::new();
                    let bound = model.bind(&mut graph);
                    bound.forward(&mut graph, example, &mut hook)?;
                }
                let int_model = convert(model, &hook)?;
                match self.backend {
                    BackendKind::Sim => Arc::new(SimBackend::new(int_model, self.accel.clone())?),
                    _ => Arc::new(IntBackend::new(int_model)),
                }
            }
        };
        Ok(Engine::assemble(
            self.task,
            tokenizer,
            backend,
            self.batch_size,
            self.exec,
            self.telemetry,
        ))
    }

    /// Builds the engine from a float model plus an already-calibrated QAT
    /// hook (the fine-tuning path: scales come from the hook's EMA
    /// observers instead of fresh calibration passes).
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::build`]; additionally propagates
    /// missing-calibration errors from the converter.
    pub fn build_with_hook(mut self, model: &BertModel, hook: &QatHook) -> Result<Engine> {
        self.check_classes(model.config().num_classes)?;
        let tokenizer = self.take_tokenizer()?;
        let backend: Arc<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => Arc::new(FloatBackend::new(model.clone())),
            BackendKind::Int => Arc::new(IntBackend::new(convert(model, hook)?)),
            BackendKind::Sim => {
                Arc::new(SimBackend::new(convert(model, hook)?, self.accel.clone())?)
            }
        };
        Ok(Engine::assemble(
            self.task,
            tokenizer,
            backend,
            self.batch_size,
            self.exec,
            self.telemetry,
        ))
    }

    /// Builds the engine by loading a saved artifact (`quantize once →
    /// serve many`): no float model, no retraining, no recalibration.
    ///
    /// Loads on the zero-copy path: v2 weight tensors stay in their
    /// on-disk encoding behind one shared buffer and materialize GEMM
    /// panels on first use, so cold start does not pay for unpacking every
    /// layer up front. Bit-identical to the eager
    /// [`EngineBuilder::load_eager`] path (property-tested). Use
    /// [`EngineBuilder::load_with_cache`] to dedup float tensors across
    /// several loaded models.
    ///
    /// The artifact supplies the task and tokenizer; the builder's task is
    /// overridden by the artifact's. The float backend cannot be built from
    /// an artifact.
    ///
    /// # Errors
    ///
    /// Propagates artifact I/O and validation errors; returns
    /// [`RuntimeError::InvalidConfig`] for [`BackendKind::Float`].
    pub fn load(self, path: &Path) -> Result<Engine> {
        let mut cache = TensorCache::new();
        self.load_with_cache(path, &mut cache)
    }

    /// As [`EngineBuilder::load`], interning float tensors through a
    /// caller-owned [`TensorCache`] so identical tensors across models
    /// loaded with the same cache (embedding tables and classifier heads
    /// of w4/w8 variants of one task) share one allocation. The engine's
    /// [`Engine::load_stats`] reports what was shared.
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::load`].
    pub fn load_with_cache(self, path: &Path, cache: &mut TensorCache) -> Result<Engine> {
        let bytes: Arc<[u8]> = std::fs::read(path)?.into();
        self.load_shared_bytes(&bytes, cache)
    }

    /// As [`EngineBuilder::load_with_cache`], from an already-loaded
    /// artifact byte buffer — so several registry entries pointing at the
    /// same artifact file share one read and one backing buffer instead of
    /// loading it per entry.
    ///
    /// # Errors
    ///
    /// Propagates artifact validation errors; returns
    /// [`RuntimeError::InvalidConfig`] for [`BackendKind::Float`].
    pub fn load_shared_bytes(self, bytes: &Arc<[u8]>, cache: &mut TensorCache) -> Result<Engine> {
        let (artifact, stats) = ModelArtifact::from_shared_bytes(bytes, cache)?;
        let mut engine = self.from_artifact(artifact)?;
        engine.load_stats = stats;
        Ok(engine)
    }

    /// Builds the engine by loading a saved artifact on the **eager** path:
    /// every weight tensor is unpacked and panel-packed at load time.
    /// Kept as the bit-identity oracle and cold-start baseline for the
    /// zero-copy [`EngineBuilder::load`].
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::load`].
    pub fn load_eager(self, path: &Path) -> Result<Engine> {
        let artifact = ModelArtifact::load(path)?;
        self.from_artifact(artifact)
    }

    /// Builds the engine from an in-memory artifact.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for [`BackendKind::Float`].
    pub fn from_artifact(self, artifact: ModelArtifact) -> Result<Engine> {
        let backend: Arc<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => {
                return Err(RuntimeError::InvalidConfig(
                    "artifacts store quantized models; the float backend \
                     must be built from a float model"
                        .to_string(),
                ))
            }
            BackendKind::Int => Arc::new(IntBackend::new(artifact.model)),
            BackendKind::Sim => Arc::new(SimBackend::new(artifact.model, self.accel.clone())?),
        };
        Ok(Engine::assemble(
            artifact.task,
            artifact.tokenizer,
            backend,
            self.batch_size,
            self.exec,
            self.telemetry,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("float".parse::<BackendKind>().unwrap(), BackendKind::Float);
        assert_eq!("int".parse::<BackendKind>().unwrap(), BackendKind::Int);
        assert_eq!("sim".parse::<BackendKind>().unwrap(), BackendKind::Sim);
    }

    #[test]
    fn backend_kind_parsing_is_forgiving_about_case_and_whitespace() {
        assert_eq!(
            " Float ".parse::<BackendKind>().unwrap(),
            BackendKind::Float
        );
        assert_eq!("INT".parse::<BackendKind>().unwrap(), BackendKind::Int);
        assert_eq!("Sim\n".parse::<BackendKind>().unwrap(), BackendKind::Sim);
    }

    #[test]
    fn backend_kind_rejects_unknown_spellings() {
        for bad in ["", "fp32", "integer", "cpu", "f loat"] {
            let err = bad.parse::<BackendKind>().expect_err("must reject");
            assert!(err.to_string().contains("backend kind"), "{err}");
        }
    }

    #[test]
    fn shard_ranges_cover_everything_in_order() {
        for &(len, parts) in &[
            (1usize, 1usize),
            (10, 1),
            (10, 3),
            (16, 4),
            (3, 8), // more threads than sequences: one item per shard
            (7, 7),
        ] {
            let ranges = shard_ranges(len, parts);
            assert!(ranges.len() <= parts.max(1));
            assert!(ranges.iter().all(|r| !r.is_empty()), "{len}/{parts}");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "{len}/{parts}");
                next = r.end;
            }
            assert_eq!(next, len, "{len}/{parts}");
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn exec_policy_resolves_thread_counts() {
        assert_eq!(ExecPolicy::serial().effective_threads(), 1);
        assert_eq!(ExecPolicy::with_threads(3).effective_threads(), 3);
        // Auto-detection always lands on at least one thread.
        assert!(ExecPolicy::with_threads(0).effective_threads() >= 1);
    }

    #[test]
    fn softmax_is_stable_and_normalised() {
        let scores = softmax(&[1.0, 2.0, 3.0]);
        assert!((scores.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(scores[2] > scores[1] && scores[1] > scores[0]);
        // Large logits must not overflow to NaN.
        let big = softmax(&[1000.0, 1001.0]);
        assert!(big.iter().all(|s| s.is_finite()));
        assert!((big.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }
}
