//! The unified inference engine and its builder.

use crate::artifact::ModelArtifact;
use crate::backend::{FloatBackend, InferenceBackend, IntBackend, SimBackend};
use crate::batch::{BatchOutput, EncodedBatch};
use crate::{Result, RuntimeError};
use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_bert::BertModel;
use fqbert_core::{convert, QatHook};
use fqbert_nlp::{accuracy, Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use std::path::Path;

/// Which backend an [`EngineBuilder`] should construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The FP32 float baseline.
    Float,
    /// The integer-only FQ-BERT engine (default).
    #[default]
    Int,
    /// The integer engine with latency charged through the accelerator
    /// cycle model.
    Sim,
}

/// Classification result for one input text.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted class index.
    pub prediction: usize,
    /// Class logits.
    pub logits: Vec<f32>,
}

/// Accuracy summary of an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalSummary {
    /// Classification accuracy in percent.
    pub accuracy: f64,
    /// Number of evaluated examples.
    pub num_examples: usize,
    /// Simulated accelerator latency charged for the run, if the backend
    /// has a cost model.
    pub simulated_latency_ms: Option<f64>,
}

/// A task-aware serving engine: tokenizer + backend + batch size.
///
/// Built by [`EngineBuilder`]; every workload (examples, experiment
/// binaries, the future server) funnels through [`Engine::classify_texts`] /
/// [`Engine::classify_batch`] regardless of which backend is loaded.
pub struct Engine {
    task: TaskKind,
    tokenizer: Tokenizer,
    backend: Box<dyn InferenceBackend>,
    batch_size: usize,
}

impl Engine {
    /// The task this engine serves.
    pub fn task(&self) -> TaskKind {
        self.task
    }

    /// The tokenizer used to encode inputs.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The backend in use.
    pub fn backend(&self) -> &dyn InferenceBackend {
        self.backend.as_ref()
    }

    /// Sequences per backend call.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Classifies raw texts, batching them `batch_size` at a time.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_texts(&self, texts: &[&str]) -> Result<Vec<Classification>> {
        let mut out = Vec::with_capacity(texts.len());
        for chunk in texts.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_texts(&self.tokenizer, chunk);
            let result = self.backend.classify_batch(&batch)?;
            for (prediction, logits) in result.predictions.into_iter().zip(result.logits) {
                out.push(Classification { prediction, logits });
            }
        }
        Ok(out)
    }

    /// Classifies sentence pairs (premise, hypothesis), batching them
    /// `batch_size` at a time.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_pairs(&self, pairs: &[(&str, &str)]) -> Result<Vec<Classification>> {
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_pairs(&self.tokenizer, chunk);
            let result = self.backend.classify_batch(&batch)?;
            for (prediction, logits) in result.predictions.into_iter().zip(result.logits) {
                out.push(Classification { prediction, logits });
            }
        }
        Ok(out)
    }

    /// Classifies one pre-encoded batch in a single backend call.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn classify_batch(&self, batch: &EncodedBatch) -> Result<BatchOutput> {
        self.backend.classify_batch(batch)
    }

    /// Evaluates accuracy over pre-encoded examples, batching internally.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn evaluate(&self, examples: &[Example]) -> Result<EvalSummary> {
        if examples.is_empty() {
            return Ok(EvalSummary {
                accuracy: 0.0,
                num_examples: 0,
                simulated_latency_ms: None,
            });
        }
        let mut predictions = Vec::with_capacity(examples.len());
        let mut simulated_ms: Option<f64> = None;
        for chunk in examples.chunks(self.batch_size.max(1)) {
            let batch = EncodedBatch::from_examples(chunk.to_vec());
            let result = self.backend.classify_batch(&batch)?;
            predictions.extend(result.predictions);
            if let Some(cost) = result.cost {
                *simulated_ms.get_or_insert(0.0) += cost.latency_ms;
            }
        }
        let labels: Vec<usize> = examples.iter().map(|e| e.label).collect();
        Ok(EvalSummary {
            accuracy: accuracy(&predictions, &labels),
            num_examples: examples.len(),
            simulated_latency_ms: simulated_ms,
        })
    }

    /// Persists the engine's quantized model (plus tokenizer and task) as a
    /// versioned binary artifact.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for the float backend (there
    /// is no quantized model to save) and I/O errors from writing.
    pub fn save(&self, path: &Path) -> Result<()> {
        let model = self.backend.int_model().ok_or_else(|| {
            RuntimeError::InvalidConfig(format!(
                "the `{}` backend holds no quantized model to save",
                self.backend.name()
            ))
        })?;
        ModelArtifact::new(self.task, model.clone(), self.tokenizer.clone()).save(path)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("task", &self.task)
            .field("backend", &self.backend.name())
            .field("precision", &self.backend.precision().to_string())
            .field("batch_size", &self.batch_size)
            .finish()
    }
}

/// Fluent constructor for [`Engine`]: task → tokenizer → backend →
/// batch size → calibration options.
///
/// Replaces the hand-rolled wiring the examples and the bench pipeline used
/// to duplicate (train → build hook → calibrate → convert → evaluate, each
/// slightly differently).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    task: TaskKind,
    tokenizer: Option<Tokenizer>,
    backend: BackendKind,
    batch_size: usize,
    quant: QuantConfig,
    calibration: Vec<Example>,
    accel: AcceleratorConfig,
}

/// Default sequences per backend call.
pub const DEFAULT_BATCH_SIZE: usize = 8;

impl EngineBuilder {
    /// Starts a builder for `task` with the FQ-BERT defaults (integer
    /// backend, w4/a8 quantization, ZCU111 accelerator, batch size
    /// [`DEFAULT_BATCH_SIZE`]).
    pub fn new(task: TaskKind) -> Self {
        Self {
            task,
            tokenizer: None,
            backend: BackendKind::Int,
            batch_size: DEFAULT_BATCH_SIZE,
            quant: QuantConfig::fq_bert(),
            calibration: Vec::new(),
            accel: AcceleratorConfig::zcu111_n16_m16(),
        }
    }

    /// Uses an existing tokenizer.
    pub fn tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = Some(tokenizer);
        self
    }

    /// Builds a tokenizer from a vocabulary and maximum sequence length.
    pub fn vocab(self, vocab: Vocab, max_len: usize) -> Self {
        self.tokenizer(Tokenizer::new(vocab, max_len))
    }

    /// Selects which backend to construct.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = kind;
        self
    }

    /// Sets the number of sequences per backend call.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the quantization configuration used when converting a float
    /// model (ignored by the float backend).
    pub fn quant(mut self, quant: QuantConfig) -> Self {
        self.quant = quant;
        self
    }

    /// Provides calibration examples: when building an integer backend
    /// without a QAT hook, the engine runs these through the float model in
    /// calibration-only mode to derive activation scales.
    pub fn calibrate_with(mut self, examples: &[Example]) -> Self {
        self.calibration = examples.to_vec();
        self
    }

    /// Sets the accelerator configuration charged by the simulated backend.
    pub fn accelerator(mut self, accel: AcceleratorConfig) -> Self {
        self.accel = accel;
        self
    }

    fn take_tokenizer(&mut self) -> Result<Tokenizer> {
        self.tokenizer.take().ok_or_else(|| {
            RuntimeError::InvalidConfig("a tokenizer (or vocab + max_len) is required".to_string())
        })
    }

    fn check_classes(&self, num_classes: usize) -> Result<()> {
        if num_classes != self.task.num_classes() {
            return Err(RuntimeError::InvalidConfig(format!(
                "model has {num_classes} classes but task {} needs {}",
                self.task,
                self.task.num_classes()
            )));
        }
        Ok(())
    }

    /// Builds the engine from a trained float model.
    ///
    /// For the integer and simulated backends the model is calibrated with
    /// the examples from [`EngineBuilder::calibrate_with`] (in
    /// calibration-only mode — the model itself is never perturbed) and then
    /// converted with this builder's quantization configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if no tokenizer was supplied,
    /// the model's head does not match the task, or (for integer backends)
    /// no calibration examples were provided; propagates conversion errors.
    pub fn build(mut self, model: &BertModel) -> Result<Engine> {
        self.check_classes(model.config().num_classes)?;
        let tokenizer = self.take_tokenizer()?;
        let backend: Box<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => Box::new(FloatBackend::new(model.clone())),
            BackendKind::Int | BackendKind::Sim => {
                if self.calibration.is_empty() {
                    return Err(RuntimeError::InvalidConfig(
                        "integer backends need calibration examples \
                         (EngineBuilder::calibrate_with) or a QAT hook \
                         (EngineBuilder::build_with_hook)"
                            .to_string(),
                    ));
                }
                let mut hook = QatHook::calibration_only(self.quant);
                for example in &self.calibration {
                    let mut graph = Graph::new();
                    let bound = model.bind(&mut graph);
                    bound.forward(&mut graph, example, &mut hook)?;
                }
                let int_model = convert(model, &hook)?;
                match self.backend {
                    BackendKind::Sim => Box::new(SimBackend::new(int_model, self.accel.clone())?),
                    _ => Box::new(IntBackend::new(int_model)),
                }
            }
        };
        Ok(Engine {
            task: self.task,
            tokenizer,
            backend,
            batch_size: self.batch_size,
        })
    }

    /// Builds the engine from a float model plus an already-calibrated QAT
    /// hook (the fine-tuning path: scales come from the hook's EMA
    /// observers instead of fresh calibration passes).
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::build`]; additionally propagates
    /// missing-calibration errors from the converter.
    pub fn build_with_hook(mut self, model: &BertModel, hook: &QatHook) -> Result<Engine> {
        self.check_classes(model.config().num_classes)?;
        let tokenizer = self.take_tokenizer()?;
        let backend: Box<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => Box::new(FloatBackend::new(model.clone())),
            BackendKind::Int => Box::new(IntBackend::new(convert(model, hook)?)),
            BackendKind::Sim => {
                Box::new(SimBackend::new(convert(model, hook)?, self.accel.clone())?)
            }
        };
        Ok(Engine {
            task: self.task,
            tokenizer,
            backend,
            batch_size: self.batch_size,
        })
    }

    /// Builds the engine by loading a saved artifact (`quantize once →
    /// serve many`): no float model, no retraining, no recalibration.
    ///
    /// The artifact supplies the task and tokenizer; the builder's task is
    /// overridden by the artifact's. The float backend cannot be built from
    /// an artifact.
    ///
    /// # Errors
    ///
    /// Propagates artifact I/O and validation errors; returns
    /// [`RuntimeError::InvalidConfig`] for [`BackendKind::Float`].
    pub fn load(self, path: &Path) -> Result<Engine> {
        let artifact = ModelArtifact::load(path)?;
        self.from_artifact(artifact)
    }

    /// Builds the engine from an in-memory artifact.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] for [`BackendKind::Float`].
    pub fn from_artifact(self, artifact: ModelArtifact) -> Result<Engine> {
        let backend: Box<dyn InferenceBackend> = match self.backend {
            BackendKind::Float => {
                return Err(RuntimeError::InvalidConfig(
                    "artifacts store quantized models; the float backend \
                     must be built from a float model"
                        .to_string(),
                ))
            }
            BackendKind::Int => Box::new(IntBackend::new(artifact.model)),
            BackendKind::Sim => Box::new(SimBackend::new(artifact.model, self.accel.clone())?),
        };
        Ok(Engine {
            task: artifact.task,
            tokenizer: artifact.tokenizer,
            backend,
            batch_size: self.batch_size,
        })
    }
}
