//! Error type for the unified inference engine.

use fqbert_autograd::AutogradError;
use fqbert_core::FqBertError;
use fqbert_quant::QuantError;
use fqbert_tensor::TensorError;
use std::fmt;

/// Error returned by engine construction, inference and artifact I/O.
#[derive(Debug)]
pub enum RuntimeError {
    /// The FQ-BERT pipeline (calibration, conversion, integer inference)
    /// failed.
    Core(FqBertError),
    /// The float model's autograd forward pass failed.
    Autograd(AutogradError),
    /// A quantization primitive failed.
    Quant(QuantError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// Reading or writing an artifact file failed.
    Io(std::io::Error),
    /// An artifact was rejected: wrong magic, unsupported version, truncated
    /// payload or checksum mismatch.
    Artifact(String),
    /// The engine was configured inconsistently.
    InvalidConfig(String),
    /// Parallel batch execution failed inside the worker pool (a shard
    /// panicked or the pool shut down mid-run).
    Execution(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Core(e) => write!(f, "fq-bert pipeline error: {e}"),
            RuntimeError::Autograd(e) => write!(f, "autograd error: {e}"),
            RuntimeError::Quant(e) => write!(f, "quantization error: {e}"),
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::Io(e) => write!(f, "artifact I/O error: {e}"),
            RuntimeError::Artifact(msg) => write!(f, "invalid artifact: {msg}"),
            RuntimeError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
            RuntimeError::Execution(msg) => write!(f, "parallel execution error: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Core(e) => Some(e),
            RuntimeError::Autograd(e) => Some(e),
            RuntimeError::Quant(e) => Some(e),
            RuntimeError::Tensor(e) => Some(e),
            RuntimeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FqBertError> for RuntimeError {
    fn from(e: FqBertError) -> Self {
        RuntimeError::Core(e)
    }
}

impl From<AutogradError> for RuntimeError {
    fn from(e: AutogradError) -> Self {
        RuntimeError::Autograd(e)
    }
}

impl From<QuantError> for RuntimeError {
    fn from(e: QuantError) -> Self {
        RuntimeError::Quant(e)
    }
}

impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let errs: Vec<RuntimeError> = vec![
            FqBertError::InvalidArgument("x".into()).into(),
            AutogradError::UnknownVariable(0).into(),
            QuantError::UnsupportedBitWidth(1).into(),
            TensorError::EmptyTensor("max").into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
            RuntimeError::Artifact("bad magic".into()),
            RuntimeError::InvalidConfig("no tokenizer".into()),
            RuntimeError::Execution("shard panicked".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
