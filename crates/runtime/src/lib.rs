//! `fqbert-runtime` — the unified inference engine over every FQ-BERT
//! execution substrate.
//!
//! The paper's central claim is that *the same model* runs as a float
//! baseline, as an integer-only engine, and on the FPGA accelerator. This
//! crate turns that claim into an API: one [`InferenceBackend`] trait with
//! three first-class implementations, one [`EngineBuilder`] that wires
//! task → tokenizer → backend → batch size → calibration, and one binary
//! [`ModelArtifact`] format so a model is quantized once and served many
//! times.
//!
//! # The backend trait
//!
//! [`InferenceBackend::classify_batch`] maps an [`EncodedBatch`] to a
//! [`BatchOutput`] (logits + predictions + optional simulated hardware
//! cost). The accessors [`InferenceBackend::name`],
//! [`InferenceBackend::precision`] and [`InferenceBackend::cost_model`]
//! describe the backend without running it:
//!
//! | backend | wraps | precision | cost model |
//! |---|---|---|---|
//! | [`FloatBackend`] | `fqbert-bert` [`BertModel`](fqbert_bert::BertModel) | fp32 | — |
//! | [`IntBackend`] | `fqbert-core` [`IntBertModel`](fqbert_core::IntBertModel) | w4–w8 / a8 | — |
//! | [`SimBackend`] | the integer engine + `fqbert-accel` | w4–w8 / a8 | FPGA cycle model |
//!
//! [`SimBackend`] is *functionally* the integer engine (the bit-accurate
//! datapath tests prove the accelerator equal to it), so it returns the same
//! logits while charging latency through the cycle model — deploy-time
//! numbers from a laptop.
//!
//! # Batching
//!
//! [`EncodedBatch`] tokenizes once per batch. The float backend binds model
//! parameters onto a single autograd tape per batch; the integer backends
//! pack all sequences into one matrix so each linear projection runs as a
//! single integer GEMM (`IntEncoderLayer::forward_batch`). Batched and
//! one-at-a-time execution are bit-identical.
//!
//! # Parallel execution
//!
//! An engine built with [`ExecPolicy`] threads > 1 (or with
//! `FQBERT_THREADS` set in the environment) shards every batch across a
//! fixed in-process [`WorkerPool`] — up to one contiguous shard per worker,
//! each worker reusing its own GEMM scratch buffer. Per-sequence arithmetic
//! is independent in every backend, so sharded execution is bit-identical
//! to serial execution at every thread count (property-tested), including
//! the simulated backend's per-sequence cycle costs.
//!
//! # Telemetry
//!
//! Every [`Engine`](engine::Engine) records into a
//! [`fqbert_telemetry::Registry`] (re-exported as [`telemetry`]): batch and
//! sequence counters, a `classify_us` latency histogram with
//! p50/p95/p99 estimation, per-shard timings and an in-flight-shard gauge.
//! The registry is private per engine by default; a serving layer shares or
//! merges registries to expose per-model metrics over the wire.
//!
//! # Artifacts
//!
//! [`ModelArtifact`] persists the quantized model (weight/bias codes,
//! activation scales, layer-norm codes, bit-widths), the task and the
//! vocabulary in a versioned, checksummed binary format (see
//! [`artifact`]). Loading rebuilds all derived state (requantizers, LUTs)
//! deterministically, so a reloaded model produces bit-identical logits —
//! guaranteed by a property test.
//!
//! # Example
//!
//! ```no_run
//! use fqbert_runtime::{BackendKind, EngineBuilder};
//! use fqbert_bert::{BertConfig, BertModel};
//! use fqbert_nlp::{Sst2Config, Sst2Generator, TaskKind};
//!
//! let dataset = Sst2Generator::new(Sst2Config::tiny()).generate(1);
//! let model = BertModel::new(
//!     BertConfig::tiny(dataset.vocab_size, dataset.max_len, dataset.num_classes),
//!     7,
//! );
//! // (train `model` here)
//! let engine = EngineBuilder::new(TaskKind::Sst2)
//!     .vocab(dataset.vocab.clone(), dataset.max_len)
//!     .backend(BackendKind::Int)
//!     .batch_size(16)
//!     .calibrate_with(&dataset.dev[..8])
//!     .build(&model)?;
//! engine.save(std::path::Path::new("sst2.fqbt"))?;
//! let answers = engine.classify_texts(&["a good movie", "a bad movie"])?;
//! # Ok::<(), fqbert_runtime::RuntimeError>(())
//! ```

pub mod artifact;
pub mod backend;
pub mod batch;
pub mod engine;
pub mod error;
pub mod pool;
pub mod tensor_cache;

pub use artifact::ModelArtifact;
pub use backend::{CostModel, FloatBackend, InferenceBackend, IntBackend, Precision, SimBackend};
pub use batch::{BatchCost, BatchOutput, EncodedBatch};
pub use engine::{
    BackendKind, Classification, Engine, EngineBuilder, EvalSummary, ExecPolicy, Scored,
    ScoredOutput,
};
pub use error::RuntimeError;
pub use fqbert_telemetry as telemetry;
pub use pool::{PoolError, WorkerPool};
pub use tensor_cache::{LoadStats, TensorCache};

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
