//! Content-hash interning of float model tensors: load once, share
//! everywhere.
//!
//! Dense multi-model serving loads several variants of one task — w4 and w8
//! encoders over the *same* embedding tables, layer-norm parameters and
//! classifier head. A [`TensorCache`] deduplicates those tensors at load
//! time: each candidate is hashed over its exact bit content (FNV-1a over
//! dims and element bit patterns), and a hash hit is confirmed by full
//! bitwise comparison before the existing [`Arc`] is handed out — a hash
//! collision can never alias two different tensors. The cache holds strong
//! references, so interned tensors stay live for the cache's lifetime; a
//! registry keeps one cache per process and drops it with the registry.

use fqbert_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// Dedup statistics of one artifact load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Tensors that resolved to an already-interned copy.
    pub shared_tensors: usize,
    /// Bytes those shared tensors would have occupied if loaded privately.
    pub shared_bytes: usize,
}

impl LoadStats {
    /// Accumulates another load's statistics into this one.
    pub fn absorb(&mut self, other: LoadStats) {
        self.shared_tensors += other.shared_tensors;
        self.shared_bytes += other.shared_bytes;
    }
}

/// Content-addressed intern table for float tensors.
#[derive(Debug, Default)]
pub struct TensorCache {
    buckets: HashMap<u64, Vec<Arc<Tensor>>>,
}

impl TensorCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `tensor`: returns the already-cached [`Arc`] when a
    /// bit-identical tensor was interned before (second return `true`),
    /// otherwise caches this one and returns it (second return `false`).
    pub fn intern(&mut self, tensor: Tensor) -> (Arc<Tensor>, bool) {
        let hash = content_hash(&tensor);
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(existing) = bucket.iter().find(|t| bitwise_eq(t, &tensor)) {
            return (Arc::clone(existing), true);
        }
        let fresh = Arc::new(tensor);
        bucket.push(Arc::clone(&fresh));
        (fresh, false)
    }

    /// Number of distinct tensors interned.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// FNV-1a (64-bit) over the tensor's shape and exact element bit patterns.
fn content_hash(t: &Tensor) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    };
    for &d in t.dims() {
        for byte in (d as u64).to_le_bytes() {
            eat(byte);
        }
    }
    for &v in t.as_slice() {
        for byte in v.to_bits().to_le_bytes() {
            eat(byte);
        }
    }
    hash
}

/// Exact bit equality — unlike float `==`, distinguishes `-0.0` from `0.0`
/// and treats identical NaN patterns as equal, so interning never changes
/// what a model computes.
fn bitwise_eq(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).expect("valid tensor")
    }

    #[test]
    fn identical_tensors_share_one_allocation() {
        let mut cache = TensorCache::new();
        let (a, shared_a) = cache.intern(tensor(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let (b, shared_b) = cache.intern(tensor(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
        assert!(!shared_a);
        assert!(shared_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_content_or_shape_stays_distinct() {
        let mut cache = TensorCache::new();
        let (a, _) = cache.intern(tensor(&[1.0, 2.0], &[2]));
        let (b, shared_b) = cache.intern(tensor(&[1.0, 2.5], &[2]));
        let (c, shared_c) = cache.intern(tensor(&[1.0, 2.0], &[2, 1]));
        assert!(!shared_b);
        assert!(!shared_c);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn bit_patterns_matter_not_float_equality() {
        let mut cache = TensorCache::new();
        let (_, _) = cache.intern(tensor(&[0.0], &[1]));
        // -0.0 == 0.0 under float comparison, but its bit pattern differs:
        // it must intern as a distinct tensor.
        let (_, shared) = cache.intern(tensor(&[-0.0], &[1]));
        assert!(!shared);
        // The same NaN bit pattern is NaN != NaN under float comparison,
        // but bitwise-identical: it must share.
        let (_, _) = cache.intern(tensor(&[f32::NAN], &[1]));
        let (_, shared_nan) = cache.intern(tensor(&[f32::NAN], &[1]));
        assert!(shared_nan);
    }
}
