//! Versioned binary model artifacts: `quantize once → serve many`.
//!
//! An artifact captures everything needed to serve a quantized model without
//! retraining or recalibrating: the integer encoder (weight codes, bias
//! codes, per-layer activation scales, layer-norm parameter codes), the
//! float CPU-side tensors (embedding tables, classifier head), the task,
//! and the tokenizer vocabulary. Loading reconstructs an
//! [`IntBertModel`] whose outputs are **bit-identical** to the saved model:
//! all derived state (requantizers, softmax LUT, GELU table) is a
//! deterministic function of the stored scales and is rebuilt by the same
//! constructors the converter uses.
//!
//! # Format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic      b"FQBT"
//! version    u32              (currently 1)
//! payload    ...              (task, config, tensors, layers, vocab)
//! checksum   u32              CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! Scalars are `u64`/`u32`/`f32-as-bits`; tensors are a rank-prefixed dim
//! list followed by raw element data; strings are length-prefixed UTF-8.
//! Any truncation, bit flip or version bump is rejected at load time
//! ([`RuntimeError::Artifact`]).

use crate::{Result, RuntimeError};
use fqbert_bert::BertConfig;
use fqbert_core::int_model::LayerScales;
use fqbert_core::{IntBertModel, IntEncoderLayer, IntLinear};
use fqbert_nlp::{TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantizedLayerNorm;
use fqbert_tensor::{IntTensor, Tensor};
use std::path::Path;

/// Artifact magic bytes.
pub const MAGIC: &[u8; 4] = b"FQBT";
/// Current artifact format version.
pub const VERSION: u32 = 1;

/// A deserialized model artifact: the quantized model plus everything needed
/// to serve it.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The task the model was trained for.
    pub task: TaskKind,
    /// The reconstructed integer model.
    pub model: IntBertModel,
    /// Tokenizer over the training vocabulary, padded to the model's
    /// maximum sequence length.
    pub tokenizer: Tokenizer,
}

impl ModelArtifact {
    /// Bundles a quantized model with its tokenizer and task.
    pub fn new(task: TaskKind, model: IntBertModel, tokenizer: Tokenizer) -> Self {
        Self {
            task,
            model,
            tokenizer,
        }
    }

    /// Serialises the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] for wrong magic, unsupported
    /// version, corruption (checksum mismatch) or truncation, and an I/O
    /// error if the file cannot be read.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Serialises the artifact into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::default();
        payload.u8(task_tag(self.task));
        write_config(&mut payload, self.model.config());
        payload.f32(self.model.embedding_out_scale());
        payload.u32(self.model.weight_bits());
        for t in [
            self.model.word_embeddings(),
            self.model.position_embeddings(),
            self.model.segment_embeddings(),
            self.model.embedding_gamma(),
            self.model.embedding_beta(),
            self.model.classifier_weight(),
            self.model.classifier_bias(),
        ] {
            write_tensor(&mut payload, t);
        }
        payload.u64(self.model.layers.len() as u64);
        for layer in &self.model.layers {
            write_layer(&mut payload, layer);
        }
        write_vocab(&mut payload, self.tokenizer.vocab());
        payload.u64(self.tokenizer.max_len() as u64);

        let mut out = Vec::with_capacity(payload.buf.len() + 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&payload.buf);
        out.extend_from_slice(&crc32(&payload.buf).to_le_bytes());
        out
    }

    /// Deserialises an artifact from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 12 {
            return Err(RuntimeError::Artifact("file too short".to_string()));
        }
        if &bytes[..4] != MAGIC {
            return Err(RuntimeError::Artifact(format!(
                "bad magic {:02x?} (expected {MAGIC:02x?})",
                &bytes[..4]
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(RuntimeError::Artifact(format!(
                "unsupported artifact version {version} (this build reads {VERSION})"
            )));
        }
        let payload = &bytes[8..bytes.len() - 4];
        let stored_crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let actual_crc = crc32(payload);
        if stored_crc != actual_crc {
            return Err(RuntimeError::Artifact(format!(
                "checksum mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
            )));
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let task = parse_task(r.u8()?)?;
        let config = read_config(&mut r)?;
        let embedding_out_scale = r.f32()?;
        let weight_bits = r.u32()?;
        let word = read_tensor(&mut r)?;
        let pos = read_tensor(&mut r)?;
        let seg = read_tensor(&mut r)?;
        let gamma = read_tensor(&mut r)?;
        let beta = read_tensor(&mut r)?;
        let cls_w = read_tensor(&mut r)?;
        let cls_b = read_tensor(&mut r)?;
        // Shape-check every CPU-side tensor against the config so a
        // CRC-valid but structurally inconsistent artifact is rejected here
        // instead of panicking later inside the inference engine.
        let (v, h, c) = (config.vocab_size, config.hidden, config.num_classes);
        for (name, tensor, expected) in [
            ("word embeddings", &word, vec![v, h]),
            ("position embeddings", &pos, vec![config.max_len, h]),
            ("segment embeddings", &seg, vec![config.type_vocab_size, h]),
            ("embedding gamma", &gamma, vec![h]),
            ("embedding beta", &beta, vec![h]),
            ("classifier weight", &cls_w, vec![h, c]),
            ("classifier bias", &cls_b, vec![c]),
        ] {
            if tensor.dims() != expected.as_slice() {
                return Err(RuntimeError::Artifact(format!(
                    "{name} shape {:?} disagrees with config (expected {expected:?})",
                    tensor.dims()
                )));
            }
        }
        let num_layers = r.u64()? as usize;
        if num_layers != config.layers {
            return Err(RuntimeError::Artifact(format!(
                "layer count {num_layers} disagrees with config ({})",
                config.layers
            )));
        }
        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            layers.push(read_layer(&mut r, &config)?);
        }
        let vocab = read_vocab(&mut r)?;
        let max_len = r.u64()? as usize;
        if !(3..=config.max_len).contains(&max_len) {
            return Err(RuntimeError::Artifact(format!(
                "tokenizer max_len {max_len} outside 3..={} (position table size)",
                config.max_len
            )));
        }
        if !r.at_end() {
            return Err(RuntimeError::Artifact(format!(
                "{} trailing payload bytes",
                r.buf.len() - r.pos
            )));
        }
        if vocab.len() != config.vocab_size {
            return Err(RuntimeError::Artifact(format!(
                "vocabulary size {} disagrees with config ({})",
                vocab.len(),
                config.vocab_size
            )));
        }

        let model = IntBertModel::from_parts(
            config,
            word,
            pos,
            seg,
            gamma,
            beta,
            cls_w,
            cls_b,
            embedding_out_scale,
            layers,
            weight_bits,
        );
        let tokenizer = Tokenizer::new(vocab, max_len);
        Ok(Self {
            task,
            model,
            tokenizer,
        })
    }
}

fn task_tag(task: TaskKind) -> u8 {
    match task {
        TaskKind::Sst2 => 0,
        TaskKind::MnliMatched => 1,
        TaskKind::MnliMismatched => 2,
    }
}

fn parse_task(tag: u8) -> Result<TaskKind> {
    match tag {
        0 => Ok(TaskKind::Sst2),
        1 => Ok(TaskKind::MnliMatched),
        2 => Ok(TaskKind::MnliMismatched),
        other => Err(RuntimeError::Artifact(format!("unknown task tag {other}"))),
    }
}

// --- primitive writer / reader ---------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // Compare against the remaining length rather than computing
        // `pos + n`, which a crafted u64 length prefix could overflow.
        if n > self.buf.len() - self.pos {
            return Err(RuntimeError::Artifact(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} available",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.u64()? as usize;
        self.take(n)
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --- compound encodings -----------------------------------------------------

fn write_config(w: &mut Writer, cfg: &BertConfig) {
    for v in [
        cfg.vocab_size,
        cfg.hidden,
        cfg.layers,
        cfg.heads,
        cfg.intermediate,
        cfg.max_len,
        cfg.type_vocab_size,
        cfg.num_classes,
    ] {
        w.u64(v as u64);
    }
    w.f32(cfg.layer_norm_eps);
}

fn read_config(r: &mut Reader<'_>) -> Result<BertConfig> {
    let cfg = BertConfig {
        vocab_size: r.u64()? as usize,
        hidden: r.u64()? as usize,
        layers: r.u64()? as usize,
        heads: r.u64()? as usize,
        intermediate: r.u64()? as usize,
        max_len: r.u64()? as usize,
        type_vocab_size: r.u64()? as usize,
        num_classes: r.u64()? as usize,
        layer_norm_eps: r.f32()?,
    };
    cfg.validate().map_err(RuntimeError::Artifact)?;
    Ok(cfg)
}

fn write_tensor(w: &mut Writer, t: &Tensor) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    for &v in t.as_slice() {
        w.f32(v);
    }
}

/// Reads a rank-prefixed dim list and validates that `numel * elem_bytes`
/// neither overflows nor exceeds the remaining payload.
fn read_dims(r: &mut Reader<'_>, elem_bytes: usize) -> Result<(Vec<usize>, usize)> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(RuntimeError::Artifact(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u64()? as usize);
    }
    let numel = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| RuntimeError::Artifact(format!("tensor dims {dims:?} overflow usize")))?;
    let bytes = numel
        .checked_mul(elem_bytes)
        .ok_or_else(|| RuntimeError::Artifact(format!("tensor dims {dims:?} overflow usize")))?;
    if bytes > r.buf.len() - r.pos {
        return Err(RuntimeError::Artifact(format!(
            "tensor of {numel} elements ({bytes} bytes) cannot fit the {} remaining payload bytes",
            r.buf.len() - r.pos
        )));
    }
    Ok((dims, numel))
}

fn read_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let (dims, numel) = read_dims(r, 4)?;
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.f32()?);
    }
    Tensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent tensor: {e}")))
}

fn write_i8_tensor(w: &mut Writer, t: &IntTensor<i8>) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    let raw: Vec<u8> = t.as_slice().iter().map(|&v| v as u8).collect();
    w.buf.extend_from_slice(&raw);
}

fn read_i8_tensor(r: &mut Reader<'_>) -> Result<IntTensor<i8>> {
    let (dims, numel) = read_dims(r, 1)?;
    let raw = r.take(numel)?;
    let data: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
    IntTensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent int8 tensor: {e}")))
}

fn write_i32_tensor(w: &mut Writer, t: &IntTensor<i32>) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    for &v in t.as_slice() {
        w.u32(v as u32);
    }
}

fn read_i32_tensor(r: &mut Reader<'_>) -> Result<IntTensor<i32>> {
    let (dims, numel) = read_dims(r, 4)?;
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.u32()? as i32);
    }
    IntTensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent int32 tensor: {e}")))
}

fn write_linear(w: &mut Writer, l: &IntLinear) {
    write_i8_tensor(w, l.weight_codes());
    write_i32_tensor(w, l.bias_codes());
    w.f32(l.weight_scale());
    w.f32(l.input_scale());
    w.f32(l.output_scale());
    w.u32(l.weight_bits());
}

fn read_linear(r: &mut Reader<'_>) -> Result<IntLinear> {
    let weight = read_i8_tensor(r)?;
    let bias = read_i32_tensor(r)?;
    let weight_scale = r.f32()?;
    let input_scale = r.f32()?;
    let output_scale = r.f32()?;
    let weight_bits = r.u32()?;
    IntLinear::from_quantized(
        weight,
        bias,
        weight_scale,
        input_scale,
        output_scale,
        weight_bits,
    )
    .map_err(|e| RuntimeError::Artifact(format!("invalid quantized linear: {e}")))
}

fn write_layer_norm(w: &mut Writer, ln: &QuantizedLayerNorm) {
    let gamma: Vec<u8> = ln.gamma_codes().iter().map(|&v| v as u8).collect();
    let beta: Vec<u8> = ln.beta_codes().iter().map(|&v| v as u8).collect();
    w.bytes(&gamma);
    w.bytes(&beta);
    w.f32(ln.eps());
}

fn read_layer_norm(r: &mut Reader<'_>) -> Result<QuantizedLayerNorm> {
    let gamma: Vec<i8> = r.len_prefixed()?.iter().map(|&b| b as i8).collect();
    let beta: Vec<i8> = r.len_prefixed()?.iter().map(|&b| b as i8).collect();
    let eps = r.f32()?;
    QuantizedLayerNorm::from_codes(gamma, beta, eps)
        .map_err(|e| RuntimeError::Artifact(format!("invalid layer norm: {e}")))
}

fn write_layer(w: &mut Writer, layer: &IntEncoderLayer) {
    let scales = layer.scales();
    w.u64(layer.heads() as u64);
    for s in [
        scales.input,
        scales.qkv,
        scales.scores,
        scales.attn_output,
        scales.layer_norm,
        scales.ffn_hidden,
        scales.ffn_output,
    ] {
        w.f32(s);
    }
    for linear in [
        &layer.query,
        &layer.key,
        &layer.value,
        &layer.attn_output,
        &layer.ffn1,
        &layer.ffn2,
    ] {
        write_linear(w, linear);
    }
    write_layer_norm(w, layer.attn_layer_norm());
    write_layer_norm(w, layer.ffn_layer_norm());
}

fn read_layer(r: &mut Reader<'_>, cfg: &BertConfig) -> Result<IntEncoderLayer> {
    let heads = r.u64()? as usize;
    let scales = LayerScales {
        input: r.f32()?,
        qkv: r.f32()?,
        scores: r.f32()?,
        attn_output: r.f32()?,
        layer_norm: r.f32()?,
        ffn_hidden: r.f32()?,
        ffn_output: r.f32()?,
    };
    let query = read_linear(r)?;
    let key = read_linear(r)?;
    let value = read_linear(r)?;
    let attn_output = read_linear(r)?;
    let ffn1 = read_linear(r)?;
    let ffn2 = read_linear(r)?;
    let attn_ln = read_layer_norm(r)?;
    let ffn_ln = read_layer_norm(r)?;
    if heads == 0 || !cfg.hidden.is_multiple_of(heads) {
        return Err(RuntimeError::Artifact(format!(
            "heads {heads} does not divide hidden {}",
            cfg.hidden
        )));
    }
    // Shape-check the quantized parts against the config before assembling
    // the layer, so inconsistency surfaces as an artifact error.
    let (h, i) = (cfg.hidden, cfg.intermediate);
    for (name, linear, expected) in [
        ("query", &query, [h, h]),
        ("key", &key, [h, h]),
        ("value", &value, [h, h]),
        ("attention output", &attn_output, [h, h]),
        ("ffn1", &ffn1, [h, i]),
        ("ffn2", &ffn2, [i, h]),
    ] {
        if linear.weight_codes().dims() != expected {
            return Err(RuntimeError::Artifact(format!(
                "{name} weight shape {:?} disagrees with config (expected {expected:?})",
                linear.weight_codes().dims()
            )));
        }
    }
    for (name, ln) in [("attention", &attn_ln), ("ffn", &ffn_ln)] {
        if ln.hidden() != h {
            return Err(RuntimeError::Artifact(format!(
                "{name} layer norm width {} disagrees with hidden {h}",
                ln.hidden()
            )));
        }
    }
    IntEncoderLayer::from_quantized_parts(
        query,
        key,
        value,
        attn_output,
        ffn1,
        ffn2,
        heads,
        cfg.hidden / heads,
        &scales,
        attn_ln,
        ffn_ln,
    )
    .map_err(|e| RuntimeError::Artifact(format!("invalid encoder layer: {e}")))
}

fn write_vocab(w: &mut Writer, vocab: &Vocab) {
    // Skip the four special tokens; `Vocab::from_tokens` re-inserts them
    // with the same ids.
    let words: Vec<&str> = (4..vocab.len())
        .map(|id| vocab.id_to_token(id).expect("dense vocabulary"))
        .collect();
    w.u64(words.len() as u64);
    for word in words {
        w.bytes(word.as_bytes());
    }
}

fn read_vocab(r: &mut Reader<'_>) -> Result<Vocab> {
    let n = r.u64()? as usize;
    if n > r.buf.len() {
        return Err(RuntimeError::Artifact(format!(
            "vocabulary of {n} words cannot fit the remaining payload"
        )));
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.len_prefixed()?;
        words.push(
            std::str::from_utf8(raw)
                .map_err(|e| RuntimeError::Artifact(format!("non-UTF-8 vocab entry: {e}")))?
                .to_string(),
        );
    }
    Ok(Vocab::from_tokens(words))
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice,
/// table-driven: artifacts are dominated by float embedding tables, so the
/// checksum runs over megabytes on the serving startup path.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut r = Reader {
            buf: &[1, 2, 3],
            pos: 0,
        };
        assert!(r.u64().is_err());
    }

    #[test]
    fn task_tags_round_trip() {
        for task in [
            TaskKind::Sst2,
            TaskKind::MnliMatched,
            TaskKind::MnliMismatched,
        ] {
            assert_eq!(parse_task(task_tag(task)).unwrap(), task);
        }
        assert!(parse_task(9).is_err());
    }
}
