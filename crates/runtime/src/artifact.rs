//! Versioned binary model artifacts: `quantize once → serve many`.
//!
//! An artifact captures everything needed to serve a quantized model without
//! retraining or recalibrating: the integer encoder (weight codes, bias
//! codes, per-layer activation scales, layer-norm parameter codes), the
//! float CPU-side tensors (embedding tables, classifier head), the task,
//! and the tokenizer vocabulary. Loading reconstructs an
//! [`IntBertModel`] whose outputs are **bit-identical** to the saved model:
//! all derived state (requantizers, softmax LUT, GELU table) is a
//! deterministic function of the stored scales and is rebuilt by the same
//! constructors the converter uses.
//!
//! # Format (version 2)
//!
//! Little-endian throughout:
//!
//! ```text
//! magic      b"FQBT"
//! version    u32              (writer emits 2; loader accepts 1 and 2)
//! payload    ...              (task, config, tensors, layers, vocab)
//! checksum   u32              CRC-32 (IEEE) of the payload bytes
//! ```
//!
//! Scalars are `u64`/`u32`/`f32-as-bits`; tensors are a rank-prefixed dim
//! list followed by raw element data; strings are length-prefixed UTF-8.
//! Each encoder layer stores its head count, **nine** per-layer activation
//! scales — `input`, `q`, `k`, `v` (one per attention projection), `scores`,
//! `attn_output`, `layer_norm`, `ffn_hidden`, `ffn_output` — six quantized
//! linears and two quantized layer norms. A linear is encoded as its weight
//! bit-width, three scales (weight/input/output), the weight code tensor and
//! the `i32` bias tensor; weight tensors of **at most 4 bits** store two
//! codes per byte (low nibble first, see [`fqbert_tensor::pack4`]), halving
//! w4 artifacts on disk, while wider weights stay one code per byte.
//!
//! Version-1 artifacts (seven per-layer scales — one scale shared by the
//! Q/K/V projections — and unpacked weight codes in a different field
//! order) remain loadable: the shared scale is widened into three equal
//! per-projection scales, which reconstructs exactly the attention
//! arithmetic the v1 engine used. The writer emits only version 2
//! ([`ModelArtifact::to_bytes_v1`] keeps the legacy encoder for
//! backward-compatibility tests and the artifact-size bench). Any
//! truncation, bit flip or unsupported version is rejected at load time
//! ([`RuntimeError::Artifact`]).

use crate::tensor_cache::{LoadStats, TensorCache};
use crate::{Result, RuntimeError};
use fqbert_bert::BertConfig;
use fqbert_core::int_model::LayerScales;
use fqbert_core::{IntBertModel, IntEncoderLayer, IntLinear};
use fqbert_nlp::{TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantizedLayerNorm;
use fqbert_tensor::{IntTensor, Tensor};
use std::path::Path;
use std::sync::Arc;

/// Artifact magic bytes.
pub const MAGIC: &[u8; 4] = b"FQBT";
/// Byte offset of the payload inside the artifact (magic + version).
const PAYLOAD_OFFSET: usize = 8;
/// Current artifact format version — what [`ModelArtifact::to_bytes`]
/// emits.
pub const VERSION: u32 = 2;
/// Oldest artifact version the loader still accepts.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// A deserialized model artifact: the quantized model plus everything needed
/// to serve it.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// The task the model was trained for.
    pub task: TaskKind,
    /// The reconstructed integer model.
    pub model: IntBertModel,
    /// Tokenizer over the training vocabulary, padded to the model's
    /// maximum sequence length.
    pub tokenizer: Tokenizer,
}

impl ModelArtifact {
    /// Bundles a quantized model with its tokenizer and task.
    pub fn new(task: TaskKind, model: IntBertModel, tokenizer: Tokenizer) -> Self {
        Self {
            task,
            model,
            tokenizer,
        }
    }

    /// Serialises the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Loads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] for wrong magic, unsupported
    /// version, corruption (checksum mismatch) or truncation, and an I/O
    /// error if the file cannot be read.
    pub fn load(path: &Path) -> Result<Self> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Loads an artifact from `path` on the zero-copy path: the file is
    /// read once into a shared buffer, v2 weight tensors stay in their
    /// on-disk encoding behind that buffer (GEMM panels materialize
    /// per-tensor on first use), and the float tensors are interned in a
    /// fresh private [`TensorCache`]. Use
    /// [`ModelArtifact::from_shared_bytes`] with a longer-lived cache to
    /// dedup tensors *across* artifacts. Bit-identical to
    /// [`ModelArtifact::load`] (property-tested).
    ///
    /// # Errors
    ///
    /// As for [`ModelArtifact::load`].
    pub fn load_zero_copy(path: &Path) -> Result<(Self, LoadStats)> {
        let bytes: Arc<[u8]> = std::fs::read(path)?.into();
        let mut cache = TensorCache::new();
        Self::from_shared_bytes(&bytes, &mut cache)
    }

    /// Deserialises an artifact from a shared byte buffer without copying
    /// or unpacking v2 weight tensors: each encoder linear holds
    /// `(buffer, offset)` into `bytes` and materializes its GEMM panels
    /// straight from the encoded nibbles/codes on first forward pass.
    /// Float tensors (embedding tables, classifier head) are interned
    /// through `cache`, so identical tensors across artifacts loaded with
    /// the same cache share one allocation; the returned [`LoadStats`] says
    /// how much was shared. Version-1 artifacts parse eagerly (their field
    /// order predates the zero-copy encoding) but still dedup float
    /// tensors.
    ///
    /// # Errors
    ///
    /// As for [`ModelArtifact::from_bytes`].
    pub fn from_shared_bytes(
        bytes: &Arc<[u8]>,
        cache: &mut TensorCache,
    ) -> Result<(Self, LoadStats)> {
        Self::parse(bytes, Some(bytes), Some(cache))
    }

    /// Serialises the artifact into a byte vector (format [`VERSION`]).
    ///
    /// # Panics
    ///
    /// Panics if a linear declares a weight bit-width of at most 4 while
    /// holding codes outside the signed-nibble range `[-8, 7]` — impossible
    /// for any model produced by the converter or reloaded from an
    /// artifact, both of which keep 4-bit codes within `±7`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(VERSION, write_layer)
    }

    /// Serialises the artifact in the **legacy version-1 format** (shared
    /// Q/K/V activation scale, unpacked weight codes).
    ///
    /// Kept so the backward-compatibility tests and the artifact-size bench
    /// can produce genuine v1 byte streams without pinning old binaries.
    /// The encoding is lossy for a per-projection model: the three Q/K/V
    /// scales collapse into their minimum — the scale a shared observer
    /// over the union of the three ranges would have derived (scales count
    /// levels per unit, so the widest range yields the smallest scale),
    /// keeping every code range sound — exactly the coarsening the v1
    /// engine imposed.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        self.encode(1, write_layer_v1)
    }

    fn encode(&self, version: u32, layer_codec: fn(&mut Writer, &IntEncoderLayer)) -> Vec<u8> {
        let mut payload = Writer::default();
        payload.u8(task_tag(self.task));
        write_config(&mut payload, self.model.config());
        payload.f32(self.model.embedding_out_scale());
        payload.u32(self.model.weight_bits());
        for t in [
            self.model.word_embeddings(),
            self.model.position_embeddings(),
            self.model.segment_embeddings(),
            self.model.embedding_gamma(),
            self.model.embedding_beta(),
            self.model.classifier_weight(),
            self.model.classifier_bias(),
        ] {
            write_tensor(&mut payload, t);
        }
        payload.u64(self.model.layers.len() as u64);
        for layer in &self.model.layers {
            layer_codec(&mut payload, layer);
        }
        write_vocab(&mut payload, self.tokenizer.vocab());
        payload.u64(self.tokenizer.max_len() as u64);

        let mut out = Vec::with_capacity(payload.buf.len() + 12);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&payload.buf);
        out.extend_from_slice(&crc32(&payload.buf).to_le_bytes());
        out
    }

    /// Deserialises an artifact from bytes (the eager path: weight codes
    /// are unpacked and panel-packed immediately; nothing borrows the input
    /// buffer). Kept as the bit-identity oracle for the zero-copy path.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Artifact`] on any structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(Self::parse(bytes, None, None)?.0)
    }

    /// The one decoder behind both load paths. `shared` (the same
    /// allocation as `bytes`, when present) switches v2 weight tensors to
    /// zero-copy references into it; `cache` interns float tensors for
    /// cross-artifact dedup.
    fn parse(
        bytes: &[u8],
        shared: Option<&Arc<[u8]>>,
        cache: Option<&mut TensorCache>,
    ) -> Result<(Self, LoadStats)> {
        if bytes.len() < 12 {
            return Err(RuntimeError::Artifact("file too short".to_string()));
        }
        let magic = bytes.get(..4).unwrap_or_default();
        if magic != MAGIC {
            return Err(RuntimeError::Artifact(format!(
                "bad magic {magic:02x?} (expected {MAGIC:02x?})"
            )));
        }
        let version = u32::from_le_bytes(fixed_bytes(bytes, 4)?);
        if !(MIN_SUPPORTED_VERSION..=VERSION).contains(&version) {
            return Err(RuntimeError::Artifact(format!(
                "unsupported artifact version {version} \
                 (this build reads {MIN_SUPPORTED_VERSION}..={VERSION})"
            )));
        }
        let payload = bytes.get(8..bytes.len() - 4).unwrap_or_default();
        let stored_crc = u32::from_le_bytes(fixed_bytes(bytes, bytes.len() - 4)?);
        let actual_crc = crc32(payload);
        if stored_crc != actual_crc {
            return Err(RuntimeError::Artifact(format!(
                "checksum mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
            )));
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let task = parse_task(r.u8()?)?;
        let config = read_config(&mut r)?;
        let embedding_out_scale = r.f32()?;
        let weight_bits = r.u32()?;
        let word = read_tensor(&mut r)?;
        let pos = read_tensor(&mut r)?;
        let seg = read_tensor(&mut r)?;
        let gamma = read_tensor(&mut r)?;
        let beta = read_tensor(&mut r)?;
        let cls_w = read_tensor(&mut r)?;
        let cls_b = read_tensor(&mut r)?;
        // Shape-check every CPU-side tensor against the config so a
        // CRC-valid but structurally inconsistent artifact is rejected here
        // instead of panicking later inside the inference engine.
        let (v, h, c) = (config.vocab_size, config.hidden, config.num_classes);
        for (name, tensor, expected) in [
            ("word embeddings", &word, vec![v, h]),
            ("position embeddings", &pos, vec![config.max_len, h]),
            ("segment embeddings", &seg, vec![config.type_vocab_size, h]),
            ("embedding gamma", &gamma, vec![h]),
            ("embedding beta", &beta, vec![h]),
            ("classifier weight", &cls_w, vec![h, c]),
            ("classifier bias", &cls_b, vec![c]),
        ] {
            if tensor.dims() != expected.as_slice() {
                return Err(RuntimeError::Artifact(format!(
                    "{name} shape {:?} disagrees with config (expected {expected:?})",
                    tensor.dims()
                )));
            }
        }
        // Intern the CPU-side float tensors through the dedup cache (when
        // one was supplied): identical tensors across artifacts — the
        // embedding tables and classifier heads of w4/w8 variants of one
        // task — collapse onto one shared allocation.
        let mut stats = LoadStats::default();
        let [word, pos, seg, gamma, beta, cls_w, cls_b] = match cache {
            Some(cache) => [word, pos, seg, gamma, beta, cls_w, cls_b].map(|t| {
                let nbytes = std::mem::size_of_val(t.as_slice());
                let (arc, shared) = cache.intern(t);
                if shared {
                    stats.shared_tensors += 1;
                    stats.shared_bytes += nbytes;
                }
                arc
            }),
            None => [word, pos, seg, gamma, beta, cls_w, cls_b].map(Arc::new),
        };
        let num_layers = r.u64()? as usize;
        if num_layers != config.layers {
            return Err(RuntimeError::Artifact(format!(
                "layer count {num_layers} disagrees with config ({})",
                config.layers
            )));
        }
        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            layers.push(read_layer(&mut r, &config, version, shared)?);
        }
        let vocab = read_vocab(&mut r)?;
        let max_len = r.u64()? as usize;
        if !(3..=config.max_len).contains(&max_len) {
            return Err(RuntimeError::Artifact(format!(
                "tokenizer max_len {max_len} outside 3..={} (position table size)",
                config.max_len
            )));
        }
        if !r.at_end() {
            return Err(RuntimeError::Artifact(format!(
                "{} trailing payload bytes",
                r.buf.len() - r.pos
            )));
        }
        if vocab.len() != config.vocab_size {
            return Err(RuntimeError::Artifact(format!(
                "vocabulary size {} disagrees with config ({})",
                vocab.len(),
                config.vocab_size
            )));
        }

        let model = IntBertModel::from_shared_parts(
            config,
            word,
            pos,
            seg,
            gamma,
            beta,
            cls_w,
            cls_b,
            embedding_out_scale,
            layers,
            weight_bits,
        );
        let tokenizer = Tokenizer::new(vocab, max_len);
        Ok((
            Self {
                task,
                model,
                tokenizer,
            },
            stats,
        ))
    }
}

fn task_tag(task: TaskKind) -> u8 {
    match task {
        TaskKind::Sst2 => 0,
        TaskKind::MnliMatched => 1,
        TaskKind::MnliMismatched => 2,
    }
}

fn parse_task(tag: u8) -> Result<TaskKind> {
    match tag {
        0 => Ok(TaskKind::Sst2),
        1 => Ok(TaskKind::MnliMatched),
        2 => Ok(TaskKind::MnliMismatched),
        other => Err(RuntimeError::Artifact(format!("unknown task tag {other}"))),
    }
}

// --- primitive writer / reader ---------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Reads the `N` bytes at `offset` as a fixed array, failing with an
/// artifact error (never a panic) if the file is too short.
fn fixed_bytes<const N: usize>(bytes: &[u8], offset: usize) -> Result<[u8; N]> {
    bytes
        .get(offset..offset.saturating_add(N))
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or_else(|| {
            RuntimeError::Artifact(format!("file too short for {N} bytes at offset {offset}"))
        })
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // Compare against the remaining length rather than computing
        // `pos + n`, which a crafted u64 length prefix could overflow.
        if n > self.buf.len() - self.pos {
            return Err(RuntimeError::Artifact(format!(
                "truncated payload: wanted {n} bytes at offset {}, {} available",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let end = self.pos + n;
        let Some(s) = self.buf.get(self.pos..end) else {
            return Err(RuntimeError::Artifact(format!(
                "reader out of bounds at offset {}",
                self.pos
            )));
        };
        self.pos = end;
        Ok(s)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        <[u8; N]>::try_from(self.take(N)?)
            .map_err(|_| RuntimeError::Artifact(format!("reader cannot take {N} bytes")))
    }
    fn u8(&mut self) -> Result<u8> {
        let [b] = self.array::<1>()?;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn len_prefixed(&mut self) -> Result<&'a [u8]> {
        let n = self.u64()? as usize;
        self.take(n)
    }
    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --- compound encodings -----------------------------------------------------

fn write_config(w: &mut Writer, cfg: &BertConfig) {
    for v in [
        cfg.vocab_size,
        cfg.hidden,
        cfg.layers,
        cfg.heads,
        cfg.intermediate,
        cfg.max_len,
        cfg.type_vocab_size,
        cfg.num_classes,
    ] {
        w.u64(v as u64);
    }
    w.f32(cfg.layer_norm_eps);
}

fn read_config(r: &mut Reader<'_>) -> Result<BertConfig> {
    let cfg = BertConfig {
        vocab_size: r.u64()? as usize,
        hidden: r.u64()? as usize,
        layers: r.u64()? as usize,
        heads: r.u64()? as usize,
        intermediate: r.u64()? as usize,
        max_len: r.u64()? as usize,
        type_vocab_size: r.u64()? as usize,
        num_classes: r.u64()? as usize,
        layer_norm_eps: r.f32()?,
    };
    cfg.validate().map_err(RuntimeError::Artifact)?;
    Ok(cfg)
}

fn write_tensor(w: &mut Writer, t: &Tensor) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    for &v in t.as_slice() {
        w.f32(v);
    }
}

/// Reads a rank-prefixed dim list and validates that the encoded byte count
/// (`bytes_for(numel)`) neither overflows nor exceeds the remaining payload.
fn read_dims_checked(
    r: &mut Reader<'_>,
    bytes_for: impl Fn(usize) -> Option<usize>,
) -> Result<(Vec<usize>, usize)> {
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(RuntimeError::Artifact(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(r.u64()? as usize);
    }
    let numel = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| RuntimeError::Artifact(format!("tensor dims {dims:?} overflow usize")))?;
    let bytes = bytes_for(numel)
        .ok_or_else(|| RuntimeError::Artifact(format!("tensor dims {dims:?} overflow usize")))?;
    if bytes > r.buf.len() - r.pos {
        return Err(RuntimeError::Artifact(format!(
            "tensor of {numel} elements ({bytes} bytes) cannot fit the {} remaining payload bytes",
            r.buf.len() - r.pos
        )));
    }
    Ok((dims, numel))
}

/// [`read_dims_checked`] for one-code-per-element encodings.
fn read_dims(r: &mut Reader<'_>, elem_bytes: usize) -> Result<(Vec<usize>, usize)> {
    read_dims_checked(r, |numel| numel.checked_mul(elem_bytes))
}

fn read_tensor(r: &mut Reader<'_>) -> Result<Tensor> {
    let (dims, numel) = read_dims(r, 4)?;
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.f32()?);
    }
    Tensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent tensor: {e}")))
}

fn write_i8_tensor(w: &mut Writer, t: &IntTensor<i8>) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    let raw: Vec<u8> = t.as_slice().iter().map(|&v| v as u8).collect();
    w.buf.extend_from_slice(&raw);
}

fn read_i8_tensor(r: &mut Reader<'_>) -> Result<IntTensor<i8>> {
    let (dims, numel) = read_dims(r, 1)?;
    let raw = r.take(numel)?;
    let data: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
    IntTensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent int8 tensor: {e}")))
}

fn write_i32_tensor(w: &mut Writer, t: &IntTensor<i32>) {
    w.u32(t.dims().len() as u32);
    for &d in t.dims() {
        w.u64(d as u64);
    }
    for &v in t.as_slice() {
        w.u32(v as u32);
    }
}

fn read_i32_tensor(r: &mut Reader<'_>) -> Result<IntTensor<i32>> {
    let (dims, numel) = read_dims(r, 4)?;
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(r.u32()? as i32);
    }
    IntTensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent int32 tensor: {e}")))
}

/// Writes one quantized linear in the v2 encoding: bit-width and scales
/// first (so the reader knows how the weight codes are stored), then the
/// weight tensor — nibble-packed for bit-widths of at most 4, raw `i8`
/// otherwise — then the bias.
fn write_linear(w: &mut Writer, l: &IntLinear) {
    w.u32(l.weight_bits());
    w.f32(l.weight_scale());
    w.f32(l.input_scale());
    w.f32(l.output_scale());
    let weight = l.weight_codes();
    w.u32(weight.dims().len() as u32);
    for &d in weight.dims() {
        w.u64(d as u64);
    }
    if l.weight_bits() <= 4 {
        // fqlint::allow(panic-path): quantizer invariant — codes for
        // bits <= 4 are clamped to a signed nibble at quantization time,
        // and writing a corrupt artifact silently would be worse than
        // failing loudly at save time.
        let packed = fqbert_tensor::pack_i4(weight.as_slice())
            .expect("4-bit weight codes fit a signed nibble");
        w.buf.extend_from_slice(&packed);
    } else {
        let raw: Vec<u8> = weight.as_slice().iter().map(|&v| v as u8).collect();
        w.buf.extend_from_slice(&raw);
    }
    write_i32_tensor(w, l.bias_codes());
}

/// Reads one quantized linear in the v2 encoding. With `shared` set (the
/// artifact buffer this reader's payload slice came from), the weight
/// tensor is **not** decoded: the layer keeps a `(buffer, offset)`
/// reference to the encoded bytes and materializes its GEMM panels from
/// them on first use — nibble-packed low-bit weights never round-trip
/// through unpacked `i8` codes, let alone `i16` panels.
fn read_linear(r: &mut Reader<'_>, shared: Option<&Arc<[u8]>>) -> Result<IntLinear> {
    let weight_bits = r.u32()?;
    let weight_scale = r.f32()?;
    let input_scale = r.f32()?;
    let output_scale = r.f32()?;
    let packed = weight_bits <= 4;
    let (dims, numel) = read_dims_checked(r, |numel| {
        Some(if packed { numel.div_ceil(2) } else { numel })
    })?;
    if let Some(buf) = shared {
        let (rows, cols) = match dims.as_slice() {
            &[rows, cols] => (rows, cols),
            _ => {
                return Err(RuntimeError::Artifact(format!(
                    "weight tensor rank {} (expected a matrix)",
                    dims.len()
                )))
            }
        };
        // The payload slice starts PAYLOAD_OFFSET bytes into the artifact
        // buffer, so the reader position maps to an absolute offset there.
        let offset = PAYLOAD_OFFSET + r.pos;
        let encoded_len = if packed { numel.div_ceil(2) } else { numel };
        r.take(encoded_len)?;
        let bias = read_i32_tensor(r)?;
        return IntLinear::from_v2_bytes(
            Arc::clone(buf),
            offset,
            rows,
            cols,
            bias,
            weight_scale,
            input_scale,
            output_scale,
            weight_bits,
        )
        .map_err(|e| RuntimeError::Artifact(format!("invalid quantized linear: {e}")));
    }
    let data: Vec<i8> = if packed {
        let raw = r.take(numel.div_ceil(2))?;
        fqbert_tensor::unpack_i4(raw, numel)
            .map_err(|e| RuntimeError::Artifact(format!("invalid packed int4 weights: {e}")))?
    } else {
        r.take(numel)?.iter().map(|&b| b as i8).collect()
    };
    let weight = IntTensor::from_vec(data, &dims)
        .map_err(|e| RuntimeError::Artifact(format!("inconsistent weight tensor: {e}")))?;
    let bias = read_i32_tensor(r)?;
    IntLinear::from_quantized(
        weight,
        bias,
        weight_scale,
        input_scale,
        output_scale,
        weight_bits,
    )
    .map_err(|e| RuntimeError::Artifact(format!("invalid quantized linear: {e}")))
}

/// Writes one quantized linear in the legacy v1 encoding (raw `i8` weight
/// codes, scales trailing), with the activation scales overridden so a
/// per-projection layer collapses consistently onto the v1 shared scale.
/// Bias codes are quantized at `input_scale · weight_scale`, so a linear
/// whose declared input scale moves must carry its bias codes along:
/// `bias_rescale` is the ratio of the declared scale to the scale the
/// stored codes were produced at (at most 1 here — the collapsed shared
/// scale is the minimum — so the rescaled codes cannot overflow `i32`).
fn write_linear_v1(
    w: &mut Writer,
    l: &IntLinear,
    input_scale: f32,
    output_scale: f32,
    bias_rescale: f64,
) {
    write_i8_tensor(w, l.weight_codes());
    if bias_rescale == 1.0 {
        write_i32_tensor(w, l.bias_codes());
    } else {
        let bias = l.bias_codes();
        w.u32(bias.dims().len() as u32);
        for &d in bias.dims() {
            w.u64(d as u64);
        }
        for &code in bias.as_slice() {
            w.u32((f64::from(code) * bias_rescale).round() as i32 as u32);
        }
    }
    w.f32(l.weight_scale());
    w.f32(input_scale);
    w.f32(output_scale);
    w.u32(l.weight_bits());
}

/// Reads one quantized linear in the legacy v1 encoding. 4-bit codes from
/// old artifacts always fit the nibble range (the quantizer clamps to
/// `±(2^(k-1) - 1)`), so a v1 model re-saved at v2 packs losslessly; codes
/// that do not are rejected here rather than poisoning a later save.
fn read_linear_v1(r: &mut Reader<'_>) -> Result<IntLinear> {
    let weight = read_i8_tensor(r)?;
    let bias = read_i32_tensor(r)?;
    let weight_scale = r.f32()?;
    let input_scale = r.f32()?;
    let output_scale = r.f32()?;
    let weight_bits = r.u32()?;
    if weight_bits <= 4 {
        if let Some(&bad) = weight.as_slice().iter().find(|&&c| !(-8..=7).contains(&c)) {
            return Err(RuntimeError::Artifact(format!(
                "4-bit weight code {bad} outside the signed nibble range"
            )));
        }
    }
    IntLinear::from_quantized(
        weight,
        bias,
        weight_scale,
        input_scale,
        output_scale,
        weight_bits,
    )
    .map_err(|e| RuntimeError::Artifact(format!("invalid quantized linear: {e}")))
}

fn write_layer_norm(w: &mut Writer, ln: &QuantizedLayerNorm) {
    let gamma: Vec<u8> = ln.gamma_codes().iter().map(|&v| v as u8).collect();
    let beta: Vec<u8> = ln.beta_codes().iter().map(|&v| v as u8).collect();
    w.bytes(&gamma);
    w.bytes(&beta);
    w.f32(ln.eps());
}

fn read_layer_norm(r: &mut Reader<'_>) -> Result<QuantizedLayerNorm> {
    let gamma: Vec<i8> = r.len_prefixed()?.iter().map(|&b| b as i8).collect();
    let beta: Vec<i8> = r.len_prefixed()?.iter().map(|&b| b as i8).collect();
    let eps = r.f32()?;
    QuantizedLayerNorm::from_codes(gamma, beta, eps)
        .map_err(|e| RuntimeError::Artifact(format!("invalid layer norm: {e}")))
}

fn write_layer(w: &mut Writer, layer: &IntEncoderLayer) {
    let scales = layer.scales();
    w.u64(layer.heads() as u64);
    for s in [
        scales.input,
        scales.q,
        scales.k,
        scales.v,
        scales.scores,
        scales.attn_output,
        scales.layer_norm,
        scales.ffn_hidden,
        scales.ffn_output,
    ] {
        w.f32(s);
    }
    for linear in [
        &layer.query,
        &layer.key,
        &layer.value,
        &layer.attn_output,
        &layer.ffn1,
        &layer.ffn2,
    ] {
        write_linear(w, linear);
    }
    write_layer_norm(w, layer.attn_layer_norm());
    write_layer_norm(w, layer.ffn_layer_norm());
}

/// Writes one encoder layer in the legacy v1 encoding: seven scales with a
/// single shared Q/K/V entry. Scales count levels per unit, so a shared
/// observer over the union of the Q/K/V ranges would see the **widest**
/// range and derive the **smallest** of the three per-projection scales —
/// that minimum is what the collapsed entry records, keeping every
/// projection's code range sound (no projection is clipped harder than its
/// own calibration allowed). The projection linears (plus the attention
/// output's input side, whose bias codes are rescaled from the V scale to
/// the shared one) are written against it so the artifact is
/// self-consistent, exactly as if calibration had observed one shared
/// range.
fn write_layer_v1(w: &mut Writer, layer: &IntEncoderLayer) {
    let scales = layer.scales();
    let qkv = scales.q.min(scales.k).min(scales.v);
    w.u64(layer.heads() as u64);
    for s in [
        scales.input,
        qkv,
        scales.scores,
        scales.attn_output,
        scales.layer_norm,
        scales.ffn_hidden,
        scales.ffn_output,
    ] {
        w.f32(s);
    }
    write_linear_v1(w, &layer.query, scales.input, qkv, 1.0);
    write_linear_v1(w, &layer.key, scales.input, qkv, 1.0);
    write_linear_v1(w, &layer.value, scales.input, qkv, 1.0);
    // attn_output's bias codes were quantized at its true input scale
    // (s_v · s_w); re-declaring the input side at the shared scale means
    // the codes must move with it.
    write_linear_v1(
        w,
        &layer.attn_output,
        qkv,
        scales.attn_output,
        f64::from(qkv) / f64::from(scales.v),
    );
    write_linear_v1(w, &layer.ffn1, scales.layer_norm, scales.ffn_hidden, 1.0);
    write_linear_v1(w, &layer.ffn2, scales.ffn_hidden, scales.ffn_output, 1.0);
    write_layer_norm(w, layer.attn_layer_norm());
    write_layer_norm(w, layer.ffn_layer_norm());
}

fn read_layer(
    r: &mut Reader<'_>,
    cfg: &BertConfig,
    version: u32,
    shared: Option<&Arc<[u8]>>,
) -> Result<IntEncoderLayer> {
    let heads = r.u64()? as usize;
    let scales = if version == 1 {
        // v1 shared one activation scale across Q, K and V; widening it
        // into three equal scales reproduces the old attention arithmetic
        // bit for bit (s_q·s_k = s_qkv², context at s_v = s_qkv).
        let input = r.f32()?;
        let qkv = r.f32()?;
        LayerScales {
            input,
            q: qkv,
            k: qkv,
            v: qkv,
            scores: r.f32()?,
            attn_output: r.f32()?,
            layer_norm: r.f32()?,
            ffn_hidden: r.f32()?,
            ffn_output: r.f32()?,
        }
    } else {
        LayerScales {
            input: r.f32()?,
            q: r.f32()?,
            k: r.f32()?,
            v: r.f32()?,
            scores: r.f32()?,
            attn_output: r.f32()?,
            layer_norm: r.f32()?,
            ffn_hidden: r.f32()?,
            ffn_output: r.f32()?,
        }
    };
    let linear = |r: &mut Reader<'_>| {
        if version == 1 {
            // v1 predates the zero-copy encoding; it always parses eagerly.
            read_linear_v1(r)
        } else {
            read_linear(r, shared)
        }
    };
    let query = linear(r)?;
    let key = linear(r)?;
    let value = linear(r)?;
    let attn_output = linear(r)?;
    let ffn1 = linear(r)?;
    let ffn2 = linear(r)?;
    let attn_ln = read_layer_norm(r)?;
    let ffn_ln = read_layer_norm(r)?;
    if heads == 0 || !cfg.hidden.is_multiple_of(heads) {
        return Err(RuntimeError::Artifact(format!(
            "heads {heads} does not divide hidden {}",
            cfg.hidden
        )));
    }
    // Shape-check the quantized parts against the config before assembling
    // the layer, so inconsistency surfaces as an artifact error.
    let (h, i) = (cfg.hidden, cfg.intermediate);
    for (name, linear, expected) in [
        ("query", &query, [h, h]),
        ("key", &key, [h, h]),
        ("value", &value, [h, h]),
        ("attention output", &attn_output, [h, h]),
        ("ffn1", &ffn1, [h, i]),
        ("ffn2", &ffn2, [i, h]),
    ] {
        // `weight_dims` avoids materializing lazily loaded weight codes
        // just to shape-check them.
        if linear.weight_dims() != expected {
            return Err(RuntimeError::Artifact(format!(
                "{name} weight shape {:?} disagrees with config (expected {expected:?})",
                linear.weight_dims()
            )));
        }
    }
    for (name, ln) in [("attention", &attn_ln), ("ffn", &ffn_ln)] {
        if ln.hidden() != h {
            return Err(RuntimeError::Artifact(format!(
                "{name} layer norm width {} disagrees with hidden {h}",
                ln.hidden()
            )));
        }
    }
    IntEncoderLayer::from_quantized_parts(
        query,
        key,
        value,
        attn_output,
        ffn1,
        ffn2,
        heads,
        cfg.hidden / heads,
        &scales,
        attn_ln,
        ffn_ln,
    )
    .map_err(|e| RuntimeError::Artifact(format!("invalid encoder layer: {e}")))
}

fn write_vocab(w: &mut Writer, vocab: &Vocab) {
    // Skip the four special tokens; `Vocab::from_tokens` re-inserts them
    // with the same ids.
    // fqlint::allow(panic-path): `Vocab` keeps a dense id -> token table
    // by construction; silently skipping an id would shift every later
    // token id in the artifact, corrupting it undetectably.
    let words: Vec<&str> = (4..vocab.len())
        .map(|id| vocab.id_to_token(id).expect("dense vocabulary"))
        .collect();
    w.u64(words.len() as u64);
    for word in words {
        w.bytes(word.as_bytes());
    }
}

fn read_vocab(r: &mut Reader<'_>) -> Result<Vocab> {
    let n = r.u64()? as usize;
    if n > r.buf.len() {
        return Err(RuntimeError::Artifact(format!(
            "vocabulary of {n} words cannot fit the remaining payload"
        )));
    }
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        let raw = r.len_prefixed()?;
        words.push(
            std::str::from_utf8(raw)
                .map_err(|e| RuntimeError::Artifact(format!("non-UTF-8 vocab entry: {e}")))?
                .to_string(),
        );
    }
    Ok(Vocab::from_tokens(words))
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice,
/// table-driven: artifacts are dominated by float embedding tables, so the
/// checksum runs over megabytes on the serving startup path.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        // fqlint::allow(panic-path): `& 0xff` masks the index into the
        // 256-entry table.
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn reader_rejects_truncation() {
        let mut r = Reader {
            buf: &[1, 2, 3],
            pos: 0,
        };
        assert!(r.u64().is_err());
    }

    #[test]
    fn task_tags_round_trip() {
        for task in [
            TaskKind::Sst2,
            TaskKind::MnliMatched,
            TaskKind::MnliMismatched,
        ] {
            assert_eq!(parse_task(task_tag(task)).unwrap(), task);
        }
        assert!(parse_task(9).is_err());
    }
}
