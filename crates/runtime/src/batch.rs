//! Batched inputs and outputs of the inference engine.

use fqbert_nlp::{Example, Tokenizer};
use std::sync::Arc;

/// A batch of encoded sequences ready for any [`crate::InferenceBackend`].
///
/// Construction amortizes tokenization across the batch: texts are encoded
/// once, padded to the tokenizer's fixed length, and reused across
/// backends. The examples live behind an `Arc` with a range view, so
/// [`EncodedBatch::shard`] (and `Clone`) share the encoded storage instead
/// of copying it — the parallel engine hands each worker a view of its
/// shard for free.
#[derive(Debug, Clone)]
pub struct EncodedBatch {
    examples: Arc<Vec<Example>>,
    start: usize,
    end: usize,
}

/// Batches compare by the sequences they view, not by how the backing
/// storage is shared (a shard equals an identically-encoded standalone
/// batch).
impl PartialEq for EncodedBatch {
    fn eq(&self, other: &Self) -> bool {
        self.examples() == other.examples()
    }
}

impl Eq for EncodedBatch {}

impl EncodedBatch {
    /// Encodes a batch of single sentences.
    pub fn from_texts(tokenizer: &Tokenizer, texts: &[&str]) -> Self {
        let examples = texts
            .iter()
            .map(|t| {
                let enc = tokenizer.encode_single(t);
                Example {
                    token_ids: enc.token_ids,
                    segment_ids: enc.segment_ids,
                    attention_mask: enc.attention_mask,
                    label: 0,
                }
            })
            .collect();
        Self::from_examples(examples)
    }

    /// Encodes a batch of sentence pairs (premise, hypothesis).
    pub fn from_pairs(tokenizer: &Tokenizer, pairs: &[(&str, &str)]) -> Self {
        let examples = pairs
            .iter()
            .map(|(a, b)| {
                let enc = tokenizer.encode_pair(a, b);
                Example {
                    token_ids: enc.token_ids,
                    segment_ids: enc.segment_ids,
                    attention_mask: enc.attention_mask,
                    label: 0,
                }
            })
            .collect();
        Self::from_examples(examples)
    }

    /// Wraps already-encoded examples (e.g. a dataset split).
    pub fn from_examples(examples: Vec<Example>) -> Self {
        let end = examples.len();
        Self {
            examples: Arc::new(examples),
            start: 0,
            end,
        }
    }

    /// A view of the sequences at `range` (relative to this batch) sharing
    /// this batch's encoded storage — no examples are copied. Used by the
    /// parallel engine to hand each pool worker its shard.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the batch length.
    pub fn shard(&self, range: std::ops::Range<usize>) -> Self {
        // fqlint::allow(panic-path): documented `# Panics` precondition —
        // shard ranges are computed by the engine from `len()`, and a
        // caller bug here must fail loudly, not silently mis-shard.
        assert!(range.end <= self.len(), "shard range out of bounds");
        Self {
            examples: Arc::clone(&self.examples),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The encoded examples.
    pub fn examples(&self) -> &[Example] {
        // `start <= end <= len` is a constructor invariant; an empty slice
        // is the graceful answer if it were ever broken.
        self.examples.get(self.start..self.end).unwrap_or(&[])
    }

    /// Number of sequences in the batch.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Gold labels of the batch (zero for text-constructed batches).
    pub fn labels(&self) -> Vec<usize> {
        self.examples().iter().map(|e| e.label).collect()
    }

    /// Non-padding token count of every sequence.
    pub fn seq_lens(&self) -> Vec<usize> {
        self.examples()
            .iter()
            .map(|e| e.attention_mask.iter().take_while(|&&m| m == 1).count())
            .collect()
    }
}

/// Simulated accelerator cost of running a batch (produced by the simulated
/// backend; `None` elsewhere).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchCost {
    /// Total accelerator cycles charged for the batch.
    pub total_cycles: u64,
    /// Total latency in milliseconds at the accelerator clock (sequences are
    /// processed back to back at batch size 1, as in the paper).
    pub latency_ms: f64,
}

/// Result of classifying one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutput {
    /// Per-sequence class logits.
    pub logits: Vec<Vec<f32>>,
    /// Per-sequence argmax predictions.
    pub predictions: Vec<usize>,
    /// Total simulated hardware cost of the batch, if the backend charges
    /// one.
    pub cost: Option<BatchCost>,
    /// Per-sequence simulated cost breakdown (same order as the logits),
    /// if the backend charges one. Summing these gives [`BatchOutput::cost`];
    /// a dynamic-batching server uses them to bill each request for exactly
    /// its own sequences rather than a share of the merged batch.
    pub sequence_costs: Option<Vec<BatchCost>>,
}

impl BatchOutput {
    /// Assembles an output from logits, deriving predictions.
    pub fn from_logits(logits: Vec<Vec<f32>>, cost: Option<BatchCost>) -> Self {
        let predictions = logits
            .iter()
            .map(|l| fqbert_tensor::ops::argmax_slice(l))
            .collect();
        Self {
            logits,
            predictions,
            cost,
            sequence_costs: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_nlp::Vocab;

    fn tokenizer() -> Tokenizer {
        Tokenizer::new(Vocab::from_tokens(["good", "bad", "movie"]), 8)
    }

    #[test]
    fn text_batch_is_padded_and_masked() {
        let batch = EncodedBatch::from_texts(&tokenizer(), &["good movie", "bad"]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.examples()[0].token_ids.len(), 8);
        assert_eq!(batch.seq_lens(), vec![4, 3]);
        assert!(!batch.is_empty());
    }

    #[test]
    fn pair_batch_sets_segments() {
        let batch = EncodedBatch::from_pairs(&tokenizer(), &[("good", "bad movie")]);
        assert!(batch.examples()[0].segment_ids.contains(&1));
    }

    #[test]
    fn shards_view_without_copying_and_compare_by_content() {
        let batch = EncodedBatch::from_texts(&tokenizer(), &["good movie", "bad", "movie"]);
        let shard = batch.shard(1..3);
        assert_eq!(shard.len(), 2);
        assert_eq!(shard.examples(), &batch.examples()[1..3]);
        assert_eq!(shard.seq_lens(), batch.seq_lens()[1..3]);
        // A sub-shard of a shard is relative to the shard's own view.
        let inner = shard.shard(1..2);
        assert_eq!(inner.examples(), &batch.examples()[2..3]);
        // Equality is by viewed content, not by storage identity.
        let standalone = EncodedBatch::from_examples(batch.examples()[1..3].to_vec());
        assert_eq!(shard, standalone);
        assert_ne!(shard, batch);
        // Empty views are representable and report empty.
        assert!(batch.shard(1..1).is_empty());
    }

    #[test]
    #[should_panic(expected = "shard range out of bounds")]
    fn oversized_shard_ranges_panic() {
        let batch = EncodedBatch::from_texts(&tokenizer(), &["good"]);
        let _ = batch.shard(0..2);
    }

    #[test]
    fn output_derives_predictions() {
        let out = BatchOutput::from_logits(vec![vec![0.1, 0.9], vec![2.0, -1.0]], None);
        assert_eq!(out.predictions, vec![1, 0]);
        assert!(out.cost.is_none());
    }

    #[test]
    fn argmax_first_wins_on_ties() {
        assert_eq!(fqbert_tensor::ops::argmax_slice(&[1.0, 1.0, 0.0]), 0);
    }
}
