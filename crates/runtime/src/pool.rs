//! A fixed-size worker pool with per-thread state and panic isolation.
//!
//! The repository builds fully offline, so instead of `rayon` the parallel
//! runtime runs on this small pool: a fixed number of worker threads fed
//! boxed closures over an `mpsc` channel. Each worker owns one instance of
//! a caller-chosen state value `S` (the engine hands every worker its own
//! `GemmScratch`, so the integer hot path never contends on — or
//! reallocates — the activation packing buffer), and every job runs under
//! `catch_unwind`, so one panicking shard surfaces as a
//! [`PoolError::Panicked`] for its own task instead of tearing down the
//! pool or poisoning its siblings.
//!
//! The pool is deliberately batch-oriented: [`WorkerPool::run`] submits a
//! set of tasks, blocks until all of them finished, and returns their
//! results in task order. That is exactly the shape of sharded batch
//! classification (split, execute concurrently, merge in order) and keeps
//! the API too small to misuse.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks a mutex, recovering from poisoning. Jobs run under
/// `catch_unwind` outside the lock, so a poisoned pool mutex means a
/// panic in glue code that left the guarded value structurally intact —
/// propagating it would tear down the whole pool for one bad task.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a pooled task failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The task panicked; the payload's message is preserved. The worker
    /// that ran it survives and keeps serving other tasks.
    Panicked(String),
    /// The pool shut down before the task could run to completion.
    ShutDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Panicked(msg) => write!(f, "worker task panicked: {msg}"),
            PoolError::ShutDown => write!(f, "worker pool shut down before the task ran"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Renders a `catch_unwind` payload as the panic message it carried.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

type Job<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// A fixed-size pool of worker threads, each owning one `S`.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped; tasks are closures receiving `&mut S` (the worker's persistent
/// state). See the module docs for the design rationale.
pub struct WorkerPool<S: Send + 'static> {
    sender: Mutex<Option<mpsc::Sender<Job<S>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl<S: Send + 'static> WorkerPool<S> {
    /// Spawns `threads` workers (at least one), building each worker's
    /// state with `state(worker_index)` on its own thread.
    pub fn new<F>(threads: usize, state: F) -> Self
    where
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job<S>>();
        let receiver = Arc::new(Mutex::new(receiver));
        let state = Arc::new(state);
        let workers: Vec<JoinHandle<()>> = (0..threads)
            .filter_map(|index| {
                let receiver = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("fqbert-pool-{index}"))
                    .spawn(move || {
                        let mut state = state(index);
                        loop {
                            // Hold the lock only while popping, never while
                            // running a job, so idle workers can keep
                            // draining the queue.
                            let job = match lock_clean(&receiver).recv() {
                                Ok(job) => job,
                                Err(_) => return, // all senders gone: shutdown
                            };
                            job(&mut state);
                        }
                    })
                    .ok() // an OS thread the pool can't get is a smaller pool
            })
            .collect();
        // If the OS refused every thread there is nobody to drain the
        // queue: drop the sender now so tasks fail fast with `ShutDown`
        // instead of blocking `run` forever.
        let sender = if workers.is_empty() {
            None
        } else {
            Some(sender)
        };
        Self {
            sender: Mutex::new(sender),
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task on the pool and blocks until all of them finished,
    /// returning their results in task order. Tasks run concurrently across
    /// the workers; a task that panics yields [`PoolError::Panicked`] at
    /// its own position without affecting the others, and tasks that could
    /// not run (the pool shut down underneath the call) yield
    /// [`PoolError::ShutDown`].
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, PoolError>>
    where
        T: Send + 'static,
        F: FnOnce(&mut S) -> T + Send + 'static,
    {
        let expected = tasks.len();
        let (results_tx, results_rx) = mpsc::channel::<(usize, Result<T, PoolError>)>();
        // Clone the job sender out and release the lock before dispatch:
        // sends happen on the clone, never under the pool mutex.
        let sender_slot = lock_clean(&self.sender);
        let sender = sender_slot.clone();
        drop(sender_slot);
        if let Some(sender) = sender {
            for (index, task) in tasks.into_iter().enumerate() {
                let results_tx = results_tx.clone();
                let job: Job<S> = Box::new(move |state: &mut S| {
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(state)))
                        .map_err(|payload| PoolError::Panicked(panic_message(payload)));
                    let _ = results_tx.send((index, outcome));
                });
                if sender.send(job).is_err() {
                    break; // workers gone; unsent tasks report ShutDown
                }
            }
        }
        drop(results_tx);
        let mut results: Vec<Result<T, PoolError>> =
            (0..expected).map(|_| Err(PoolError::ShutDown)).collect();
        // Every dispatched job sends exactly once (even on panic), and
        // dropped/undelivered jobs drop their sender, so this drains without
        // deadlocking no matter how the tasks end. Indexes come from
        // `enumerate` above, so every slot lookup succeeds.
        while let Ok((index, outcome)) = results_rx.recv() {
            if let Some(slot) = results.get_mut(index) {
                *slot = outcome;
            }
        }
        results
    }

    /// Stops accepting work and joins every worker. Idempotent; called
    /// automatically on drop.
    pub fn shutdown(&self) {
        // Dropping the sender disconnects the queue; workers exit on their
        // next recv.
        lock_clean(&self.sender).take();
        let workers = std::mem::take(&mut *lock_clean(&self.workers));
        for worker in workers {
            // A worker can only die outside a job if its state builder
            // panicked (jobs run under catch_unwind). Swallow the payload:
            // shutdown runs from Drop, where a panic would escalate to a
            // process abort if an unwind is already in progress; the dead
            // worker has long since surfaced as ShutDown task errors.
            let _ = worker.join();
        }
    }
}

impl<S: Send + 'static> Drop for WorkerPool<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<S: Send + 'static> std::fmt::Debug for WorkerPool<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_tasks_and_preserves_order() {
        let pool = WorkerPool::new(4, |_| ());
        let results = pool.run((0..32usize).map(|i| move |_: &mut ()| i * i).collect());
        let values: Vec<usize> = results.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = WorkerPool::new(0, |_| ());
        assert_eq!(pool.threads(), 1);
        let results = pool.run(vec![|_: &mut ()| 7usize]);
        assert_eq!(results, vec![Ok(7)]);
    }

    #[test]
    fn tasks_actually_spread_across_workers() {
        // With more tasks than workers and each task parking briefly, every
        // worker index must show up in the per-thread state.
        let pool = WorkerPool::new(3, |index| index);
        let results = pool.run(
            (0..24)
                .map(|_| {
                    move |worker: &mut usize| {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        *worker
                    }
                })
                .collect(),
        );
        let mut seen: Vec<usize> = results.into_iter().map(|r| r.expect("ok")).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn per_worker_state_persists_across_tasks() {
        let pool = WorkerPool::new(2, |_| 0usize);
        // Each task bumps its worker's counter; the grand total over two
        // rounds must equal the number of tasks run.
        let round = |n: usize| {
            pool.run(
                (0..n)
                    .map(|_| {
                        |count: &mut usize| {
                            *count += 1;
                            *count
                        }
                    })
                    .collect(),
            )
        };
        round(6).into_iter().for_each(|r| {
            r.expect("ok");
        });
        let second: usize = round(6).into_iter().map(|r| r.expect("ok")).max().unwrap();
        // At least one worker has served tasks from both rounds.
        assert!(second > 1, "state reset between tasks: max count {second}");
    }

    #[test]
    fn a_panicking_task_is_isolated() {
        let pool = WorkerPool::new(2, |_| ());
        let results = pool.run(
            (0..6)
                .map(|i| {
                    move |_: &mut ()| {
                        if i == 3 {
                            panic!("shard {i} exploded");
                        }
                        i
                    }
                })
                .collect(),
        );
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(v) => assert_eq!(*v, i),
                Err(PoolError::Panicked(msg)) => {
                    assert_eq!(i, 3);
                    assert!(msg.contains("shard 3"), "{msg}");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        // The pool survives the panic and keeps serving.
        let again = pool.run(vec![|_: &mut ()| 42usize]);
        assert_eq!(again, vec![Ok(42)]);
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_later_runs() {
        static DROPPED: AtomicUsize = AtomicUsize::new(0);
        struct CountsDrop;
        impl Drop for CountsDrop {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = WorkerPool::new(2, |_| CountsDrop);
        pool.run(vec![|_: &mut CountsDrop| ()])
            .into_iter()
            .for_each(|r| r.expect("ok"));
        pool.shutdown();
        pool.shutdown();
        assert_eq!(DROPPED.load(Ordering::SeqCst), 2, "worker state dropped");
        let results = pool.run(vec![|_: &mut CountsDrop| 1usize]);
        assert_eq!(results, vec![Err(PoolError::ShutDown)]);
    }

    #[test]
    fn a_panicking_state_builder_degrades_without_aborting() {
        // Worker 1's state builder panics at spawn; worker 0 still serves
        // every task, and dropping the pool must not panic (shutdown runs
        // from Drop, where a panic could abort the process).
        let pool = WorkerPool::new(2, |index| {
            if index == 1 {
                panic!("state builder exploded");
            }
        });
        let results = pool.run((0..8usize).map(|i| move |_: &mut ()| i).collect());
        let values: Vec<usize> = results.into_iter().map(|r| r.expect("ok")).collect();
        assert_eq!(values, (0..8).collect::<Vec<_>>());
        pool.shutdown(); // must not panic despite the dead worker
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(PoolError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(!PoolError::ShutDown.to_string().is_empty());
    }
}
