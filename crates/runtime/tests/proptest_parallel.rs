//! Property tests of the parallel (sharded) execution path: for every
//! backend, classifying a batch through a worker pool of any size is
//! bit-identical to serial execution — same logits bits, same predictions,
//! and (for the simulated backend) the same per-sequence cycle costs in
//! the same order. Also pins the empty-batch rejection contract of
//! `Engine::classify_batch`.

use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{Example, TaskKind, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch, Engine, EngineBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

const MAX_LEN: usize = 16;
const WORDS: usize = 40;

/// Thread counts the parallel engines are built with; deliberately includes
/// counts larger than most generated batches (threads > batch must shard to
/// one sequence per worker and still be exact).
const THREADS: [usize; 3] = [2, 3, 5];

fn example_from(ids: &[usize]) -> Example {
    let mut token_ids = vec![2usize];
    token_ids.extend(ids.iter().map(|i| 4 + i % WORDS));
    token_ids.push(3);
    Example {
        segment_ids: vec![0; token_ids.len()],
        attention_mask: vec![1; token_ids.len()],
        token_ids,
        label: 0,
    }
}

/// One serial engine plus one engine per entry of [`THREADS`], all over the
/// same calibrated model.
struct BackendEngines {
    kind: BackendKind,
    serial: Engine,
    parallel: Vec<Engine>,
}

fn engines() -> &'static Vec<BackendEngines> {
    static ENGINES: OnceLock<Vec<BackendEngines>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        let words: Vec<String> = (0..WORDS).map(|i| format!("w{i}")).collect();
        let vocab = Vocab::from_tokens(&words);
        let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 11);
        let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
        for i in 0..6 {
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound
                .forward(&mut graph, &example_from(&[i, i + 3, i + 5]), &mut hook)
                .expect("calibration");
        }
        BackendKind::ALL
            .iter()
            .map(|&kind| {
                let build = |threads: usize| {
                    EngineBuilder::new(TaskKind::Sst2)
                        .vocab(vocab.clone(), MAX_LEN)
                        .backend(kind)
                        .batch_size(64)
                        .threads(threads)
                        .build_with_hook(&model, &hook)
                        .expect("engine")
                };
                BackendEngines {
                    kind,
                    serial: build(1),
                    parallel: THREADS.iter().map(|&t| build(t)).collect(),
                }
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn sharded_classification_is_bit_identical_to_serial(
        word_seeds in collection::vec(collection::vec(0usize..1000, 1..=(MAX_LEN - 2)), 1..=10),
        thread_index in 0usize..THREADS.len(),
        backend_index in 0usize..3,
    ) {
        let examples: Vec<Example> =
            word_seeds.iter().map(|ids| example_from(ids)).collect();
        let batch = EncodedBatch::from_examples(examples);
        let engines = &engines()[backend_index];
        let parallel_engine = &engines.parallel[thread_index];
        prop_assert_eq!(parallel_engine.threads(), THREADS[thread_index]);

        let serial = engines.serial.classify_batch(&batch).expect("serial");
        let parallel = parallel_engine.classify_batch(&batch).expect("parallel");

        prop_assert_eq!(&serial.predictions, &parallel.predictions);
        prop_assert_eq!(serial.logits.len(), parallel.logits.len());
        for (i, (a, b)) in serial.logits.iter().zip(&parallel.logits).enumerate() {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} logits diverge on sequence {} at {} threads",
                    engines.kind,
                    i,
                    THREADS[thread_index]
                );
            }
        }

        match engines.kind {
            BackendKind::Sim => {
                // Per-sequence costs must be a permutation-free match: the
                // same cost for the same sequence at the same position.
                let serial_costs = serial.sequence_costs.expect("serial sim costs");
                let parallel_costs = parallel.sequence_costs.expect("parallel sim costs");
                prop_assert_eq!(&serial_costs, &parallel_costs);
                // And the batch totals fold to identical bits (same
                // left-to-right summation order).
                let a = serial.cost.expect("serial total");
                let b = parallel.cost.expect("parallel total");
                prop_assert_eq!(a.total_cycles, b.total_cycles);
                prop_assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
            }
            _ => {
                prop_assert!(serial.cost.is_none() && parallel.cost.is_none());
                prop_assert!(
                    serial.sequence_costs.is_none() && parallel.sequence_costs.is_none()
                );
            }
        }
    }
}

#[test]
fn empty_batches_are_rejected_on_every_backend_and_thread_count() {
    let empty = EncodedBatch::from_examples(Vec::new());
    assert!(empty.is_empty());
    for engines in engines() {
        for engine in std::iter::once(&engines.serial).chain(&engines.parallel) {
            let err = engine
                .classify_batch(&empty)
                .expect_err("empty batch must be rejected");
            let msg = err.to_string();
            assert!(
                msg.contains("empty batch"),
                "{} ({} threads): unhelpful error: {msg}",
                engines.kind,
                engine.threads()
            );
            // The scored wrapper inherits the rejection.
            assert!(engine.classify_scored(&empty).is_err());
        }
    }
}

#[test]
fn more_threads_than_sequences_still_exact() {
    // Deterministic pin of the threads > batch corner: a 2-sequence batch
    // on a 5-worker pool (three workers idle).
    let batch = EncodedBatch::from_examples(vec![
        example_from(&[1, 2, 3]),
        example_from(&[4, 5, 6, 7, 8]),
    ]);
    for engines in engines() {
        let five = engines
            .parallel
            .iter()
            .find(|e| e.threads() == 5)
            .expect("5-thread engine");
        let serial = engines.serial.classify_batch(&batch).expect("serial");
        let parallel = five.classify_batch(&batch).expect("parallel");
        assert_eq!(serial.logits, parallel.logits, "{}", engines.kind);
        assert_eq!(serial.predictions, parallel.predictions);
    }
}

#[test]
fn shard_errors_surface_instead_of_wedging_the_pool() {
    // An all-padding sequence buried in a larger batch must fail cleanly
    // through the sharded path, and the engine must keep serving afterwards.
    let mut bad = example_from(&[1, 2, 3]);
    for m in bad.attention_mask.iter_mut() {
        *m = 0;
    }
    let engines = &engines()[1]; // int backend
    let four: Vec<Example> = (0..4).map(|i| example_from(&[i, i + 1])).collect();
    let mut with_bad = four.clone();
    with_bad.insert(2, bad);
    let parallel = &engines.parallel[0];
    let err = parallel
        .classify_batch(&EncodedBatch::from_examples(with_bad))
        .expect_err("all-padding sequence must be rejected");
    assert!(err.to_string().contains("all-padding"), "{err}");
    let ok = parallel
        .classify_batch(&EncodedBatch::from_examples(four))
        .expect("pool must survive a failed shard");
    assert_eq!(ok.predictions.len(), 4);
}
