//! Property tests of the zero-copy artifact load path: lazily materialized
//! models must be bit-identical to eagerly loaded ones at every weight
//! bit-width, dedup must actually share float tensors across variants, and
//! residency must stay below the eager path until panels materialize.

use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert_mixed, QatHook};
use fqbert_nlp::{Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::{LayerBits, QuantConfig};
use fqbert_runtime::{ModelArtifact, TensorCache};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const MAX_LEN: usize = 12;

/// Builds a calibrated quantized artifact with per-layer bit-widths from
/// one shared float model, so every variant carries identical float tensors
/// (embedding tables, classifier head) — exactly the multi-variant serving
/// scenario the dedup cache exists for.
fn build_artifact(bits: &[LayerBits]) -> ModelArtifact {
    let config = BertConfig::tiny(28, MAX_LEN, 2);
    let words: Vec<String> = (0..config.vocab_size - 4)
        .map(|i| format!("w{i}"))
        .collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(config, 23);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for i in 0..8usize {
        let tokens = vec![2, 4 + i, 9 + (i * 3) % 12, 6, 3];
        let example = Example {
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            token_ids: tokens,
            label: 0,
        };
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example, &mut hook)
            .expect("calibration forward");
    }
    let int_model = convert_mixed(&model, &hook, bits).expect("conversion");
    ModelArtifact::new(TaskKind::Sst2, int_model, Tokenizer::new(vocab, MAX_LEN))
}

/// Artifact byte streams for w2, w4, w8 and a mixed-precision stack, built
/// once from one float model and shared across cases.
fn artifact_bytes() -> &'static Vec<(&'static str, Vec<u8>)> {
    static CELL: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    CELL.get_or_init(|| {
        let layers = BertConfig::tiny(28, MAX_LEN, 2).layers;
        let mut mixed = vec![LayerBits::uniform(4); layers];
        mixed[0] = LayerBits {
            q: 8,
            k: 2,
            v: 4,
            attn_output: 8,
            ffn1: 2,
            ffn2: 8,
        };
        [
            ("w2", vec![LayerBits::uniform(2); layers]),
            ("w4", vec![LayerBits::uniform(4); layers]),
            ("w8", vec![LayerBits::uniform(8); layers]),
            ("mixed", mixed),
        ]
        .into_iter()
        .map(|(name, bits)| (name, build_artifact(&bits).to_bytes()))
        .collect()
    })
}

/// A random batch of encoded examples valid for the test model.
fn batch_strategy() -> impl Strategy<Value = Vec<Example>> {
    proptest::collection::vec(
        (1usize..=MAX_LEN - 2, 0u64..u64::MAX).prop_map(|(len, seed)| {
            let mut ids = vec![2usize]; // [CLS]
            let mut s = seed;
            for _ in 0..len {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ids.push(4 + (s >> 33) as usize % 24);
            }
            ids.push(3); // [SEP]
            Example {
                segment_ids: vec![0; ids.len()],
                attention_mask: vec![1; ids.len()],
                token_ids: ids,
                label: 0,
            }
        }),
        1..5,
    )
}

proptest! {
    // The heart of the zero-copy contract: logits from a lazily
    // materialized model equal the eager load bit for bit, at every
    // supported bit-width and for a mixed-precision stack.
    #[test]
    fn zero_copy_load_is_bit_identical_to_eager(examples in batch_strategy()) {
        for (name, bytes) in artifact_bytes() {
            let eager = ModelArtifact::from_bytes(bytes).expect("eager load");
            let shared: Arc<[u8]> = bytes.clone().into();
            let mut cache = TensorCache::new();
            let (lazy, stats) =
                ModelArtifact::from_shared_bytes(&shared, &mut cache).expect("zero-copy load");
            prop_assert_eq!(stats.shared_tensors, 0, "first load shares nothing");
            let a = eager.model.logits_batch(&examples).expect("eager logits");
            let b = lazy.model.logits_batch(&examples).expect("lazy logits");
            prop_assert_eq!(a.len(), b.len());
            for (la, lb) in a.iter().zip(b.iter()) {
                for (x, y) in la.iter().zip(lb.iter()) {
                    prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "{} zero-copy logits diverge from eager", name
                    );
                }
            }
        }
    }
}

#[test]
fn variants_of_one_task_share_their_float_tensors() {
    let bytes = artifact_bytes();
    let w4: Arc<[u8]> = bytes[1].1.clone().into();
    let w8: Arc<[u8]> = bytes[2].1.clone().into();
    let mut cache = TensorCache::new();
    let (first, stats_first) = ModelArtifact::from_shared_bytes(&w4, &mut cache).expect("w4");
    assert_eq!(stats_first.shared_tensors, 0);
    let (second, stats_second) = ModelArtifact::from_shared_bytes(&w8, &mut cache).expect("w8");
    // Both variants came from one float model: all seven CPU-side tensors
    // (embeddings, layer-norm parameters, classifier) dedup onto the copies
    // the w4 load interned.
    assert_eq!(stats_second.shared_tensors, 7);
    assert!(stats_second.shared_bytes > 0);
    for (a, b) in first
        .model
        .shared_float_tensors()
        .iter()
        .zip(second.model.shared_float_tensors())
    {
        assert!(Arc::ptr_eq(a, b), "variants must share one allocation");
    }
}

#[test]
fn residency_stays_lazy_until_first_forward() {
    let (_, bytes) = &artifact_bytes()[1]; // w4
    let eager = ModelArtifact::from_bytes(bytes).expect("eager load");
    let shared: Arc<[u8]> = bytes.clone().into();
    let mut cache = TensorCache::new();
    let (lazy, _) = ModelArtifact::from_shared_bytes(&shared, &mut cache).expect("lazy load");
    let before = lazy.model.resident_bytes();
    let full = eager.model.resident_bytes();
    assert!(
        before < full,
        "unused zero-copy model resides {before} bytes, eager {full}"
    );
    let examples = vec![Example {
        token_ids: vec![2, 7, 11, 3],
        segment_ids: vec![0; 4],
        attention_mask: vec![1; 4],
        label: 0,
    }];
    lazy.model.logits_batch(&examples).expect("first forward");
    // The forward pass materializes every layer's panels but never the
    // unpacked code tensors, so the lazy model converges to the panel+bias
    // portion of the eager residency without the code copies.
    let after = lazy.model.resident_bytes();
    assert!(after > before, "first forward must materialize panels");
    assert!(
        after < full,
        "lazy model must skip the unpacked code copies"
    );
}

#[test]
fn zero_copy_loaded_model_saves_identical_bytes() {
    // `save` walks `weight_codes()`, which zero-copy layers materialize on
    // demand from the artifact buffer: re-encoding must reproduce the
    // original byte stream exactly.
    let (_, bytes) = &artifact_bytes()[3]; // mixed
    let shared: Arc<[u8]> = bytes.clone().into();
    let mut cache = TensorCache::new();
    let (lazy, _) = ModelArtifact::from_shared_bytes(&shared, &mut cache).expect("lazy load");
    assert_eq!(&lazy.to_bytes(), bytes);
}

#[test]
fn load_zero_copy_reads_files_and_clones_share_state() {
    let (_, bytes) = &artifact_bytes()[0]; // w2
    let dir = std::env::temp_dir().join("fqbert_lazy_load_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("w2.fqbt");
    std::fs::write(&path, bytes).expect("write artifact");
    let (artifact, stats) = ModelArtifact::load_zero_copy(&path).expect("load");
    assert_eq!(stats.shared_tensors, 0);
    // Clones share the lazily materialized panels: a clone taken before
    // the first forward still sees the original's materialization.
    let clone = artifact.model.clone();
    let examples = vec![Example {
        token_ids: vec![2, 5, 3],
        segment_ids: vec![0; 3],
        attention_mask: vec![1; 3],
        label: 0,
    }];
    artifact.model.logits_batch(&examples).expect("forward");
    assert_eq!(
        clone.resident_bytes(),
        artifact.model.resident_bytes(),
        "clones must share materialized panel storage"
    );
    std::fs::remove_file(&path).ok();
}
