//! Property tests of the model-artifact format: `save → load` must
//! reproduce bit-identical logits, and any tampering must be rejected.

use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert, QatHook};
use fqbert_nlp::{Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{EncodedBatch, InferenceBackend, IntBackend, ModelArtifact};
use proptest::prelude::*;
use std::sync::OnceLock;

const MAX_LEN: usize = 12;

/// A calibrated quantized model, built once and shared across cases.
fn artifact() -> &'static (ModelArtifact, Vec<u8>) {
    static CELL: OnceLock<(ModelArtifact, Vec<u8>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let words: Vec<String> = (0..24).map(|i| format!("w{i}")).collect();
        let vocab = Vocab::from_tokens(&words);
        let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 11);
        let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
        for i in 0..8usize {
            let tokens = vec![2, 4 + i, 9 + (i * 3) % 12, 6, 3];
            let example = Example {
                segment_ids: vec![0; tokens.len()],
                attention_mask: vec![1; tokens.len()],
                token_ids: tokens,
                label: 0,
            };
            let mut graph = Graph::new();
            let bound = model.bind(&mut graph);
            bound
                .forward(&mut graph, &example, &mut hook)
                .expect("calibration forward");
        }
        let int_model = convert(&model, &hook).expect("conversion");
        let artifact =
            ModelArtifact::new(TaskKind::Sst2, int_model, Tokenizer::new(vocab, MAX_LEN));
        let bytes = artifact.to_bytes();
        (artifact, bytes)
    })
}

/// A random batch of encoded examples valid for the test model.
fn batch_strategy() -> impl Strategy<Value = Vec<Example>> {
    proptest::collection::vec(
        (1usize..=MAX_LEN - 2, 0u64..u64::MAX).prop_map(|(len, seed)| {
            let mut ids = vec![2usize]; // [CLS]
            let mut s = seed;
            for _ in 0..len {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ids.push(4 + (s >> 33) as usize % 24);
            }
            ids.push(3); // [SEP]
            Example {
                segment_ids: vec![0; ids.len()],
                attention_mask: vec![1; ids.len()],
                token_ids: ids,
                label: 0,
            }
        }),
        1..6,
    )
}

proptest! {
    #[test]
    fn reloaded_model_is_bit_identical(examples in batch_strategy()) {
        let (original, bytes) = artifact();
        let reloaded = ModelArtifact::from_bytes(bytes).expect("round trip");
        let a = original.model.logits_batch(&examples).expect("original logits");
        let b = reloaded.model.logits_batch(&examples).expect("reloaded logits");
        prop_assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(b.iter()) {
            for (x, y) in la.iter().zip(lb.iter()) {
                // Bitwise, not approximate: the artifact must reconstruct
                // the exact integer engine.
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // The backends built from both models agree prediction-for-prediction.
        let batch = EncodedBatch::from_examples(examples);
        let pa = IntBackend::new(original.model.clone()).classify_batch(&batch).unwrap();
        let pb = IntBackend::new(reloaded.model.clone()).classify_batch(&batch).unwrap();
        prop_assert_eq!(pa.predictions, pb.predictions);
    }

    #[test]
    fn corrupted_payload_is_rejected(offset_seed in 0u64..u64::MAX, flip in 1u8..=255) {
        let (_, bytes) = artifact();
        // Corrupt one payload byte (past magic+version, before the stored
        // CRC so the mismatch is detectable).
        let lo = 8usize;
        let hi = bytes.len() - 4;
        let offset = lo + (offset_seed as usize) % (hi - lo);
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= flip;
        let err = ModelArtifact::from_bytes(&corrupted).err();
        prop_assert!(err.is_some(), "corruption at offset {} went undetected", offset);
    }
}

#[test]
fn version_mismatch_is_rejected_with_versions_named() {
    let (_, bytes) = artifact();
    let mut wrong = bytes.clone();
    let future = (fqbert_runtime::artifact::VERSION + 1).to_le_bytes();
    wrong[4..8].copy_from_slice(&future);
    // Version is outside the checksummed payload, so this specifically
    // exercises the version gate rather than the CRC.
    let msg = ModelArtifact::from_bytes(&wrong)
        .expect_err("future version must be rejected")
        .to_string();
    assert!(msg.contains("version"), "unhelpful error: {msg}");
}

#[test]
fn bad_magic_and_truncation_are_rejected() {
    let (_, bytes) = artifact();
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(ModelArtifact::from_bytes(&wrong).is_err());
    assert!(ModelArtifact::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    assert!(ModelArtifact::from_bytes(&[]).is_err());
}

#[test]
fn file_round_trip_via_engine() {
    use fqbert_runtime::{BackendKind, EngineBuilder};
    let (original, _) = artifact();
    let dir = std::env::temp_dir().join("fqbert_runtime_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.fqbt");
    original.save(&path).expect("save");
    let engine = EngineBuilder::new(TaskKind::Sst2)
        .backend(BackendKind::Int)
        .load(&path)
        .expect("load");
    assert_eq!(engine.task(), TaskKind::Sst2);
    assert_eq!(engine.backend().name(), "int");
    let out = engine
        .classify_texts(&["w0 w1 w2", "w3"])
        .expect("classify");
    assert_eq!(out.len(), 2);
    std::fs::remove_file(&path).ok();
}
