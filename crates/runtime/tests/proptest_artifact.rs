//! Property tests of the model-artifact format: `save → load` must
//! reproduce bit-identical logits, and any tampering must be rejected.

use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert, QatHook};
use fqbert_nlp::{Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{EncodedBatch, InferenceBackend, IntBackend, ModelArtifact};
use proptest::prelude::*;
use std::sync::OnceLock;

const MAX_LEN: usize = 12;

/// Builds a calibrated quantized artifact for an arbitrary architecture and
/// quantization configuration.
fn build_artifact(quant: QuantConfig, config: BertConfig, seed: u64) -> ModelArtifact {
    let words: Vec<String> = (0..config.vocab_size - 4)
        .map(|i| format!("w{i}"))
        .collect();
    let vocab = Vocab::from_tokens(&words);
    assert_eq!(vocab.len(), config.vocab_size);
    let model = BertModel::new(config, seed);
    let mut hook = QatHook::calibration_only(quant);
    for i in 0..8usize {
        let tokens = vec![2, 4 + i, 9 + (i * 3) % 12, 6, 3];
        let example = Example {
            segment_ids: vec![0; tokens.len()],
            attention_mask: vec![1; tokens.len()],
            token_ids: tokens,
            label: 0,
        };
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example, &mut hook)
            .expect("calibration forward");
    }
    let int_model = convert(&model, &hook).expect("conversion");
    ModelArtifact::new(TaskKind::Sst2, int_model, Tokenizer::new(vocab, MAX_LEN))
}

/// A calibrated w4/a8 quantized model, built once and shared across cases.
fn artifact() -> &'static (ModelArtifact, Vec<u8>) {
    static CELL: OnceLock<(ModelArtifact, Vec<u8>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let artifact = build_artifact(QuantConfig::fq_bert(), BertConfig::tiny(28, MAX_LEN, 2), 11);
        let bytes = artifact.to_bytes();
        (artifact, bytes)
    })
}

/// A random batch of encoded examples valid for the test model.
fn batch_strategy() -> impl Strategy<Value = Vec<Example>> {
    proptest::collection::vec(
        (1usize..=MAX_LEN - 2, 0u64..u64::MAX).prop_map(|(len, seed)| {
            let mut ids = vec![2usize]; // [CLS]
            let mut s = seed;
            for _ in 0..len {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ids.push(4 + (s >> 33) as usize % 24);
            }
            ids.push(3); // [SEP]
            Example {
                segment_ids: vec![0; ids.len()],
                attention_mask: vec![1; ids.len()],
                token_ids: ids,
                label: 0,
            }
        }),
        1..6,
    )
}

proptest! {
    #[test]
    fn reloaded_model_is_bit_identical(examples in batch_strategy()) {
        let (original, bytes) = artifact();
        let reloaded = ModelArtifact::from_bytes(bytes).expect("round trip");
        let a = original.model.logits_batch(&examples).expect("original logits");
        let b = reloaded.model.logits_batch(&examples).expect("reloaded logits");
        prop_assert_eq!(a.len(), b.len());
        for (la, lb) in a.iter().zip(b.iter()) {
            for (x, y) in la.iter().zip(lb.iter()) {
                // Bitwise, not approximate: the artifact must reconstruct
                // the exact integer engine.
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        // The backends built from both models agree prediction-for-prediction.
        let batch = EncodedBatch::from_examples(examples);
        let pa = IntBackend::new(original.model.clone()).classify_batch(&batch).unwrap();
        let pb = IntBackend::new(reloaded.model.clone()).classify_batch(&batch).unwrap();
        prop_assert_eq!(pa.predictions, pb.predictions);
    }

    #[test]
    fn corrupted_payload_is_rejected(offset_seed in 0u64..u64::MAX, flip in 1u8..=255) {
        let (_, bytes) = artifact();
        // Corrupt one payload byte (past magic+version, before the stored
        // CRC so the mismatch is detectable).
        let lo = 8usize;
        let hi = bytes.len() - 4;
        let offset = lo + (offset_seed as usize) % (hi - lo);
        let mut corrupted = bytes.clone();
        corrupted[offset] ^= flip;
        let err = ModelArtifact::from_bytes(&corrupted).err();
        prop_assert!(err.is_some(), "corruption at offset {} went undetected", offset);
    }
}

#[test]
fn version_mismatch_is_rejected_with_versions_named() {
    let (_, bytes) = artifact();
    // A future version (v3 for the current v2 writer) and the never-issued
    // version 0 must both trip the gate; the version word sits outside the
    // checksummed payload, so this specifically exercises the version gate
    // rather than the CRC.
    for bad_version in [fqbert_runtime::artifact::VERSION + 1, 0] {
        let mut wrong = bytes.clone();
        wrong[4..8].copy_from_slice(&bad_version.to_le_bytes());
        let msg = ModelArtifact::from_bytes(&wrong)
            .expect_err("unsupported version must be rejected")
            .to_string();
        assert!(msg.contains("version"), "unhelpful error: {msg}");
    }
}

#[test]
fn v1_artifacts_still_load_with_widened_scales() {
    let (original, _) = artifact();
    let v1_bytes = original.to_bytes_v1();
    assert_eq!(
        u32::from_le_bytes(v1_bytes[4..8].try_into().unwrap()),
        1,
        "legacy encoder must stamp version 1"
    );
    let loaded = ModelArtifact::from_bytes(&v1_bytes).expect("v1 artifact must still load");
    assert_eq!(loaded.task, original.task);
    assert_eq!(loaded.model.weight_bits(), original.model.weight_bits());
    for (layer, orig) in loaded.model.layers.iter().zip(&original.model.layers) {
        let scales = layer.scales();
        // The one shared v1 scale widens into three equal per-projection
        // scales — the minimum of the true per-projection scales (what a
        // shared observer over the widest of the three ranges derives).
        assert_eq!(scales.q, scales.k);
        assert_eq!(scales.k, scales.v);
        let orig = orig.scales();
        assert_eq!(scales.q, orig.q.min(orig.k).min(orig.v));
    }
    // The widened model must be servable...
    let examples = vec![Example {
        token_ids: vec![2, 5, 9, 3],
        segment_ids: vec![0; 4],
        attention_mask: vec![1; 4],
        label: 0,
    }];
    let v1_logits = loaded.model.logits_batch(&examples).expect("v1 logits");
    // ...and migrating it to v2 (load → save → load) must be lossless.
    let migrated = ModelArtifact::from_bytes(&loaded.to_bytes()).expect("v1→v2 migration");
    let v2_logits = migrated.model.logits_batch(&examples).expect("v2 logits");
    for (a, b) in v1_logits.iter().flatten().zip(v2_logits.iter().flatten()) {
        assert_eq!(a.to_bits(), b.to_bits(), "migration must not move a bit");
    }
}

#[test]
fn w4_v2_artifacts_are_at_most_55_percent_of_v1() {
    // An encoder-dominated architecture (the regime real checkpoints live
    // in — BERT-base encoder weights dwarf the embedding tables at this
    // vocabulary size). The tiny shared fixture keeps the proptests fast
    // but its float embeddings blunt the ratio; this one isolates it.
    let artifact = build_artifact(
        QuantConfig::fq_bert(),
        BertConfig {
            vocab_size: 28,
            hidden: 128,
            layers: 2,
            heads: 2,
            intermediate: 512,
            max_len: MAX_LEN,
            type_vocab_size: 2,
            num_classes: 2,
            layer_norm_eps: 1e-5,
        },
        13,
    );
    let v2 = artifact.to_bytes();
    let v1 = artifact.to_bytes_v1();
    assert!(
        (v2.len() as f64) <= 0.55 * v1.len() as f64,
        "w4 v2 artifact ({} bytes) must be at most 55% of v1 ({} bytes)",
        v2.len(),
        v1.len()
    );
    // The packed encoding still reconstructs the model bit-identically.
    let reloaded = ModelArtifact::from_bytes(&v2).expect("packed round trip");
    let examples = vec![Example {
        token_ids: vec![2, 7, 11, 6, 3],
        segment_ids: vec![0; 5],
        attention_mask: vec![1; 5],
        label: 0,
    }];
    let a = artifact.model.logits_batch(&examples).expect("original");
    let b = reloaded.model.logits_batch(&examples).expect("reloaded");
    for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn w8_artifacts_round_trip_through_the_unpacked_path() {
    // 8-bit weights stay one code per byte at v2; the round trip must be
    // just as bit-exact as the packed 4-bit path.
    let artifact = build_artifact(QuantConfig::w8a8(), BertConfig::tiny(28, MAX_LEN, 2), 17);
    let reloaded = ModelArtifact::from_bytes(&artifact.to_bytes()).expect("round trip");
    assert_eq!(reloaded.model.weight_bits(), 8);
    let examples = vec![Example {
        token_ids: vec![2, 4, 8, 3],
        segment_ids: vec![0; 4],
        attention_mask: vec![1; 4],
        label: 0,
    }];
    let a = artifact.model.logits_batch(&examples).expect("original");
    let b = reloaded.model.logits_batch(&examples).expect("reloaded");
    for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn bad_magic_and_truncation_are_rejected() {
    let (_, bytes) = artifact();
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    assert!(ModelArtifact::from_bytes(&wrong).is_err());
    assert!(ModelArtifact::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    assert!(ModelArtifact::from_bytes(&[]).is_err());
}

#[test]
fn file_round_trip_via_engine() {
    use fqbert_runtime::{BackendKind, EngineBuilder};
    let (original, _) = artifact();
    let dir = std::env::temp_dir().join("fqbert_runtime_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.fqbt");
    original.save(&path).expect("save");
    let engine = EngineBuilder::new(TaskKind::Sst2)
        .backend(BackendKind::Int)
        .load(&path)
        .expect("load");
    assert_eq!(engine.task(), TaskKind::Sst2);
    assert_eq!(engine.backend().name(), "int");
    let out = engine
        .classify_texts(&["w0 w1 w2", "w3"])
        .expect("classify");
    assert_eq!(out.len(), 2);
    std::fs::remove_file(&path).ok();
}
