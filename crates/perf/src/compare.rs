//! The CPU / GPU / FPGA comparison of Table IV.

use crate::baseline::{cpu_i7_8700, gpu_k80};
use crate::fpga::FpgaPlatform;
use fqbert_bert::{BertConfig, ModelProfile};

/// One row of the Table IV comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformResult {
    /// Platform name.
    pub platform: String,
    /// Inference latency in milliseconds (batch 1).
    pub latency_ms: f64,
    /// Board / package power in watts.
    pub power_watts: f64,
    /// Frames per second per watt.
    pub fps_per_watt: f64,
}

impl PlatformResult {
    /// Energy-efficiency improvement of this platform over `other`.
    pub fn efficiency_gain_over(&self, other: &PlatformResult) -> f64 {
        self.fps_per_watt / other.fps_per_watt
    }

    /// Latency improvement (speed-up) of this platform over `other`.
    pub fn speedup_over(&self, other: &PlatformResult) -> f64 {
        other.latency_ms / self.latency_ms
    }
}

/// Produces the four rows of Table IV (CPU, GPU, ZCU102, ZCU111) for a BERT
/// configuration at the given sequence length.
pub fn comparison_table(bert: &BertConfig, seq_len: usize) -> Vec<PlatformResult> {
    let profile = ModelProfile::new(bert, seq_len);
    let mut rows = Vec::with_capacity(4);
    for device in [cpu_i7_8700(), gpu_k80()] {
        rows.push(PlatformResult {
            platform: device.name.clone(),
            latency_ms: device.latency_ms(&profile),
            power_watts: device.power_watts,
            fps_per_watt: device.fps_per_watt(&profile),
        });
    }
    for fpga in [FpgaPlatform::zcu102(), FpgaPlatform::zcu111()] {
        rows.push(PlatformResult {
            platform: fpga.name(),
            latency_ms: fpga.latency_ms(bert, seq_len),
            power_watts: fpga.power_watts(),
            fps_per_watt: fpga.fps_per_watt(bert, seq_len),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Vec<PlatformResult> {
        comparison_table(&BertConfig::bert_base(), 128)
    }

    #[test]
    fn table_has_four_rows_in_order() {
        let rows = table();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].platform.contains("i7"));
        assert!(rows[1].platform.contains("K80"));
        assert_eq!(rows[2].platform, "ZCU102");
        assert_eq!(rows[3].platform, "ZCU111");
    }

    #[test]
    fn headline_ratios_match_the_paper_within_ten_percent() {
        let rows = table();
        let cpu = &rows[0];
        let gpu = &rows[1];
        let zcu111 = &rows[3];
        // Paper: 28.91× over CPU and 12.72× over GPU in fps/W.
        let vs_cpu = zcu111.efficiency_gain_over(cpu);
        let vs_gpu = zcu111.efficiency_gain_over(gpu);
        assert!(
            (vs_cpu - 28.91).abs() / 28.91 < 0.10,
            "efficiency gain over CPU {vs_cpu} deviates from 28.91×"
        );
        assert!(
            (vs_gpu - 12.72).abs() / 12.72 < 0.10,
            "efficiency gain over GPU {vs_gpu} deviates from 12.72×"
        );
        // Paper: 6.10× latency improvement over the CPU and 1.17× over the GPU.
        let speed_cpu = zcu111.speedup_over(cpu);
        let speed_gpu = zcu111.speedup_over(gpu);
        assert!(
            (speed_cpu - 6.10).abs() / 6.10 < 0.10,
            "speed-up {speed_cpu}"
        );
        assert!(
            (speed_gpu - 1.17).abs() / 1.17 < 0.10,
            "speed-up {speed_gpu}"
        );
    }

    #[test]
    fn fpga_rows_win_on_efficiency_gpu_wins_cpu_on_latency() {
        let rows = table();
        assert!(rows[3].fps_per_watt > rows[2].fps_per_watt);
        assert!(rows[2].fps_per_watt > rows[1].fps_per_watt);
        assert!(rows[1].fps_per_watt > rows[0].fps_per_watt);
        assert!(rows[1].latency_ms < rows[0].latency_ms);
        assert!(rows[3].latency_ms < rows[1].latency_ms);
    }
}
