//! Platform performance models and the CPU/GPU/FPGA comparison (Table IV).
//!
//! The paper compares its accelerator against an Intel Core i7-8700 CPU and
//! an NVIDIA K80 GPU running the float model with batch size 1 at sequence
//! length 128. Neither device is available here, so both are modelled with
//! roofline-style analytical models whose effective-efficiency constants are
//! calibrated to the published latencies (see DESIGN.md); their power figures
//! are taken directly from the paper. The FPGA column comes from the
//! cycle-level simulator in `fqbert-accel`.

pub mod baseline;
pub mod compare;
pub mod fpga;

pub use baseline::{cpu_i7_8700, gpu_k80, DeviceModel};
pub use compare::{comparison_table, PlatformResult};
pub use fpga::FpgaPlatform;
