//! Roofline-style CPU and GPU baseline models.

use fqbert_bert::ModelProfile;

/// An analytical model of a general-purpose device running the float BERT.
///
/// Latency is the roofline maximum of the compute time (FLOPs over the
/// *effective* throughput, i.e. peak × batch-1 efficiency) and the memory
/// time (weight bytes over the sustained bandwidth). The efficiency constants
/// are calibrated against the latencies reported in Table IV and documented
/// as such.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Device name as it appears in the comparison table.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Fraction of peak achieved on batch-1 BERT inference (calibrated).
    pub batch1_efficiency: f64,
    /// Sustained memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Board / package power in watts (taken from the paper's Table IV).
    pub power_watts: f64,
}

impl DeviceModel {
    /// Latency of one inference of the profiled model, in milliseconds.
    pub fn latency_ms(&self, profile: &ModelProfile) -> f64 {
        let flops = profile.total_flops() as f64;
        let compute_ms = flops / (self.peak_gflops * 1e9 * self.batch1_efficiency) * 1e3;
        // Batch-1 inference has to stream every FP32 weight at least once.
        let bytes = profile.weight_bytes_fp32() as f64;
        let memory_ms = bytes / (self.memory_bandwidth_gbps * 1e9) * 1e3;
        compute_ms.max(memory_ms)
    }

    /// Frames (inferences) per second.
    pub fn fps(&self, profile: &ModelProfile) -> f64 {
        1e3 / self.latency_ms(profile)
    }

    /// Frames per second per watt, the energy-efficiency metric of Table IV.
    pub fn fps_per_watt(&self, profile: &ModelProfile) -> f64 {
        self.fps(profile) / self.power_watts
    }
}

/// The Intel Core i7-8700 model used as the CPU baseline.
///
/// Peak: 6 cores × 3.2 GHz × 2 AVX2 FMA ports × 8 lanes × 2 ops ≈ 614 GFLOP/s.
/// The batch-1 efficiency is calibrated so that BERT-base at sequence length
/// 128 lands on the paper's 145.06 ms.
pub fn cpu_i7_8700() -> DeviceModel {
    DeviceModel {
        name: "Intel Core i7-8700".to_string(),
        peak_gflops: 614.0,
        batch1_efficiency: 0.251,
        memory_bandwidth_gbps: 41.6,
        power_watts: 65.0,
    }
}

/// The NVIDIA K80 model used as the GPU baseline (one GK210 die, as used for
/// single-stream inference).
///
/// Peak: ≈ 4 370 GFLOP/s FP32. The batch-1 efficiency is calibrated so that
/// BERT-base at sequence length 128 lands on the paper's 27.84 ms — batch-1
/// transformer inference leaves most of a K80 idle, hence the low fraction.
pub fn gpu_k80() -> DeviceModel {
    DeviceModel {
        name: "NVIDIA K80".to_string(),
        peak_gflops: 4_370.0,
        batch1_efficiency: 0.184,
        memory_bandwidth_gbps: 240.0,
        power_watts: 143.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_bert::BertConfig;

    fn bert_base_profile() -> ModelProfile {
        ModelProfile::new(&BertConfig::bert_base(), 128)
    }

    #[test]
    fn cpu_latency_matches_table_iv() {
        let ms = cpu_i7_8700().latency_ms(&bert_base_profile());
        assert!(
            (ms - 145.06).abs() / 145.06 < 0.05,
            "CPU latency {ms} ms deviates from 145.06 ms"
        );
    }

    #[test]
    fn gpu_latency_matches_table_iv() {
        let ms = gpu_k80().latency_ms(&bert_base_profile());
        assert!(
            (ms - 27.84).abs() / 27.84 < 0.05,
            "GPU latency {ms} ms deviates from 27.84 ms"
        );
    }

    #[test]
    fn fps_per_watt_matches_table_iv() {
        let profile = bert_base_profile();
        let cpu = cpu_i7_8700().fps_per_watt(&profile);
        let gpu = gpu_k80().fps_per_watt(&profile);
        assert!((cpu - 0.11).abs() < 0.02, "CPU fps/W {cpu}");
        assert!((gpu - 0.25).abs() < 0.03, "GPU fps/W {gpu}");
    }

    #[test]
    fn gpu_is_faster_but_less_efficient_than_fpga_band() {
        let profile = bert_base_profile();
        assert!(gpu_k80().latency_ms(&profile) < cpu_i7_8700().latency_ms(&profile));
        // Both general-purpose devices stay below 1 fps/W, far from the
        // accelerator's 2–3 fps/W band.
        assert!(gpu_k80().fps_per_watt(&profile) < 1.0);
        assert!(cpu_i7_8700().fps_per_watt(&profile) < 1.0);
    }

    #[test]
    fn latency_grows_with_sequence_length() {
        let cfg = BertConfig::bert_base();
        let short = ModelProfile::new(&cfg, 64);
        let long = ModelProfile::new(&cfg, 128);
        let model = cpu_i7_8700();
        assert!(model.latency_ms(&long) > model.latency_ms(&short));
    }
}
