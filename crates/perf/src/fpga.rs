//! FPGA platform wrapper bridging the accelerator simulator into the
//! platform comparison.

use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::{cycle_model, AcceleratorConfig, PowerModel};
use fqbert_bert::BertConfig;

/// One FPGA deployment of the FQ-BERT accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaPlatform {
    /// Accelerator configuration (device, PU/PE/BIM dimensions, clock).
    pub config: AcceleratorConfig,
    /// Power model used for the energy-efficiency column.
    pub power: PowerModel,
}

impl FpgaPlatform {
    /// Creates a platform from an accelerator configuration with the default
    /// calibrated power model.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            power: PowerModel::new(),
        }
    }

    /// The ZCU102 deployment of Table IV ((N, M) = (8, 16)).
    pub fn zcu102() -> Self {
        Self::new(AcceleratorConfig::zcu102_n8_m16())
    }

    /// The ZCU111 deployment of Table IV ((N, M) = (16, 16)).
    pub fn zcu111() -> Self {
        Self::new(AcceleratorConfig::zcu111_n16_m16())
    }

    /// Display name (the device name).
    pub fn name(&self) -> String {
        self.config.device.name().to_string()
    }

    /// Converts a BERT configuration + sequence length into the encoder
    /// shape consumed by the cycle model.
    pub fn shape_for(config: &BertConfig, seq_len: usize) -> EncoderShape {
        EncoderShape {
            seq_len,
            hidden: config.hidden,
            intermediate: config.intermediate,
            heads: config.heads,
        }
    }

    /// Inference latency in milliseconds for a BERT configuration.
    pub fn latency_ms(&self, bert: &BertConfig, seq_len: usize) -> f64 {
        let shape = Self::shape_for(bert, seq_len);
        cycle_model::estimate_latency(&self.config, &shape, bert.layers).latency_ms
    }

    /// Board power in watts.
    pub fn power_watts(&self) -> f64 {
        self.power.board_watts(&self.config)
    }

    /// Frames per second per watt for a BERT configuration.
    pub fn fps_per_watt(&self, bert: &BertConfig, seq_len: usize) -> f64 {
        self.power
            .fps_per_watt(&self.config, self.latency_ms(bert, seq_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu111_reaches_published_efficiency() {
        let platform = FpgaPlatform::zcu111();
        let fpw = platform.fps_per_watt(&BertConfig::bert_base(), 128);
        assert!((fpw - 3.18).abs() < 0.2, "ZCU111 fps/W {fpw}");
    }

    #[test]
    fn zcu102_latency_and_power() {
        let platform = FpgaPlatform::zcu102();
        let ms = platform.latency_ms(&BertConfig::bert_base(), 128);
        assert!((ms - 43.89).abs() / 43.89 < 0.05);
        assert!((platform.power_watts() - 9.8).abs() < 0.1);
    }

    #[test]
    fn shape_conversion_preserves_dimensions() {
        let shape = FpgaPlatform::shape_for(&BertConfig::bert_base(), 128);
        assert_eq!(shape.hidden, 768);
        assert_eq!(shape.heads, 12);
        assert_eq!(shape.seq_len, 128);
    }
}
