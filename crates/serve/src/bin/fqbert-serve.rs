//! `fqbert-serve` — serve saved FQ-BERT artifacts over the line-delimited
//! JSON protocol.
//!
//! ```text
//! fqbert-serve [--listen ADDR] [--max-batch N] [--max-delay-ms MS]
//!              [--max-queue N] [--cache N] [--stats-interval SECS]
//!              [--threads N] [--config FILE]
//!              [name=backend:path[#threads=N] ...]
//! ```
//!
//! Models come from `name=backend:path[#threads=N]` specs (backend is `int`
//! or `sim`) given as arguments and/or one per line in `--config FILE`
//! (`#` comments allowed). `--threads N` shards every model's batches
//! across `N` worker threads (`0` = auto-detect); a per-spec `#threads=`
//! suffix overrides it for that model. `--max-queue N` bounds each model's
//! request queue to `N` sequences (default 1024, `0` = unbounded):
//! submissions past the bound are answered with a `server_overloaded`
//! error frame instead of growing the backlog. `--stats-interval SECS`
//! prints a telemetry summary line per model every `SECS` seconds (`0`,
//! the default, disables it); the same data is live over the wire via
//! `{"cmd":"stats"}`. `--cache N` sizes the idempotent response cache
//! (default 128 responses, `0` turns replay off; identical in-flight
//! requests still coalesce). The server runs until a client sends
//! `{"cmd":"shutdown"}`.

use fqbert_serve::{registry, BatchPolicy, ModelRegistry, ModelSpec, Server, ServerConfig};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: fqbert-serve [--listen ADDR] [--max-batch N] [--max-delay-ms MS] \
         [--max-queue N] [--cache N] [--stats-interval SECS] [--threads N] \
         [--config FILE] [name=backend:path[#threads=N] ...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7878".to_string();
    // Serving over a socket defaults to a bounded queue: an unreachable
    // backlog helps nobody, and 1024 sequences is far beyond any flush
    // window. Library users opt in via `BatchPolicy::max_queue` instead.
    let mut policy = BatchPolicy::default().bounded(1024);
    let mut stats_interval = Duration::ZERO;
    let mut default_threads: Option<usize> = None;
    let mut cache_capacity = ServerConfig::default().cache_capacity;
    let mut specs: Vec<ModelSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => listen = flag_value("--listen"),
            "--max-batch" => {
                policy.max_batch = flag_value("--max-batch").parse().unwrap_or_else(|_| {
                    eprintln!("--max-batch must be a positive integer");
                    usage()
                })
            }
            "--max-delay-ms" => {
                let ms: u64 = flag_value("--max-delay-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--max-delay-ms must be an integer");
                    usage()
                });
                policy.max_delay = Duration::from_millis(ms);
            }
            "--max-queue" => {
                let bound: usize = flag_value("--max-queue").parse().unwrap_or_else(|_| {
                    eprintln!("--max-queue must be an integer (0 = unbounded)");
                    usage()
                });
                policy.max_queue = if bound == 0 { usize::MAX } else { bound };
            }
            "--cache" => {
                cache_capacity = flag_value("--cache").parse().unwrap_or_else(|_| {
                    eprintln!("--cache must be an integer (0 = replay off)");
                    usage()
                });
            }
            "--stats-interval" => {
                let secs: u64 = flag_value("--stats-interval").parse().unwrap_or_else(|_| {
                    eprintln!("--stats-interval must be an integer number of seconds (0 = off)");
                    usage()
                });
                stats_interval = Duration::from_secs(secs);
            }
            "--threads" => {
                let threads: usize = flag_value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads must be an integer (0 = auto-detect)");
                    usage()
                });
                default_threads = Some(threads);
            }
            "--config" => {
                let path = flag_value("--config");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read config `{path}`: {e}");
                    std::process::exit(1);
                });
                match registry::parse_config(&text) {
                    Ok(parsed) => specs.extend(parsed),
                    Err(e) => {
                        eprintln!("bad config `{path}`: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => usage(),
            spec => match spec.parse::<ModelSpec>() {
                Ok(parsed) => specs.push(parsed),
                Err(e) => {
                    eprintln!("bad model spec: {e}");
                    usage();
                }
            },
        }
    }

    if specs.is_empty() {
        eprintln!("no models to serve");
        usage();
    }

    // The --threads default applies to every spec without its own suffix.
    if let Some(threads) = default_threads {
        for spec in &mut specs {
            spec.threads.get_or_insert(threads);
        }
    }

    let registry = ModelRegistry::load(&specs).unwrap_or_else(|e| {
        eprintln!("failed to load models: {e}");
        std::process::exit(1);
    });
    let infos = registry.infos();
    let server = Server::spawn(
        registry,
        ServerConfig {
            addr: listen,
            policy,
            cache_capacity,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to start server: {e}");
        std::process::exit(1);
    });

    println!("fqbert-serve listening on {}", server.local_addr());
    println!(
        "batching: up to {} sequences or {:.1} ms per flush",
        policy.max_batch,
        policy.max_delay.as_secs_f64() * 1e3
    );
    for info in infos {
        println!(
            "  model {:<16} task {:<7} backend {:<5} precision {:<6} bits {:<12} threads {} \
             kernel {} resident {:.1} KiB ({} shared tensor(s))",
            info.name,
            info.task,
            info.backend,
            info.precision,
            info.bits,
            info.threads,
            info.kernel,
            info.resident_bytes as f64 / 1024.0,
            info.shared_tensors,
        );
    }
    println!("send {{\"cmd\":\"shutdown\"}} to stop");
    let names: Vec<String> = server
        .queue_stats()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    if stats_interval.is_zero() {
        server.join();
    } else {
        let mut last = Instant::now();
        while !server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
            if last.elapsed() >= stats_interval {
                last = Instant::now();
                print_stats(&server, &names);
            }
        }
        // Same graceful drain as `join`: shutdown is idempotent.
        server.shutdown();
    }
    println!("drained and stopped");
}

/// One periodic `--stats-interval` summary: server totals plus one line per
/// model with queue counters and end-to-end latency percentiles.
fn print_stats(server: &Server, names: &[String]) {
    let snapshot = server.stats_snapshot();
    println!(
        "stats: {} frame(s) answered, {} error(s), {} connection(s) open, \
         cache {} hit(s) / {} miss(es) / {} coalesced",
        snapshot.counter("server.requests").unwrap_or(0),
        snapshot.counter("server.errors").unwrap_or(0),
        snapshot.gauge("server.connections").unwrap_or(0),
        snapshot.counter("cache.hits").unwrap_or(0),
        snapshot.counter("cache.misses").unwrap_or(0),
        snapshot.counter("cache.coalesced").unwrap_or(0),
    );
    for name in names {
        let counter = |metric: &str| {
            snapshot
                .counter(&format!("model.{name}.queue.{metric}"))
                .unwrap_or(0)
        };
        let latency = match snapshot.histogram(&format!("model.{name}.request_us")) {
            Some(hist) if hist.count > 0 => format!(
                "p50 {:.0} us, p95 {:.0} us, p99 {:.0} us",
                hist.p50(),
                hist.p95(),
                hist.p99()
            ),
            _ => "no requests yet".to_string(),
        };
        println!(
            "  {name}: {} req, {} flushes, depth {}, shed {}, expired {}, latency {latency}",
            counter("requests"),
            counter("flushes"),
            snapshot
                .gauge(&format!("model.{name}.queue.depth"))
                .unwrap_or(0),
            counter("shed"),
            counter("expired"),
        );
    }
}
