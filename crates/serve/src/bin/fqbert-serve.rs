//! `fqbert-serve` — serve saved FQ-BERT artifacts over the line-delimited
//! JSON protocol.
//!
//! ```text
//! fqbert-serve [--listen ADDR] [--max-batch N] [--max-delay-ms MS]
//!              [--threads N] [--config FILE] [name=backend:path[#threads=N] ...]
//! ```
//!
//! Models come from `name=backend:path[#threads=N]` specs (backend is `int`
//! or `sim`) given as arguments and/or one per line in `--config FILE`
//! (`#` comments allowed). `--threads N` shards every model's batches
//! across `N` worker threads (`0` = auto-detect); a per-spec `#threads=`
//! suffix overrides it for that model. The server runs until a client
//! sends `{"cmd":"shutdown"}`.

use fqbert_serve::{registry, BatchPolicy, ModelRegistry, ModelSpec, Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fqbert-serve [--listen ADDR] [--max-batch N] [--max-delay-ms MS] \
         [--threads N] [--config FILE] [name=backend:path[#threads=N] ...]"
    );
    std::process::exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:7878".to_string();
    let mut policy = BatchPolicy::default();
    let mut default_threads: Option<usize> = None;
    let mut specs: Vec<ModelSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => listen = flag_value("--listen"),
            "--max-batch" => {
                policy.max_batch = flag_value("--max-batch").parse().unwrap_or_else(|_| {
                    eprintln!("--max-batch must be a positive integer");
                    usage()
                })
            }
            "--max-delay-ms" => {
                let ms: u64 = flag_value("--max-delay-ms").parse().unwrap_or_else(|_| {
                    eprintln!("--max-delay-ms must be an integer");
                    usage()
                });
                policy.max_delay = Duration::from_millis(ms);
            }
            "--threads" => {
                let threads: usize = flag_value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads must be an integer (0 = auto-detect)");
                    usage()
                });
                default_threads = Some(threads);
            }
            "--config" => {
                let path = flag_value("--config");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read config `{path}`: {e}");
                    std::process::exit(1);
                });
                match registry::parse_config(&text) {
                    Ok(parsed) => specs.extend(parsed),
                    Err(e) => {
                        eprintln!("bad config `{path}`: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--help" | "-h" => usage(),
            spec => match spec.parse::<ModelSpec>() {
                Ok(parsed) => specs.push(parsed),
                Err(e) => {
                    eprintln!("bad model spec: {e}");
                    usage();
                }
            },
        }
    }

    if specs.is_empty() {
        eprintln!("no models to serve");
        usage();
    }

    // The --threads default applies to every spec without its own suffix.
    if let Some(threads) = default_threads {
        for spec in &mut specs {
            spec.threads.get_or_insert(threads);
        }
    }

    let registry = ModelRegistry::load(&specs).unwrap_or_else(|e| {
        eprintln!("failed to load models: {e}");
        std::process::exit(1);
    });
    let infos = registry.infos();
    let server = Server::spawn(
        registry,
        ServerConfig {
            addr: listen,
            policy,
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("failed to start server: {e}");
        std::process::exit(1);
    });

    println!("fqbert-serve listening on {}", server.local_addr());
    println!(
        "batching: up to {} sequences or {:.1} ms per flush",
        policy.max_batch,
        policy.max_delay.as_secs_f64() * 1e3
    );
    for info in infos {
        println!(
            "  model {:<16} task {:<7} backend {:<5} precision {:<6} bits {:<12} threads {}",
            info.name, info.task, info.backend, info.precision, info.bits, info.threads
        );
    }
    println!("send {{\"cmd\":\"shutdown\"}} to stop");
    server.join();
    println!("drained and stopped");
}
