//! Error type of the serving layer.

use fqbert_runtime::RuntimeError;
use std::fmt;

/// Error returned by the registry, queues, server and client.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying engine failed (construction, inference, artifact
    /// I/O).
    Runtime(RuntimeError),
    /// A request named a model the registry does not hold.
    UnknownModel(String),
    /// A wire frame or config entry could not be parsed.
    Protocol(String),
    /// A socket operation failed.
    Io(std::io::Error),
    /// The server or queue is shutting down and no longer accepts work.
    ShuttingDown,
    /// The request's deadline expired before a flush could serve it.
    DeadlineExceeded,
    /// The request was shed at admission: serving it would push the queue
    /// past its [`crate::BatchPolicy::max_queue`] bound. The client should
    /// back off and retry; nothing about the request itself was wrong.
    ServerOverloaded,
    /// The serving stack itself misbehaved (a worker panicked, an engine
    /// call aborted mid-flush). The request failed but the worker survived;
    /// the message is for the operator, not the client.
    Internal(String),
}

impl ServeError {
    /// A duplicate of this error for delivery to a second waiter — the
    /// response cache broadcasts one leader's outcome to every coalesced
    /// follower. `ServeError` cannot derive `Clone` because the
    /// [`RuntimeError`] and [`std::io::Error`] payloads are not cloneable;
    /// those two variants are flattened into [`ServeError::Internal`] with
    /// the rendered message, while every other variant — including the
    /// `deadline_exceeded` / `server_overloaded` kinds whose wire semantics
    /// must survive coalescing — keeps its kind exactly.
    pub fn clone_for_broadcast(&self) -> ServeError {
        match self {
            ServeError::Runtime(e) => ServeError::Internal(format!("engine error: {e}")),
            ServeError::Io(e) => ServeError::Internal(format!("I/O error: {e}")),
            ServeError::UnknownModel(name) => ServeError::UnknownModel(name.clone()),
            ServeError::Protocol(msg) => ServeError::Protocol(msg.clone()),
            ServeError::ShuttingDown => ServeError::ShuttingDown,
            ServeError::DeadlineExceeded => ServeError::DeadlineExceeded,
            ServeError::ServerOverloaded => ServeError::ServerOverloaded,
            ServeError::Internal(msg) => ServeError::Internal(msg.clone()),
        }
    }

    /// Short machine-readable error kind used in wire error frames.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Runtime(_) => "runtime",
            ServeError::UnknownModel(_) => "unknown_model",
            ServeError::Protocol(_) => "protocol",
            ServeError::Io(_) => "io",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::ServerOverloaded => "server_overloaded",
            ServeError::Internal(_) => "internal_error",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Runtime(e) => write!(f, "engine error: {e}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before it was served")
            }
            ServeError::ServerOverloaded => {
                write!(f, "server overloaded: request queue is full, retry later")
            }
            ServeError::Internal(msg) => write!(f, "internal serving error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Runtime(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display_are_stable() {
        let errs = [
            (
                ServeError::Runtime(RuntimeError::InvalidConfig("x".into())),
                "runtime",
            ),
            (ServeError::UnknownModel("m".into()), "unknown_model"),
            (ServeError::Protocol("bad".into()), "protocol"),
            (ServeError::Io(std::io::Error::other("io")), "io"),
            (ServeError::ShuttingDown, "shutting_down"),
            (ServeError::DeadlineExceeded, "deadline_exceeded"),
            (ServeError::ServerOverloaded, "server_overloaded"),
            (
                ServeError::Internal("worker panicked".into()),
                "internal_error",
            ),
        ];
        for (err, kind) in errs {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
        }
    }
}
