//! Minimal JSON value model, parser and writer for the wire protocol.
//!
//! The repository builds without network access and therefore without
//! `serde`; requests and responses are small (a handful of strings and
//! numbers per line), so a recursive-descent parser over an owned
//! [`Json`] tree is all the server needs. The writer emits compact
//! single-line documents — the protocol is line-delimited, so a frame must
//! never contain a raw newline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are ordered (`BTreeMap`) so rendering is
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an array of numbers from an `f32` slice.
    pub fn num_array(xs: &[f32]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(f64::from(x))).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring the whole input to be consumed
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a position-annotated message for malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {pos}",
            b as char,
            pos = *pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes
        .get(*pos..)
        .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
    {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    ) {
        *pos += 1;
    }
    let digits = bytes.get(start..*pos).unwrap_or_default();
    let text = std::str::from_utf8(digits).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let tail = bytes.get(*pos..).unwrap_or_default();
                let rest = std::str::from_utf8(tail).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_protocol_shaped_frame() {
        let frame = Json::obj([
            ("id", Json::str("r1")),
            ("model", Json::str("sst2-int")),
            (
                "texts",
                Json::Arr(vec![Json::str("a good movie"), Json::str("so \"bad\"")]),
            ),
            ("scores", Json::num_array(&[0.25, 0.75])),
            ("cost", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        let line = frame.render();
        assert!(!line.contains('\n'), "frames must be single lines");
        assert_eq!(parse(&line).unwrap(), frame);
    }

    #[test]
    fn parses_whitespace_numbers_and_escapes() {
        let value = parse(" { \"a\" : [ 1, -2.5, 1e3 ], \"s\": \"t\\tab\\u0041\" } ").unwrap();
        let arr = value.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(value.get("s").unwrap().as_str(), Some("t\tabA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1x", "{\"a\":1} extra"] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn accessors_are_type_safe() {
        let v = parse("{\"n\":3,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("n").unwrap().as_str().is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }
}
