//! The idempotent response cache in front of the batching queues.
//!
//! Classification is a pure function of `(model, inputs)` — the engines are
//! deterministic and bit-identical across batch compositions — so identical
//! requests need not reach the engine twice. The cache exploits that in two
//! ways:
//!
//! * **Replay**: a bounded LRU of recent successful responses answers
//!   repeat requests without touching the queue. Replayed results are the
//!   exact [`TicketResponse`] the engine produced (bit-identical logits),
//!   re-flagged with [`TicketResponse::cached`] and zero queue wait.
//! * **Coalescing**: identical requests *in flight at the same time*
//!   collapse onto one engine submission. The first becomes the **leader**
//!   and runs the real serve path; the rest become **followers** that block
//!   on a channel and receive the leader's outcome. A follower waits at
//!   most its *own* deadline — joining a leader never extends the leader's
//!   deadline, and a follower whose budget expires first resolves to
//!   [`ServeError::DeadlineExceeded`] on its own clock.
//!
//! Failure semantics are explicit: only successes are cached (an engine
//! hiccup or a shed never poisons future requests), and a leader's error is
//! broadcast to its followers with its wire kind preserved where possible
//! ([`ServeError::clone_for_broadcast`]) — in particular `deadline_exceeded`
//! and `server_overloaded` reach followers under their own kinds. A leader
//! that dies without resolving (panic unwinding through the serve closure)
//! releases its followers with an `internal_error` via a drop guard rather
//! than leaving them blocked forever.
//!
//! Requests can opt out per frame (`"no_cache": true` — see the wire
//! protocol): the server then bypasses this module entirely, which is the
//! escape hatch for load testing and for callers that want a fresh engine
//! measurement.
//!
//! Locking: one mutex guards the LRU and the in-flight table. Every channel
//! send happens strictly after the guard is dropped, so a follower never
//! rendezvouses with a thread that holds cache state.

use crate::queue::TicketResponse;
use crate::{lock_clean, Result, ServeError};
use fqbert_telemetry::{Counter, Scope};
use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// What a cached response is keyed on: the routing name plus the exact
/// request payload. Tokenization is deterministic, so keying on the raw
/// inputs (rather than token ids) lets cache hits skip encoding entirely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Routing name of the target model.
    pub model: String,
    /// The request's inputs, exactly as submitted.
    pub inputs: crate::protocol::RequestInputs,
}

/// Cache totals, mirrored into telemetry counters (`cache.hits`,
/// `cache.misses`, `cache.coalesced`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the LRU without engine work.
    pub hits: u64,
    /// Requests that ran the real serve path (as coalescing leaders).
    pub misses: u64,
    /// Requests that rode another identical in-flight request's engine
    /// call as coalescing followers.
    pub coalesced: u64,
}

struct CacheState {
    /// Completed successful responses by key.
    entries: HashMap<CacheKey, TicketResponse>,
    /// Recency order over `entries` keys; front = most recently used.
    recency: VecDeque<CacheKey>,
    /// Keys currently being served by a leader, with the channels of every
    /// follower waiting on that leader's outcome.
    inflight: HashMap<CacheKey, Vec<mpsc::Sender<Result<TicketResponse>>>>,
}

impl CacheState {
    /// Looks a key up in the LRU, refreshing its recency on a hit.
    fn lookup(&mut self, key: &CacheKey) -> Option<TicketResponse> {
        let found = self.entries.get(key).cloned()?;
        if let Some(at) = self.recency.iter().position(|k| k == key) {
            if let Some(k) = self.recency.remove(at) {
                self.recency.push_front(k);
            }
        }
        Some(found)
    }

    /// Inserts a successful response, evicting the least recently used
    /// entry when the cache is at capacity.
    fn store(&mut self, key: CacheKey, response: TicketResponse, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.entries.insert(key.clone(), response).is_none() {
            self.recency.push_front(key);
            while self.entries.len() > capacity {
                if let Some(evicted) = self.recency.pop_back() {
                    self.entries.remove(&evicted);
                } else {
                    break;
                }
            }
        } else if let Some(at) = self.recency.iter().position(|k| k == &key) {
            if let Some(k) = self.recency.remove(at) {
                self.recency.push_front(k);
            }
        }
    }
}

/// An idempotent response cache: LRU replay of recent answers plus
/// in-flight coalescing of identical concurrent requests.
pub struct ResponseCache {
    capacity: usize,
    state: Mutex<CacheState>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    coalesced: Arc<Counter>,
}

impl ResponseCache {
    /// A cache holding up to `capacity` recent responses, recording
    /// `cache.hits` / `cache.misses` / `cache.coalesced` under `scope`.
    /// Capacity `0` disables replay but still coalesces identical
    /// in-flight requests.
    pub fn new(capacity: usize, scope: &Scope) -> Self {
        let cache = scope.child("cache");
        Self {
            capacity,
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                recency: VecDeque::new(),
                inflight: HashMap::new(),
            }),
            hits: cache.counter("hits"),
            misses: cache.counter("misses"),
            coalesced: cache.counter("coalesced"),
        }
    }

    /// Maximum number of responses the LRU retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of responses currently cached.
    pub fn len(&self) -> usize {
        lock_clean(&self.state).entries.len()
    }

    /// Whether no responses are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter totals since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            coalesced: self.coalesced.get(),
        }
    }

    /// Serves one request through the cache. Exactly one of three things
    /// happens:
    ///
    /// * **Hit** — a cached response for `key` is replayed immediately,
    ///   with [`TicketResponse::cached`] set and zero wait. `serve` is not
    ///   called.
    /// * **Leader** — no cached response and no identical request in
    ///   flight: `serve` runs (encode, submit, block on the queue ticket),
    ///   its success is stored, and its outcome — success or failure — is
    ///   broadcast to any followers that joined meanwhile.
    /// * **Follower** — an identical request is already in flight: this
    ///   call blocks for the leader's outcome instead of submitting its
    ///   own, for at most `deadline` (counted from now, so a follower's
    ///   budget never extends the leader's).
    ///
    /// # Errors
    ///
    /// A leader propagates `serve`'s error verbatim. A follower receives
    /// the leader's outcome re-keyed through
    /// [`ServeError::clone_for_broadcast`], resolves to
    /// [`ServeError::DeadlineExceeded`] if its own deadline passes first,
    /// and to [`ServeError::Internal`] if the leader died without
    /// resolving.
    pub fn get_or_serve<F>(
        &self,
        key: CacheKey,
        deadline: Option<Duration>,
        serve: F,
    ) -> Result<TicketResponse>
    where
        F: FnOnce() -> Result<TicketResponse>,
    {
        enum Role {
            Hit(TicketResponse),
            Leader,
            Follower(mpsc::Receiver<Result<TicketResponse>>),
        }
        let role = {
            let mut state = lock_clean(&self.state);
            if let Some(found) = state.lookup(&key) {
                Role::Hit(found)
            } else if let Some(waiters) = state.inflight.get_mut(&key) {
                let (tx, rx) = mpsc::channel();
                waiters.push(tx);
                Role::Follower(rx)
            } else {
                state.inflight.insert(key.clone(), Vec::new());
                Role::Leader
            }
        };
        match role {
            Role::Hit(mut response) => {
                self.hits.inc();
                response.cached = true;
                response.wait = Duration::ZERO;
                Ok(response)
            }
            Role::Follower(rx) => {
                self.coalesced.inc();
                let vanished = || {
                    Err(ServeError::Internal(
                        "response-cache leader died before resolving".to_string(),
                    ))
                };
                match deadline {
                    Some(budget) => match rx.recv_timeout(budget) {
                        Ok(outcome) => outcome,
                        Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                        Err(mpsc::RecvTimeoutError::Disconnected) => vanished(),
                    },
                    None => rx.recv().unwrap_or_else(|_| vanished()),
                }
            }
            Role::Leader => {
                self.misses.inc();
                let guard = LeaderGuard {
                    cache: self,
                    key: Some(key),
                };
                let result = serve();
                guard.resolve(result)
            }
        }
    }
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Owns a leader's in-flight entry. `resolve` consumes it on the normal
/// path; `Drop` fires only when the serve closure unwound, and releases
/// the followers with an error instead of leaving them blocked.
struct LeaderGuard<'a> {
    cache: &'a ResponseCache,
    key: Option<CacheKey>,
}

impl LeaderGuard<'_> {
    fn resolve(mut self, result: Result<TicketResponse>) -> Result<TicketResponse> {
        let Some(key) = self.key.take() else {
            return result;
        };
        let followers = {
            let mut state = lock_clean(&self.cache.state);
            let followers = state.inflight.remove(&key).unwrap_or_default();
            if let Ok(response) = &result {
                state.store(key, response.clone(), self.cache.capacity);
            }
            followers
        };
        for follower in followers {
            let outcome = match &result {
                Ok(response) => Ok(response.clone()),
                Err(err) => Err(err.clone_for_broadcast()),
            };
            let _ = follower.send(outcome);
        }
        result
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        let Some(key) = self.key.take() else {
            return;
        };
        let followers = {
            let mut state = lock_clean(&self.cache.state);
            state.inflight.remove(&key).unwrap_or_default()
        };
        for follower in followers {
            let _ = follower.send(Err(ServeError::Internal(
                "response-cache leader aborted mid-serve".to_string(),
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestInputs;
    use fqbert_runtime::Scored;

    fn key(model: &str, text: &str) -> CacheKey {
        CacheKey {
            model: model.to_string(),
            inputs: RequestInputs::Texts(vec![text.to_string()]),
        }
    }

    fn response(tag: f32) -> TicketResponse {
        TicketResponse {
            results: vec![Scored {
                prediction: 0,
                label: "negative",
                scores: vec![tag, 1.0 - tag],
                logits: vec![tag, -tag],
                cost: None,
            }],
            cost: None,
            flushed_batch: 1,
            wait: Duration::from_micros(250),
            cached: false,
        }
    }

    fn scope() -> Scope {
        Scope::detached("")
    }

    #[test]
    fn replays_recent_answers_without_serving() {
        let cache = ResponseCache::new(4, &scope());
        let first = cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.25)))
            .expect("leader");
        assert!(!first.cached);
        let second = cache
            .get_or_serve(key("m", "a"), None, || {
                panic!("hit must not reach the engine")
            })
            .expect("hit");
        assert!(second.cached);
        assert_eq!(second.wait, Duration::ZERO);
        assert_eq!(second.results, first.results);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                coalesced: 0
            }
        );
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = ResponseCache::new(4, &scope());
        let a = cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.25)))
            .expect("a");
        let b = cache
            .get_or_serve(key("m", "b"), None, || Ok(response(0.75)))
            .expect("b");
        let other_model = cache
            .get_or_serve(key("n", "a"), None, || Ok(response(0.5)))
            .expect("other model");
        assert_ne!(a.results, b.results);
        assert_ne!(a.results, other_model.results);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let cache = ResponseCache::new(2, &scope());
        for (text, tag) in [("a", 0.1), ("b", 0.2)] {
            cache
                .get_or_serve(key("m", text), None, || Ok(response(tag)))
                .expect("fill");
        }
        // Touch `a` so `b` is the eviction victim.
        cache
            .get_or_serve(key("m", "a"), None, || unreachable!("hit"))
            .expect("refresh");
        cache
            .get_or_serve(key("m", "c"), None, || Ok(response(0.3)))
            .expect("evicting insert");
        assert_eq!(cache.len(), 2);
        // `a` survived, `b` was evicted and must be served again.
        cache
            .get_or_serve(key("m", "a"), None, || unreachable!("still cached"))
            .expect("a cached");
        let stats_before = cache.stats();
        cache
            .get_or_serve(key("m", "b"), None, || Ok(response(0.2)))
            .expect("b re-served");
        assert_eq!(cache.stats().misses, stats_before.misses + 1);
    }

    #[test]
    fn errors_are_never_cached() {
        let cache = ResponseCache::new(4, &scope());
        let err = cache
            .get_or_serve(key("m", "a"), None, || Err(ServeError::ServerOverloaded))
            .expect_err("shed");
        assert_eq!(err.kind(), "server_overloaded");
        assert!(cache.is_empty());
        // The next identical request runs the serve path again.
        cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.5)))
            .expect("served after shed");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn capacity_zero_disables_replay() {
        let cache = ResponseCache::new(0, &scope());
        cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.5)))
            .expect("first");
        cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.5)))
            .expect("second");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn followers_receive_the_leaders_outcome() {
        let cache = Arc::new(ResponseCache::new(4, &scope()));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader_cache = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            leader_cache.get_or_serve(key("m", "a"), None, move || {
                enter_tx.send(()).expect("signal entry");
                release_rx.recv().expect("await release");
                Ok(response(0.25))
            })
        });
        enter_rx.recv().expect("leader entered serve");
        let follower_cache = Arc::clone(&cache);
        let follower = std::thread::spawn(move || {
            follower_cache.get_or_serve(key("m", "a"), None, || panic!("follower must not serve"))
        });
        // Wait until the follower has actually registered.
        while cache.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).expect("release leader");
        let led = leader.join().expect("leader thread").expect("leader ok");
        let followed = follower
            .join()
            .expect("follower thread")
            .expect("follower ok");
        assert_eq!(led.results, followed.results);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                coalesced: 1
            }
        );
    }

    #[test]
    fn follower_deadline_cannot_outwait_its_own_budget() {
        let cache = Arc::new(ResponseCache::new(4, &scope()));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader_cache = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            leader_cache.get_or_serve(key("m", "a"), None, move || {
                enter_tx.send(()).expect("signal entry");
                release_rx.recv().expect("await release");
                Ok(response(0.25))
            })
        });
        enter_rx.recv().expect("leader entered serve");
        // The follower's 5 ms budget expires while the leader is still
        // blocked: it must fail on its own clock, not wait for the leader.
        let err = cache
            .get_or_serve(key("m", "a"), Some(Duration::from_millis(5)), || {
                panic!("follower must not serve")
            })
            .expect_err("follower deadline");
        assert_eq!(err.kind(), "deadline_exceeded");
        release_tx.send(()).expect("release leader");
        leader.join().expect("leader thread").expect("leader ok");
    }

    #[test]
    fn leader_errors_broadcast_with_kind_preserved() {
        let cache = Arc::new(ResponseCache::new(4, &scope()));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader_cache = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            leader_cache.get_or_serve(key("m", "a"), None, move || {
                enter_tx.send(()).expect("signal entry");
                release_rx.recv().expect("await release");
                Err(ServeError::ServerOverloaded)
            })
        });
        enter_rx.recv().expect("leader entered serve");
        let follower_cache = Arc::clone(&cache);
        let follower = std::thread::spawn(move || {
            follower_cache.get_or_serve(key("m", "a"), None, || panic!("follower must not serve"))
        });
        while cache.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).expect("release leader");
        let led = leader.join().expect("leader thread");
        let followed = follower.join().expect("follower thread");
        assert_eq!(led.expect_err("leader shed").kind(), "server_overloaded");
        assert_eq!(
            followed.expect_err("follower shed").kind(),
            "server_overloaded"
        );
        assert!(cache.is_empty(), "failures must never be cached");
    }

    #[test]
    fn a_panicking_leader_releases_its_followers() {
        let cache = Arc::new(ResponseCache::new(4, &scope()));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let leader_cache = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                leader_cache.get_or_serve(key("m", "a"), None, move || {
                    enter_tx.send(()).expect("signal entry");
                    release_rx.recv().expect("await release");
                    panic!("engine blew up")
                })
            }));
        });
        enter_rx.recv().expect("leader entered serve");
        let follower_cache = Arc::clone(&cache);
        let follower = std::thread::spawn(move || {
            follower_cache.get_or_serve(key("m", "a"), None, || panic!("follower must not serve"))
        });
        while cache.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).expect("release leader");
        leader.join().expect("leader thread");
        let err = follower
            .join()
            .expect("follower thread")
            .expect_err("follower must be released");
        assert_eq!(err.kind(), "internal_error");
        // The key is free again: a fresh request becomes a new leader.
        cache
            .get_or_serve(key("m", "a"), None, || Ok(response(0.5)))
            .expect("fresh leader after abort");
    }
}
