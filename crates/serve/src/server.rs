//! The line-delimited-JSON TCP server: accept loop, per-connection
//! handlers, per-model dynamic batching queues and graceful shutdown.

use crate::cache::{CacheKey, ResponseCache};
use crate::protocol::{self, Command, RequestInputs};
use crate::queue::{BatchPolicy, BatchQueue, TicketResponse};
use crate::registry::ModelRegistry;
use crate::{lock_clean, Result, ServeError};
use fqbert_runtime::EncodedBatch;
use fqbert_telemetry::{Counter, Gauge, Histogram, Registry, Scope, Snapshot};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked socket operations re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration: listen address plus the per-model flush policy.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port — query it with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Dynamic batching policy applied to every model queue.
    pub policy: BatchPolicy,
    /// Responses retained by the idempotent response cache
    /// ([`ResponseCache`]): repeats of a recent `(model, inputs)` request
    /// replay the stored answer (bit-identical) without touching the
    /// engine, and identical in-flight requests coalesce onto one engine
    /// call. `0` disables replay (coalescing still applies); requests can
    /// opt out individually with `"no_cache": true`.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy::default(),
            cache_capacity: 128,
        }
    }
}

/// Server-wide telemetry handles (`server.*` in the server registry).
struct ServerMetrics {
    /// `server.connections`: client connections currently open.
    connections: Arc<Gauge>,
    /// `server.requests`: frames answered (all commands, all outcomes).
    requests: Arc<Counter>,
    /// `server.errors`: frames answered with an error frame.
    errors: Arc<Counter>,
}

struct Shared {
    registry: ModelRegistry,
    queues: BTreeMap<String, BatchQueue>,
    shutdown: AtomicBool,
    connections: Mutex<Vec<JoinHandle<()>>>,
    /// One registry pooling `server.*`, every queue's `model.<name>.queue.*`
    /// and each model's `model.<name>.request_us` end-to-end histogram.
    /// Engine-internal metrics live in each engine's own registry and are
    /// merged in (prefixed) by [`stats_snapshot`].
    telemetry: Arc<Registry>,
    metrics: ServerMetrics,
    /// End-to-end latency histogram per model (`model.<name>.request_us`):
    /// frame receipt → response framed, including queue wait and flush.
    request_us: BTreeMap<String, Arc<Histogram>>,
    /// The idempotent response cache in front of every queue (`cache.*`
    /// counters in the pooled registry).
    cache: ResponseCache,
    /// `model.<name>.resident_bytes` gauge per model — refreshed on every
    /// stats snapshot, since lazily loaded models grow as panels
    /// materialize.
    resident_bytes: BTreeMap<String, Arc<Gauge>>,
}

/// A running multi-model server.
///
/// Spawned with [`Server::spawn`]; stops when a client sends the
/// `shutdown` command or the process calls [`Server::shutdown`]. Shutdown
/// is graceful: the listener closes, connection handlers finish their
/// in-flight request, and every queue drains what it already accepted
/// before the workers exit.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    cleaned: Mutex<bool>,
}

impl Server {
    /// Binds `config.addr`, starts one [`BatchQueue`] per registered model
    /// and the accept loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] for an empty registry and I/O
    /// errors from binding the listener.
    pub fn spawn(registry: ModelRegistry, config: ServerConfig) -> Result<Server> {
        if registry.is_empty() {
            return Err(ServeError::Protocol(
                "cannot serve an empty model registry".to_string(),
            ));
        }
        let telemetry = Arc::new(Registry::new());
        let mut queues: BTreeMap<String, BatchQueue> = BTreeMap::new();
        let mut request_us: BTreeMap<String, Arc<Histogram>> = BTreeMap::new();
        let mut resident_bytes: BTreeMap<String, Arc<Gauge>> = BTreeMap::new();
        for (name, engine) in registry.iter() {
            let scope = Scope::new(Arc::clone(&telemetry), format!("model.{name}"));
            request_us.insert(name.to_string(), scope.histogram("request_us"));
            let resident = scope.gauge("resident_bytes");
            resident.set(engine.resident_bytes() as i64);
            resident_bytes.insert(name.to_string(), resident);
            queues.insert(
                name.to_string(),
                BatchQueue::start_scoped(Arc::clone(engine), config.policy, &scope),
            );
        }
        let cache = ResponseCache::new(
            config.cache_capacity,
            &Scope::new(Arc::clone(&telemetry), ""),
        );
        let server_scope = Scope::new(Arc::clone(&telemetry), "server");
        let metrics = ServerMetrics {
            connections: server_scope.gauge("connections"),
            requests: server_scope.counter("requests"),
            errors: server_scope.counter("errors"),
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            queues,
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            telemetry,
            metrics,
            request_us,
            cache,
            resident_bytes,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("fqbert-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept: Mutex::new(Some(accept)),
            cleaned: Mutex::new(false),
        })
    }

    /// The bound listen address (with the real port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Batching statistics per model queue.
    pub fn queue_stats(&self) -> Vec<(String, crate::queue::QueueStats)> {
        self.shared
            .queues
            .iter()
            .map(|(name, queue)| (name.clone(), queue.stats()))
            .collect()
    }

    /// The server's pooled telemetry registry (`server.*`,
    /// `model.<name>.queue.*`, `model.<name>.request_us`). Engine-internal
    /// metrics are *not* in here — use [`Server::stats_snapshot`] for the
    /// complete merged view.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.shared.telemetry
    }

    /// The complete telemetry snapshot the `stats` wire command returns:
    /// the server registry plus every engine's private registry merged in
    /// under `model.<name>.` (so `engine.classify_us` becomes
    /// `model.<name>.engine.classify_us`).
    pub fn stats_snapshot(&self) -> Snapshot {
        stats_snapshot(&self.shared)
    }

    /// The idempotent response cache fronting every model queue
    /// (hit/miss/coalesce totals via [`ResponseCache::stats`]).
    pub fn response_cache(&self) -> &ResponseCache {
        &self.shared.cache
    }

    /// Requests shutdown and blocks until the accept loop, every
    /// connection handler and every queue worker have exited. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.cleanup();
    }

    /// Blocks until a shutdown is requested (e.g. by a client's `shutdown`
    /// command), then performs the same cleanup as [`Server::shutdown`].
    pub fn join(&self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.cleanup();
    }

    fn cleanup(&self) {
        let mut cleaned = lock_clean(&self.cleaned);
        if *cleaned {
            return;
        }
        // Join errors mean a thread panicked; it is already gone, and
        // shutdown must still run to completion for the threads that are
        // not.
        if let Some(accept) = lock_clean(&self.accept).take() {
            let _ = accept.join();
        }
        // Handlers finish their in-flight request against still-running
        // queues, then observe the flag on their next read timeout.
        let connections = std::mem::take(&mut *lock_clean(&self.shared.connections));
        for handle in connections {
            let _ = handle.join();
        }
        // Only now drain and stop the queues.
        for queue in self.shared.queues.values() {
            queue.shutdown();
        }
        *cleaned = true;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.local_addr)
            .field("models", &self.shared.registry.names())
            .field("shutting_down", &self.is_shutting_down())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("fqbert-serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &conn_shared));
                // If the OS refuses a thread, the dropped closure closes
                // the stream — the client sees a hangup, the server keeps
                // accepting.
                let Ok(handle) = spawned else {
                    continue;
                };
                let mut connections = lock_clean(&shared.connections);
                // Reap exited handlers so a long-lived server's handle list
                // tracks live connections, not every connection ever made.
                let mut index = 0;
                while index < connections.len() {
                    let finished = connections
                        .get(index)
                        .is_some_and(|handle| handle.is_finished());
                    if finished {
                        let _ = connections.swap_remove(index).join();
                    } else {
                        index += 1;
                    }
                }
                connections.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Hard cap on one request frame. Far above any real batch of texts, and
/// bounds the per-connection buffer against a client streaming bytes that
/// never contain a newline.
const MAX_FRAME_BYTES: usize = 4 << 20;

/// How long a response write may block before the connection is dropped: a
/// client that stops reading must not pin a handler thread (and with it
/// graceful shutdown) forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// The merged snapshot served over the wire: server-wide metrics plus each
/// engine's private registry prefixed with its model name.
fn stats_snapshot(shared: &Shared) -> Snapshot {
    // Lazily loaded models materialize weight panels on first use, so the
    // residency gauges are refreshed at snapshot time rather than frozen
    // at spawn.
    for (name, gauge) in &shared.resident_bytes {
        if let Some(queue) = shared.queues.get(name) {
            gauge.set(queue.engine().resident_bytes() as i64);
        }
    }
    let mut snapshot = shared.telemetry.snapshot();
    for (name, queue) in &shared.queues {
        snapshot.merge_prefixed(
            &queue.engine().telemetry().snapshot(),
            &format!("model.{name}"),
        );
    }
    snapshot
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections.inc();
    connection_loop(stream, shared);
    shared.metrics.connections.dec();
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets must block with a read timeout so the handler can
    // re-check the shutdown flag without busy-waiting.
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(POLL_INTERVAL)).is_err()
        || stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // `read_until` keeps partially read bytes in `buf` across timeouts
    // (unlike `read_line`, which truncates its String on error), so a
    // frame split across poll intervals is reassembled, not dropped. The
    // `Read::take` cap bounds how far `read_until` can run inside one call
    // even against a sender that streams newline-free bytes full speed.
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let budget = (MAX_FRAME_BYTES + 1).saturating_sub(buf.len()) as u64;
        match (&mut reader).take(budget).read_until(b'\n', &mut buf) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if buf.len() > MAX_FRAME_BYTES {
                    let err =
                        ServeError::Protocol(format!("frame exceeds {MAX_FRAME_BYTES} bytes"));
                    let mut payload = protocol::error_frame(None, &err).render();
                    payload.push('\n');
                    let _ = writer.write_all(payload.as_bytes());
                    break;
                }
                if buf.last() != Some(&b'\n') {
                    continue; // EOF mid-line surfaces as Ok(0) next turn
                }
                let line = String::from_utf8_lossy(&buf).into_owned();
                let stop = respond(&line, &mut writer, shared);
                buf.clear();
                if stop {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Handles one frame; returns `true` when the connection should close.
fn respond(line: &str, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let received = Instant::now();
    shared.metrics.requests.inc();
    let (frame, stop) = match protocol::parse_command(line) {
        Ok(Command::Classify(request)) => {
            let response = serve_request(&request, shared, received);
            (response, false)
        }
        Ok(Command::ListModels) => (protocol::models_frame(&shared.registry.infos()), false),
        Ok(Command::Ping) => (protocol::pong_frame(), false),
        Ok(Command::Stats) => (protocol::stats_frame(&stats_snapshot(shared)), false),
        Ok(Command::Shutdown) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (protocol::shutdown_frame(), true)
        }
        Err(err) => {
            shared.metrics.errors.inc();
            (protocol::error_frame(None, &err), false)
        }
    };
    let mut payload = frame.render();
    payload.push('\n');
    if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
        return true;
    }
    stop
}

fn serve_request(
    request: &crate::protocol::Request,
    shared: &Arc<Shared>,
    received: Instant,
) -> crate::json::Json {
    let result = (|| -> Result<crate::json::Json> {
        // One queue per registry entry (spawn builds them together), so the
        // queue lookup is also the model-existence check.
        let queue = shared
            .queues
            .get(&request.model)
            .ok_or_else(|| ServeError::UnknownModel(request.model.clone()))?;
        let deadline = request.deadline_ms.map(Duration::from_millis);
        let response = if request.no_cache {
            classify_on_queue(queue, &request.inputs, deadline)?
        } else {
            // A cache hit replays the stored (bit-identical) response
            // without tokenizing; identical in-flight requests coalesce
            // onto one queue submission. The leader submits with its own
            // deadline; a follower bounds its wait by its own.
            let key = CacheKey {
                model: request.model.clone(),
                inputs: request.inputs.clone(),
            };
            shared.cache.get_or_serve(key, deadline, || {
                classify_on_queue(queue, &request.inputs, deadline)
            })?
        };
        let latency_ms = received.elapsed().as_secs_f64() * 1e3;
        Ok(protocol::response_frame(
            &request.id,
            &request.model,
            &response,
            latency_ms,
        ))
    })();
    // End-to-end latency per model, recorded for every answered request —
    // slow failures (deadline expiries, engine errors) shape the tail too.
    // Shed requests are excluded: they fail in microseconds before any
    // serving work, so under overload they would drag the percentiles to
    // the fast-fail floor and mask the latency of requests actually
    // served (`queue.shed` already counts them). Unknown models have no
    // histogram and are skipped.
    if !matches!(result, Err(ServeError::ServerOverloaded)) {
        if let Some(histogram) = shared.request_us.get(&request.model) {
            histogram.record_duration(received.elapsed());
        }
    }
    match result {
        Ok(frame) => frame,
        Err(err) => {
            shared.metrics.errors.inc();
            protocol::error_frame(Some(&request.id), &err)
        }
    }
}

/// The real serve path behind the response cache: tokenize the inputs on
/// the queue's engine, submit with the request's deadline and block for
/// the ticket.
fn classify_on_queue(
    queue: &BatchQueue,
    inputs: &RequestInputs,
    deadline: Option<Duration>,
) -> Result<TicketResponse> {
    let engine = queue.engine();
    let batch = match inputs {
        RequestInputs::Texts(texts) => {
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            EncodedBatch::from_texts(engine.tokenizer(), &refs)
        }
        RequestInputs::Pairs(pairs) => {
            let refs: Vec<(&str, &str)> = pairs
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            EncodedBatch::from_pairs(engine.tokenizer(), &refs)
        }
    };
    queue
        .submit_with_deadline(batch.examples().to_vec(), deadline)
        .wait()
}
