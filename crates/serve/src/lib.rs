//! `fqbert-serve` — the multi-model serving layer over the
//! [`fqbert_runtime`] engine.
//!
//! The runtime crate answers *how* to classify a batch on one backend; this
//! crate answers how to serve *many concurrent requests against many
//! models* from one process, in four layers:
//!
//! 1. [`ModelRegistry`] loads several [`fqbert_runtime::ModelArtifact`]s
//!    (different tasks and/or bit-widths) into per-model engines and routes
//!    requests by model name. Registry entries come from plain config
//!    strings ([`ModelSpec`]: `name=backend:path`, with
//!    `BackendKind: FromStr` parsing the backend).
//! 2. [`BatchQueue`] implements dynamic batching: one worker thread per
//!    model collects in-flight requests up to a max-batch/max-delay window
//!    ([`BatchPolicy`]) and flushes them through a single
//!    `classify_scored` call, returning results through per-request
//!    response channels ([`Ticket`]). Queued results are bit-identical to
//!    calling `classify_batch` directly on the same inputs.
//! 3. [`ResponseCache`] sits in front of each queue and makes identical
//!    requests idempotent: repeats of a recently answered `(model,
//!    inputs)` pair replay the stored response (bit-identical, flagged
//!    `"cached":true`), and identical requests *in flight at the same
//!    time* coalesce onto one engine call. Requests can opt out with
//!    `"no_cache":true`.
//! 4. [`Server`] speaks a hand-rolled line-delimited-JSON protocol over
//!    TCP (the repository is offline — no HTTP dependencies): one JSON
//!    object per line in each direction, with error frames, per-request
//!    latency reporting and the simulated backend's cycle-model cost in
//!    responses. [`Client`] is the matching blocking client.
//!
//! Every layer records telemetry ([`fqbert_telemetry`], re-exported as
//! [`telemetry`]): queues count requests/flushes/sheds and time queue wait
//! and flush latency, the server tracks connections and per-model
//! end-to-end latency percentiles, and the whole merged snapshot is served
//! live over the wire by the `{"cmd":"stats"}` command (decoded by
//! [`Client::stats`] into a [`StatsReport`]). Admission control rides on
//! the same machinery: [`BatchPolicy::max_queue`] bounds each queue, and
//! submissions past the bound are shed with a `server_overloaded` error
//! frame instead of growing the backlog.
//!
//! See `crates/serve/README.md` for the wire-protocol specification.

pub mod cache;
pub mod client;
pub mod error;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;

pub use cache::{CacheKey, CacheStats, ResponseCache};
pub use client::{
    Client, ClientModelInfo, ClientResponse, ClientResult, HistogramStats, StatsReport,
};
pub use error::ServeError;
pub use fqbert_telemetry as telemetry;
pub use json::Json;
pub use protocol::{Command, Request, RequestInputs};
pub use queue::{BatchPolicy, BatchQueue, QueueStats, Ticket, TicketResponse};
pub use registry::{ModelInfo, ModelRegistry, ModelSpec};
pub use server::{Server, ServerConfig};

/// Convenience result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Locks a mutex, recovering from poisoning. A poisoned mutex means some
/// thread panicked mid-update; the serving stack's contract is that a
/// panic costs at most the request that triggered it, so the state — which
/// every locked section leaves structurally valid — keeps serving rather
/// than cascading the panic into every future request.
pub(crate) fn lock_clean<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
