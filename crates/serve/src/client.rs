//! Blocking client for the line-delimited-JSON protocol.
//!
//! Two usage styles share one connection type:
//!
//! * **Round trips** — [`Client::classify_texts`] and friends write one
//!   request and block for its response.
//! * **Pipelining** — [`Client::submit`] writes a request *without*
//!   waiting, so any number of requests are in flight on one connection;
//!   [`Client::drain`] then collects the responses. The server answers
//!   frames in order per connection, so responses pair with submissions
//!   by position, and every request carries an id (client-supplied via
//!   [`Client::submit_as`], else generated) that the server echoes back —
//!   the drain verifies the echo to catch any desynchronization.

use crate::json::Json;
use crate::{Result, ServeError};
use fqbert_runtime::BatchCost;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One classified sequence as decoded from a response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResult {
    /// Predicted class index.
    pub prediction: usize,
    /// Label name of the predicted class.
    pub label: String,
    /// Softmax scores.
    pub scores: Vec<f32>,
    /// Raw logits.
    pub logits: Vec<f32>,
}

/// One decoded classification response.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResponse {
    /// Echoed request id.
    pub id: String,
    /// Model that served the request.
    pub model: String,
    /// Per-sequence results, in request order.
    pub results: Vec<ClientResult>,
    /// Server-side wall latency (frame receipt → response framing) in ms.
    pub latency_ms: f64,
    /// Sequences in the dynamic-batching flush that served this request.
    pub flushed_batch: usize,
    /// Time the request waited in the queue, in ms.
    pub wait_ms: f64,
    /// Simulated accelerator cost of this request, when served by the
    /// `sim` backend.
    pub sim: Option<BatchCost>,
    /// Whether the response was replayed from the server's idempotent
    /// response cache instead of running the engine. Defaults to `false`
    /// on frames from servers predating the cache.
    pub cached: bool,
}

/// One registered model as decoded from a `list_models` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientModelInfo {
    /// Registry name the model is addressed by.
    pub name: String,
    /// Task the model was trained for (e.g. `sst2`).
    pub task: String,
    /// Backend kind serving the model (`int` or `sim`).
    pub backend: String,
    /// Precision summary (e.g. `w4/a8`).
    pub precision: String,
    /// Per-layer weight bit-width summary (e.g. `w4[0-5]/w8[6-11]`).
    pub bits: String,
    /// Number of output classes.
    pub num_classes: usize,
    /// Worker threads serving the model's batches.
    pub threads: usize,
    /// GEMM micro-kernel serving the engine (`avx2`, `sse2`, `neon`,
    /// `scalar`).
    pub kernel: String,
    /// Bytes of materialized weight panels plus shared float tensors
    /// resident for this model.
    pub resident_bytes: usize,
    /// Float tensors this model shares with previously loaded models via
    /// the registry's content-hash dedup cache.
    pub shared_tensors: usize,
}

/// One histogram's summary as decoded from a `stats` frame. Values come
/// from the server's log2-bucket histograms: `count`/`sum`/`min`/`max` are
/// exact, the percentiles are bucket-interpolated estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramStats {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// A decoded `stats` snapshot: every metric by full name
/// (`model.<name>.request_us`, `model.<name>.queue.shed`,
/// `server.connections`, ...).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsReport {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges.
    pub gauges: BTreeMap<String, i64>,
    /// Latency/size distributions.
    pub histograms: BTreeMap<String, HistogramStats>,
    /// String-valued annotations (e.g. `model.<name>.engine.kernel`).
    pub labels: BTreeMap<String, String>,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Ids of pipelined requests whose responses have not been drained
    /// yet, in submission (= response) order.
    pending: VecDeque<String>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
            pending: VecDeque::new(),
        })
    }

    fn send_frame(&mut self, frame: &Json) -> Result<()> {
        let mut payload = frame.render();
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Json> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        crate::json::parse(line.trim()).map_err(ServeError::Protocol)
    }

    fn roundtrip(&mut self, frame: &Json) -> Result<Json> {
        if !self.pending.is_empty() {
            return Err(ServeError::Protocol(format!(
                "{} pipelined request(s) in flight: drain() before issuing \
                 a blocking round trip (responses arrive in order)",
                self.pending.len()
            )));
        }
        self.send_frame(frame)?;
        let value = self.read_frame()?;
        if let Some(error) = value.get("error") {
            return Err(decode_error(error));
        }
        Ok(value)
    }

    /// Classifies single sentences on `model`.
    ///
    /// # Errors
    ///
    /// Surfaces server error frames (unknown model, engine errors) and
    /// socket failures.
    pub fn classify_texts(&mut self, model: &str, texts: &[&str]) -> Result<ClientResponse> {
        self.classify_texts_with_deadline(model, texts, None)
    }

    /// Classifies single sentences on `model` with an optional queue-wait
    /// budget: if the request is still queued server-side when
    /// `deadline_ms` elapses, the server answers
    /// [`ServeError::DeadlineExceeded`] instead of serving it.
    ///
    /// # Errors
    ///
    /// As for [`Client::classify_texts`], plus
    /// [`ServeError::DeadlineExceeded`] for an expired request.
    pub fn classify_texts_with_deadline(
        &mut self,
        model: &str,
        texts: &[&str],
        deadline_ms: Option<u64>,
    ) -> Result<ClientResponse> {
        self.classify_texts_request(model, texts, deadline_ms, false)
    }

    /// As [`Client::classify_texts`], with `no_cache: true` set on the
    /// request frame so the server bypasses its response cache entirely —
    /// no replay, no coalescing with identical in-flight requests.
    ///
    /// # Errors
    ///
    /// As for [`Client::classify_texts`].
    pub fn classify_texts_uncached(
        &mut self,
        model: &str,
        texts: &[&str],
    ) -> Result<ClientResponse> {
        self.classify_texts_request(model, texts, None, true)
    }

    fn classify_texts_request(
        &mut self,
        model: &str,
        texts: &[&str],
        deadline_ms: Option<u64>,
        no_cache: bool,
    ) -> Result<ClientResponse> {
        let mut fields = vec![
            ("id", Json::str(self.fresh_id())),
            ("model", Json::str(model)),
            (
                "texts",
                Json::Arr(texts.iter().map(|t| Json::str(*t)).collect()),
            ),
        ];
        if let Some(ms) = deadline_ms {
            fields.push(("deadline_ms", Json::Num(ms as f64)));
        }
        if no_cache {
            fields.push(("no_cache", Json::Bool(true)));
        }
        let value = self.roundtrip(&Json::obj(fields))?;
        decode_response(&value)
    }

    /// Classifies (premise, hypothesis) pairs on `model`.
    ///
    /// # Errors
    ///
    /// As for [`Client::classify_texts`].
    pub fn classify_pairs(
        &mut self,
        model: &str,
        pairs: &[(&str, &str)],
    ) -> Result<ClientResponse> {
        let frame = Json::obj([
            ("id", Json::str(self.fresh_id())),
            ("model", Json::str(model)),
            (
                "pairs",
                Json::Arr(
                    pairs
                        .iter()
                        .map(|(a, b)| Json::Arr(vec![Json::str(*a), Json::str(*b)]))
                        .collect(),
                ),
            ),
        ]);
        let value = self.roundtrip(&frame)?;
        decode_response(&value)
    }

    /// Pipelines one single-sentence classification request: the frame is
    /// written immediately with a generated id, no response is awaited, and
    /// the id is returned so the caller can match it against
    /// [`Client::drain`]'s results. Any number of submissions may be in
    /// flight on one connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from writing the frame.
    pub fn submit(&mut self, model: &str, texts: &[&str]) -> Result<String> {
        let id = self.fresh_id();
        self.submit_as(&id, model, texts)?;
        Ok(id)
    }

    /// As [`Client::submit`], with a caller-chosen request id (echoed
    /// verbatim in the response frame).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from writing the frame.
    pub fn submit_as(&mut self, id: &str, model: &str, texts: &[&str]) -> Result<()> {
        let frame = Json::obj([
            ("id", Json::str(id)),
            ("model", Json::str(model)),
            (
                "texts",
                Json::Arr(texts.iter().map(|t| Json::str(*t)).collect()),
            ),
        ]);
        self.send_frame(&frame)?;
        self.pending.push_back(id.to_string());
        Ok(())
    }

    /// Pipelines one sentence-pair classification request (see
    /// [`Client::submit`]).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from writing the frame.
    pub fn submit_pairs(&mut self, model: &str, pairs: &[(&str, &str)]) -> Result<String> {
        let id = self.fresh_id();
        let frame = Json::obj([
            ("id", Json::str(&id)),
            ("model", Json::str(model)),
            (
                "pairs",
                Json::Arr(
                    pairs
                        .iter()
                        .map(|(a, b)| Json::Arr(vec![Json::str(*a), Json::str(*b)]))
                        .collect(),
                ),
            ),
        ]);
        self.send_frame(&frame)?;
        self.pending.push_back(id.clone());
        Ok(id)
    }

    /// Number of pipelined requests whose responses are still unread.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Collects the responses of every pipelined request, in submission
    /// order, as `(id, per-request result)` pairs. A request that failed
    /// server-side (unknown model, engine error, expired deadline) yields
    /// its error at its own position without aborting the drain.
    ///
    /// # Errors
    ///
    /// Fails wholesale only on transport problems (socket errors, a closed
    /// connection, malformed frames) or if a response's echoed id does not
    /// match the expected submission — both mean the connection state is no
    /// longer trustworthy.
    pub fn drain(&mut self) -> Result<Vec<(String, Result<ClientResponse>)>> {
        let mut responses = Vec::with_capacity(self.pending.len());
        while let Some(expected) = self.pending.pop_front() {
            let value = match self.read_frame() {
                Ok(value) => value,
                Err(e) => {
                    // The connection is broken; leave the id unpopped state
                    // consistent (already popped — push back) and surface.
                    self.pending.push_front(expected);
                    return Err(e);
                }
            };
            if let Some(echoed) = value.get("id").and_then(Json::as_str) {
                if echoed != expected {
                    return Err(ServeError::Protocol(format!(
                        "pipelined response id `{echoed}` does not match the \
                         expected submission `{expected}`"
                    )));
                }
            }
            let outcome = match value.get("error") {
                Some(error) => Err(decode_error(error)),
                None => decode_response(&value),
            };
            responses.push((expected, outcome));
        }
        Ok(responses)
    }

    /// Lists the server's registered models, one [`ClientModelInfo`] per
    /// registry entry.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn list_models(&mut self) -> Result<Vec<ClientModelInfo>> {
        let value = self.roundtrip(&Json::obj([("cmd", Json::str("list_models"))]))?;
        let models = value
            .get("models")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::Protocol("response lacks `models`".to_string()))?;
        models
            .iter()
            .map(|m| {
                let field = |key: &str| -> Result<String> {
                    m.get(key)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| ServeError::Protocol(format!("model entry lacks `{key}`")))
                };
                Ok(ClientModelInfo {
                    name: field("name")?,
                    task: field("task")?,
                    backend: field("backend")?,
                    precision: field("precision")?,
                    bits: field("bits")?,
                    num_classes: num_field(m, "num_classes")? as usize,
                    threads: num_field(m, "threads")? as usize,
                    kernel: field("kernel")?,
                    resident_bytes: num_field(m, "resident_bytes")? as usize,
                    shared_tensors: num_field(m, "shared_tensors")? as usize,
                })
            })
            .collect()
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn ping(&mut self) -> Result<()> {
        let value = self.roundtrip(&Json::obj([("cmd", Json::str("ping"))]))?;
        match value.get("pong") {
            Some(Json::Bool(true)) => Ok(()),
            _ => Err(ServeError::Protocol("expected pong".to_string())),
        }
    }

    /// Fetches the server's live telemetry snapshot: per-model latency
    /// percentiles and queue metrics plus server-wide totals.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn stats(&mut self) -> Result<StatsReport> {
        let value = self.roundtrip(&Json::obj([("cmd", Json::str("stats"))]))?;
        decode_stats(&value)
    }

    /// Asks the server to shut down gracefully; returns once the server
    /// acknowledged (the drain happens after the ack).
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol errors.
    pub fn shutdown_server(&mut self) -> Result<()> {
        let value = self.roundtrip(&Json::obj([("cmd", Json::str("shutdown"))]))?;
        match value.get("shutting_down") {
            Some(Json::Bool(true)) => Ok(()),
            _ => Err(ServeError::Protocol("expected shutdown ack".to_string())),
        }
    }

    fn fresh_id(&mut self) -> String {
        self.next_id += 1;
        format!("c{}", self.next_id)
    }
}

fn decode_error(error: &Json) -> ServeError {
    let kind = error.get("kind").and_then(Json::as_str).unwrap_or("");
    let message = error
        .get("message")
        .and_then(Json::as_str)
        .unwrap_or("server error")
        .to_string();
    match kind {
        "unknown_model" => {
            // The server renders `unknown model `name``; recover the bare
            // name so the client-side variant carries (and displays) the
            // model, not the whole sentence.
            let name = message
                .split('`')
                .nth(1)
                .unwrap_or(message.as_str())
                .to_string();
            ServeError::UnknownModel(name)
        }
        "shutting_down" => ServeError::ShuttingDown,
        "deadline_exceeded" => ServeError::DeadlineExceeded,
        "server_overloaded" => ServeError::ServerOverloaded,
        "internal_error" => ServeError::Internal(message),
        _ => ServeError::Protocol(format!("server reported `{kind}`: {message}")),
    }
}

fn num_field(value: &Json, key: &str) -> Result<f64> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ServeError::Protocol(format!("response lacks numeric `{key}`")))
}

fn f32_array(value: &Json, key: &str) -> Result<Vec<f32>> {
    let arr = value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol(format!("result lacks `{key}` array")))?;
    arr.iter()
        .map(|x| {
            x.as_f64()
                .map(|v| v as f32)
                .ok_or_else(|| ServeError::Protocol(format!("`{key}` entries must be numbers")))
        })
        .collect()
}

fn decode_response(value: &Json) -> Result<ClientResponse> {
    let str_field = |key: &str| -> Result<String> {
        value
            .get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol(format!("response lacks `{key}`")))
    };
    let results = value
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol("response lacks `results`".to_string()))?
        .iter()
        .map(|item| {
            Ok(ClientResult {
                prediction: num_field(item, "prediction")? as usize,
                label: item
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                scores: f32_array(item, "scores")?,
                logits: f32_array(item, "logits")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let batch = value
        .get("batch")
        .ok_or_else(|| ServeError::Protocol("response lacks `batch`".to_string()))?;
    let sim = match value.get("sim") {
        Some(sim) => Some(BatchCost {
            total_cycles: num_field(sim, "total_cycles")? as u64,
            latency_ms: num_field(sim, "latency_ms")?,
        }),
        None => None,
    };
    Ok(ClientResponse {
        id: str_field("id")?,
        model: str_field("model")?,
        results,
        latency_ms: num_field(value, "latency_ms")?,
        flushed_batch: num_field(batch, "flushed")? as usize,
        wait_ms: num_field(batch, "wait_ms")?,
        sim,
        cached: matches!(value.get("cached"), Some(Json::Bool(true))),
    })
}

fn decode_stats(value: &Json) -> Result<StatsReport> {
    let stats = value
        .get("stats")
        .ok_or_else(|| ServeError::Protocol("response lacks `stats`".to_string()))?;
    let mut report = StatsReport::default();
    if let Some(counters) = stats.get("counters").and_then(Json::as_obj) {
        for (name, raw) in counters {
            let count = raw.as_f64().ok_or_else(|| {
                ServeError::Protocol(format!("counter `{name}` must be a number"))
            })?;
            report.counters.insert(name.clone(), count as u64);
        }
    }
    if let Some(gauges) = stats.get("gauges").and_then(Json::as_obj) {
        for (name, raw) in gauges {
            let level = raw
                .as_f64()
                .ok_or_else(|| ServeError::Protocol(format!("gauge `{name}` must be a number")))?;
            report.gauges.insert(name.clone(), level as i64);
        }
    }
    if let Some(histograms) = stats.get("histograms").and_then(Json::as_obj) {
        for (name, hist) in histograms {
            report.histograms.insert(
                name.clone(),
                HistogramStats {
                    count: num_field(hist, "count")? as u64,
                    sum: num_field(hist, "sum")? as u64,
                    min: num_field(hist, "min")? as u64,
                    max: num_field(hist, "max")? as u64,
                    mean: num_field(hist, "mean")?,
                    p50: num_field(hist, "p50")?,
                    p95: num_field(hist, "p95")?,
                    p99: num_field(hist, "p99")?,
                },
            );
        }
    }
    // Absent on frames from servers predating the labels section.
    if let Some(labels) = stats.get("labels").and_then(Json::as_obj) {
        for (name, raw) in labels {
            let text = raw
                .as_str()
                .ok_or_else(|| ServeError::Protocol(format!("label `{name}` must be a string")))?;
            report.labels.insert(name.clone(), text.to_string());
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_a_response_frame() {
        let line = concat!(
            "{\"id\":\"c1\",\"model\":\"sst2\",",
            "\"results\":[{\"prediction\":1,\"label\":\"positive\",",
            "\"scores\":[0.25,0.75],\"logits\":[-1,1]}],",
            "\"latency_ms\":1.5,",
            "\"batch\":{\"flushed\":8,\"wait_ms\":0.4},",
            "\"sim\":{\"total_cycles\":99,\"latency_ms\":0.2}}"
        );
        let response = decode_response(&crate::json::parse(line).unwrap()).unwrap();
        assert_eq!(response.id, "c1");
        assert_eq!(response.results.len(), 1);
        assert_eq!(response.results[0].prediction, 1);
        assert_eq!(response.results[0].label, "positive");
        assert_eq!(response.results[0].scores, vec![0.25, 0.75]);
        assert_eq!(response.flushed_batch, 8);
        assert_eq!(response.sim.unwrap().total_cycles, 99);
        // A frame without `cached` (pre-cache server) defaults to false.
        assert!(!response.cached);
        let cached = line.replace("\"latency_ms\":1.5,", "\"latency_ms\":1.5,\"cached\":true,");
        let response = decode_response(&crate::json::parse(&cached).unwrap()).unwrap();
        assert!(response.cached);
    }

    #[test]
    fn decodes_error_frames_by_kind() {
        let frame = crate::json::parse("{\"kind\":\"unknown_model\",\"message\":\"m\"}").unwrap();
        assert_eq!(decode_error(&frame).kind(), "unknown_model");
        // The bare model name is recovered from the server's sentence, so
        // Display does not double-wrap it.
        let frame =
            crate::json::parse("{\"kind\":\"unknown_model\",\"message\":\"unknown model `foo`\"}")
                .unwrap();
        let err = decode_error(&frame);
        assert!(matches!(&err, ServeError::UnknownModel(name) if name == "foo"));
        assert_eq!(err.to_string(), "unknown model `foo`");
        let shutting = decode_error(
            &crate::json::parse("{\"kind\":\"shutting_down\",\"message\":\"x\"}").unwrap(),
        );
        assert!(matches!(shutting, ServeError::ShuttingDown));
        let other = decode_error(
            &crate::json::parse("{\"kind\":\"runtime\",\"message\":\"boom\"}").unwrap(),
        );
        assert!(other.to_string().contains("boom"));
    }

    #[test]
    fn decodes_a_stats_frame() {
        let line = concat!(
            "{\"ok\":true,\"stats\":{",
            "\"counters\":{\"model.sst2.queue.shed\":4,\"server.requests\":9},",
            "\"gauges\":{\"model.sst2.queue.depth\":0},",
            "\"histograms\":{\"model.sst2.request_us\":{",
            "\"count\":3,\"sum\":700,\"min\":100,\"max\":400,",
            "\"mean\":233.3,\"p50\":200,\"p95\":380,\"p99\":400,",
            "\"buckets\":[[64,127,1],[128,255,1],[256,511,1]]}},",
            "\"labels\":{\"model.sst2.engine.kernel\":\"avx2\"}}}"
        );
        let report = decode_stats(&crate::json::parse(line).unwrap()).unwrap();
        assert_eq!(report.counters.get("model.sst2.queue.shed"), Some(&4));
        assert_eq!(report.counters.get("server.requests"), Some(&9));
        assert_eq!(report.gauges.get("model.sst2.queue.depth"), Some(&0));
        let hist = report.histograms.get("model.sst2.request_us").unwrap();
        assert_eq!(hist.count, 3);
        assert_eq!(hist.min, 100);
        assert_eq!(hist.max, 400);
        assert!(hist.p50 <= hist.p95 && hist.p95 <= hist.p99);
        assert_eq!(
            report
                .labels
                .get("model.sst2.engine.kernel")
                .map(String::as_str),
            Some("avx2")
        );
        // An empty-section frame still decodes — including frames from
        // servers predating the `labels` section.
        let empty = decode_stats(
            &crate::json::parse(
                "{\"ok\":true,\"stats\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(empty.counters.is_empty() && empty.histograms.is_empty());
    }

    #[test]
    fn decodes_overload_error_frames() {
        let frame = crate::json::parse(
            "{\"kind\":\"server_overloaded\",\"message\":\"server overloaded\"}",
        )
        .unwrap();
        assert!(matches!(decode_error(&frame), ServeError::ServerOverloaded));
    }

    #[test]
    fn incomplete_responses_are_protocol_errors() {
        for line in [
            "{}",
            "{\"id\":\"a\",\"model\":\"m\"}",
            "{\"id\":\"a\",\"model\":\"m\",\"results\":[],\"latency_ms\":1}",
        ] {
            let value = crate::json::parse(line).unwrap();
            assert!(decode_response(&value).is_err(), "{line}");
        }
    }
}
