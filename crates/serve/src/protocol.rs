//! The line-delimited-JSON wire protocol: request parsing and response
//! framing.
//!
//! Every frame is one JSON object on one line (see `crates/serve/README.md`
//! for the full specification). This module is pure — parsing and
//! rendering only — so the protocol is testable without sockets.

use crate::json::Json;
use crate::queue::TicketResponse;
use crate::registry::ModelInfo;
use crate::{Result, ServeError};
use fqbert_telemetry::Snapshot;
use std::collections::BTreeMap;

/// Inputs of one classification request.
///
/// `Hash` + `Eq` let the response cache key directly on the submitted
/// payload ([`crate::cache::CacheKey`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestInputs {
    /// Single sentences (e.g. SST-2).
    Texts(Vec<String>),
    /// (premise, hypothesis) pairs (e.g. MNLI).
    Pairs(Vec<(String, String)>),
}

impl RequestInputs {
    /// Number of sequences in the request.
    pub fn len(&self) -> usize {
        match self {
            RequestInputs::Texts(texts) => texts.len(),
            RequestInputs::Pairs(pairs) => pairs.len(),
        }
    }

    /// Whether the request carries no sequences.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One classification request addressed to a registered model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen request id, echoed back in the response.
    pub id: String,
    /// Routing name of the target model.
    pub model: String,
    /// The sequences to classify.
    pub inputs: RequestInputs,
    /// Optional queue-wait budget in milliseconds: if the request is still
    /// waiting in the batching queue when it elapses, the server answers
    /// with a `deadline_exceeded` error frame instead of serving it.
    pub deadline_ms: Option<u64>,
    /// `true` bypasses the server's response cache entirely: the request
    /// neither replays a cached answer nor coalesces with identical
    /// in-flight requests, and its response is not stored. Defaults to
    /// `false`.
    pub no_cache: bool,
}

/// Every frame a client may send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Classify sequences on a named model.
    Classify(Request),
    /// List the registered models.
    ListModels,
    /// Liveness check.
    Ping,
    /// A live telemetry snapshot: per-model latency percentiles, queue
    /// counters and histograms, server totals.
    Stats,
    /// Ask the server to shut down gracefully (drain queues, then exit).
    Shutdown,
}

/// Parses one request line into a [`Command`].
///
/// # Errors
///
/// Returns [`ServeError::Protocol`] with a human-readable reason for
/// malformed JSON, unknown commands, or missing/ill-typed fields.
pub fn parse_command(line: &str) -> Result<Command> {
    let value = crate::json::parse(line).map_err(ServeError::Protocol)?;
    if let Some(cmd) = value.get("cmd") {
        return match cmd.as_str() {
            Some("list_models") => Ok(Command::ListModels),
            Some("ping") => Ok(Command::Ping),
            Some("stats") => Ok(Command::Stats),
            Some("shutdown") => Ok(Command::Shutdown),
            Some(other) => Err(ServeError::Protocol(format!(
                "unknown command `{other}` (expected `list_models`, `ping`, `stats` or `shutdown`)"
            ))),
            None => Err(ServeError::Protocol("`cmd` must be a string".to_string())),
        };
    }
    let id = match value.get("id") {
        Some(id) => id
            .as_str()
            .ok_or_else(|| ServeError::Protocol("`id` must be a string".to_string()))?
            .to_string(),
        None => String::new(),
    };
    let model = value
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::Protocol("request needs a string `model` field".to_string()))?
        .to_string();
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(raw) => {
            let ms = raw
                .as_f64()
                .filter(|ms| ms.is_finite() && *ms > 0.0)
                .ok_or_else(|| {
                    ServeError::Protocol(
                        "`deadline_ms` must be a positive number of milliseconds".to_string(),
                    )
                })?;
            // Ceil, not round: a fractional budget below 0.5 ms must stay a
            // (1 ms) budget rather than collapse to an instantly-expired 0.
            Some(ms.ceil() as u64)
        }
    };
    let no_cache = match value.get("no_cache") {
        None => false,
        Some(Json::Bool(flag)) => *flag,
        Some(_) => {
            return Err(ServeError::Protocol(
                "`no_cache` must be a boolean".to_string(),
            ))
        }
    };
    let inputs = match (value.get("texts"), value.get("pairs")) {
        (Some(_), Some(_)) => {
            return Err(ServeError::Protocol(
                "request must carry either `texts` or `pairs`, not both".to_string(),
            ))
        }
        (Some(texts), None) => RequestInputs::Texts(parse_string_array(texts, "texts")?),
        (None, Some(pairs)) => RequestInputs::Pairs(parse_pair_array(pairs)?),
        (None, None) => {
            return Err(ServeError::Protocol(
                "request needs a `texts` or `pairs` array".to_string(),
            ))
        }
    };
    Ok(Command::Classify(Request {
        id,
        model,
        inputs,
        deadline_ms,
        no_cache,
    }))
}

fn parse_string_array(value: &Json, field: &str) -> Result<Vec<String>> {
    let items = value
        .as_arr()
        .ok_or_else(|| ServeError::Protocol(format!("`{field}` must be an array")))?;
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ServeError::Protocol(format!("`{field}` entries must be strings")))
        })
        .collect()
}

fn parse_pair_array(value: &Json) -> Result<Vec<(String, String)>> {
    let items = value
        .as_arr()
        .ok_or_else(|| ServeError::Protocol("`pairs` must be an array".to_string()))?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                ServeError::Protocol("`pairs` entries must be two-element arrays".to_string())
            })?;
            let first = pair.first().and_then(Json::as_str);
            let second = pair.get(1).and_then(Json::as_str);
            match (first, second) {
                (Some(a), Some(b)) => Ok((a.to_string(), b.to_string())),
                _ => Err(ServeError::Protocol(
                    "`pairs` entries must hold two strings".to_string(),
                )),
            }
        })
        .collect()
}

/// Renders the success response for one served request.
///
/// `latency_ms` is the server-side wall time from frame receipt to
/// response framing; the queue's own wait and the flush batch size are
/// reported under `batch`, and the simulated backend's cycle-model cost
/// (for exactly this request's sequences) under `sim`.
pub fn response_frame(id: &str, model: &str, response: &TicketResponse, latency_ms: f64) -> Json {
    let results = response
        .results
        .iter()
        .map(|scored| {
            Json::obj([
                ("prediction", Json::Num(scored.prediction as f64)),
                ("label", Json::str(scored.label)),
                ("scores", Json::num_array(&scored.scores)),
                ("logits", Json::num_array(&scored.logits)),
            ])
        })
        .collect();
    let mut frame = vec![
        ("id", Json::str(id)),
        ("model", Json::str(model)),
        ("results", Json::Arr(results)),
        ("latency_ms", Json::Num(latency_ms)),
        ("cached", Json::Bool(response.cached)),
        (
            "batch",
            Json::obj([
                ("flushed", Json::Num(response.flushed_batch as f64)),
                ("wait_ms", Json::Num(response.wait.as_secs_f64() * 1e3)),
            ]),
        ),
    ];
    if let Some(cost) = response.cost {
        frame.push((
            "sim",
            Json::obj([
                ("total_cycles", Json::Num(cost.total_cycles as f64)),
                ("latency_ms", Json::Num(cost.latency_ms)),
            ]),
        ));
    }
    Json::obj(frame)
}

/// Renders an error frame; `id` is echoed when the failing request carried
/// one.
pub fn error_frame(id: Option<&str>, err: &ServeError) -> Json {
    let mut frame = Vec::new();
    if let Some(id) = id {
        frame.push(("id", Json::str(id)));
    }
    frame.push((
        "error",
        Json::obj([
            ("kind", Json::str(err.kind())),
            ("message", Json::str(err.to_string())),
        ]),
    ));
    Json::obj(frame)
}

/// Renders the `list_models` response.
pub fn models_frame(infos: &[ModelInfo]) -> Json {
    Json::obj([(
        "models",
        Json::Arr(
            infos
                .iter()
                .map(|info| {
                    Json::obj([
                        ("name", Json::str(&info.name)),
                        ("task", Json::str(&info.task)),
                        ("backend", Json::str(&info.backend)),
                        ("precision", Json::str(&info.precision)),
                        ("bits", Json::str(&info.bits)),
                        ("num_classes", Json::Num(info.num_classes as f64)),
                        ("threads", Json::Num(info.threads as f64)),
                        ("kernel", Json::str(&info.kernel)),
                        ("resident_bytes", Json::Num(info.resident_bytes as f64)),
                        ("shared_tensors", Json::Num(info.shared_tensors as f64)),
                    ])
                })
                .collect(),
        ),
    )])
}

/// Renders the `stats` response: the merged telemetry snapshot as
///
/// ```json
/// {"ok":true,"stats":{
///   "counters":{"model.sst2.queue.requests":12,...},
///   "gauges":{"model.sst2.queue.depth":0,...},
///   "histograms":{"model.sst2.request_us":{
///     "count":12,"sum":..., "min":..., "max":...,
///     "mean":..., "p50":..., "p95":..., "p99":...,
///     "buckets":[[lower,upper,count],...]},...},
///   "labels":{"model.sst2.engine.kernel":"avx2",...}}}
/// ```
///
/// Metric names are dynamic (they embed model names), so the maps are
/// built as [`Json::Obj`] trees directly. Counter/gauge values ride as
/// JSON numbers (`f64`): exact up to 2^53, plenty for live monitoring.
pub fn stats_frame(snapshot: &Snapshot) -> Json {
    let counters: BTreeMap<String, Json> = snapshot
        .counters
        .iter()
        .map(|(name, value)| (name.clone(), Json::Num(*value as f64)))
        .collect();
    let gauges: BTreeMap<String, Json> = snapshot
        .gauges
        .iter()
        .map(|(name, value)| (name.clone(), Json::Num(*value as f64)))
        .collect();
    let histograms: BTreeMap<String, Json> = snapshot
        .histograms
        .iter()
        .map(|(name, view)| {
            let buckets = view
                .buckets
                .iter()
                .map(|bucket| {
                    Json::Arr(vec![
                        Json::Num(bucket.lower as f64),
                        Json::Num(bucket.upper as f64),
                        Json::Num(bucket.count as f64),
                    ])
                })
                .collect();
            let body = Json::obj([
                ("count", Json::Num(view.count as f64)),
                ("sum", Json::Num(view.sum as f64)),
                ("min", Json::Num(view.min as f64)),
                ("max", Json::Num(view.max as f64)),
                ("mean", Json::Num(view.mean())),
                ("p50", Json::Num(view.p50())),
                ("p95", Json::Num(view.p95())),
                ("p99", Json::Num(view.p99())),
                ("buckets", Json::Arr(buckets)),
            ]);
            (name.clone(), body)
        })
        .collect();
    let labels: BTreeMap<String, Json> = snapshot
        .labels
        .iter()
        .map(|(name, text)| (name.clone(), Json::str(text)))
        .collect();
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "stats",
            Json::Obj(
                [
                    ("counters".to_string(), Json::Obj(counters)),
                    ("gauges".to_string(), Json::Obj(gauges)),
                    ("histograms".to_string(), Json::Obj(histograms)),
                    ("labels".to_string(), Json::Obj(labels)),
                ]
                .into_iter()
                .collect(),
            ),
        ),
    ])
}

/// Renders the `ping` acknowledgement.
pub fn pong_frame() -> Json {
    Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))])
}

/// Renders the `shutdown` acknowledgement (sent before the drain starts).
pub fn shutdown_frame() -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("shutting_down", Json::Bool(true)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_text_and_pair_requests() {
        let cmd = parse_command(r#"{"id":"r1","model":"sst2","texts":["good","bad"]}"#).unwrap();
        match cmd {
            Command::Classify(req) => {
                assert_eq!(req.id, "r1");
                assert_eq!(req.model, "sst2");
                assert_eq!(
                    req.inputs,
                    RequestInputs::Texts(vec!["good".into(), "bad".into()])
                );
                assert_eq!(req.inputs.len(), 2);
            }
            other => panic!("expected classify, got {other:?}"),
        }
        let cmd =
            parse_command(r#"{"model":"mnli","pairs":[["a premise","a hypothesis"]]}"#).unwrap();
        match cmd {
            Command::Classify(req) => {
                assert_eq!(req.id, "");
                assert_eq!(
                    req.inputs,
                    RequestInputs::Pairs(vec![("a premise".into(), "a hypothesis".into())])
                );
            }
            other => panic!("expected classify, got {other:?}"),
        }
    }

    #[test]
    fn parses_and_validates_deadlines() {
        let cmd = parse_command(r#"{"model":"sst2","texts":["x"],"deadline_ms":150}"#).unwrap();
        match cmd {
            Command::Classify(req) => assert_eq!(req.deadline_ms, Some(150)),
            other => panic!("expected classify, got {other:?}"),
        }
        let cmd = parse_command(r#"{"model":"sst2","texts":["x"]}"#).unwrap();
        match cmd {
            Command::Classify(req) => assert_eq!(req.deadline_ms, None),
            other => panic!("expected classify, got {other:?}"),
        }
        for bad in [
            r#"{"model":"m","texts":["x"],"deadline_ms":"soon"}"#,
            r#"{"model":"m","texts":["x"],"deadline_ms":0}"#,
            r#"{"model":"m","texts":["x"],"deadline_ms":-5}"#,
        ] {
            let err = parse_command(bad).expect_err(bad);
            assert!(err.to_string().contains("deadline_ms"), "{err}");
        }
    }

    #[test]
    fn parses_and_validates_no_cache() {
        let cmd = parse_command(r#"{"model":"sst2","texts":["x"],"no_cache":true}"#).unwrap();
        match cmd {
            Command::Classify(req) => assert!(req.no_cache),
            other => panic!("expected classify, got {other:?}"),
        }
        let cmd = parse_command(r#"{"model":"sst2","texts":["x"],"no_cache":false}"#).unwrap();
        match cmd {
            Command::Classify(req) => assert!(!req.no_cache),
            other => panic!("expected classify, got {other:?}"),
        }
        // Absent defaults to false.
        let cmd = parse_command(r#"{"model":"sst2","texts":["x"]}"#).unwrap();
        match cmd {
            Command::Classify(req) => assert!(!req.no_cache),
            other => panic!("expected classify, got {other:?}"),
        }
        for bad in [
            r#"{"model":"m","texts":["x"],"no_cache":"yes"}"#,
            r#"{"model":"m","texts":["x"],"no_cache":1}"#,
        ] {
            let err = parse_command(bad).expect_err(bad);
            assert!(err.to_string().contains("no_cache"), "{err}");
        }
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(
            parse_command(r#"{"cmd":"list_models"}"#).unwrap(),
            Command::ListModels
        );
        assert_eq!(parse_command(r#"{"cmd":"ping"}"#).unwrap(), Command::Ping);
        assert_eq!(parse_command(r#"{"cmd":"stats"}"#).unwrap(), Command::Stats);
        assert_eq!(
            parse_command(r#"{"cmd":"shutdown"}"#).unwrap(),
            Command::Shutdown
        );
    }

    #[test]
    fn stats_frames_render_and_reparse() {
        let registry = fqbert_telemetry::Registry::new();
        registry.counter("model.sst2.queue.requests").add(3);
        registry.gauge("model.sst2.queue.depth").set(2);
        for us in [100u64, 200, 400] {
            registry.histogram("model.sst2.request_us").record(us);
        }
        registry.label("model.sst2.engine.kernel").set("avx2");
        let frame = stats_frame(&registry.snapshot());
        let line = frame.render();
        assert!(!line.contains('\n'), "stats frame must be one line");
        let parsed = crate::json::parse(&line).expect("stats frame must re-parse");
        assert_eq!(
            parsed.get("ok").and_then(|v| match v {
                Json::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true)
        );
        let stats = parsed.get("stats").expect("stats object");
        assert_eq!(
            stats
                .get("counters")
                .and_then(|c| c.get("model.sst2.queue.requests"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            stats
                .get("gauges")
                .and_then(|g| g.get("model.sst2.queue.depth"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
        let hist = stats
            .get("histograms")
            .and_then(|h| h.get("model.sst2.request_us"))
            .expect("request_us histogram");
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(3.0));
        let p50 = hist.get("p50").and_then(Json::as_f64).expect("p50");
        let p99 = hist.get("p99").and_then(Json::as_f64).expect("p99");
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        assert!(hist.get("buckets").and_then(Json::as_arr).is_some());
        assert_eq!(
            stats
                .get("labels")
                .and_then(|l| l.get("model.sst2.engine.kernel"))
                .and_then(Json::as_str),
            Some("avx2")
        );
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "protocol error"),
            (r#"{"cmd":"reboot"}"#, "unknown command"),
            (r#"{"texts":["x"]}"#, "model"),
            (r#"{"model":"m"}"#, "`texts` or `pairs`"),
            (r#"{"model":"m","texts":["a"],"pairs":[]}"#, "not both"),
            (r#"{"model":"m","texts":[1]}"#, "strings"),
            (r#"{"model":"m","pairs":[["only-one"]]}"#, "two-element"),
            (r#"{"id":7,"model":"m","texts":[]}"#, "`id`"),
        ] {
            let err = parse_command(line).expect_err(line);
            assert!(
                err.to_string().contains(needle),
                "error for {line} should mention {needle}: {err}"
            );
        }
    }

    #[test]
    fn frames_render_as_single_lines() {
        let response = TicketResponse {
            results: vec![],
            cost: Some(fqbert_runtime::BatchCost {
                total_cycles: 42,
                latency_ms: 0.5,
            }),
            flushed_batch: 4,
            wait: std::time::Duration::from_micros(250),
            cached: false,
        };
        for frame in [
            response_frame("r1", "sst2", &response, 1.25),
            error_frame(Some("r2"), &ServeError::UnknownModel("x".into())),
            error_frame(None, &ServeError::ShuttingDown),
            models_frame(&[]),
            pong_frame(),
            shutdown_frame(),
        ] {
            let line = frame.render();
            assert!(!line.contains('\n'), "frame must be one line: {line}");
            assert!(crate::json::parse(&line).is_ok(), "frame must re-parse");
        }
        let rendered = response_frame("r1", "sst2", &response, 1.25).render();
        assert!(rendered.contains("\"sim\""));
        assert!(rendered.contains("\"total_cycles\":42"));
        assert!(rendered.contains("\"flushed\":4"));
        assert!(rendered.contains("\"cached\":false"));
        let cached = TicketResponse {
            cached: true,
            ..response
        };
        assert!(response_frame("r1", "sst2", &cached, 0.01)
            .render()
            .contains("\"cached\":true"));
    }
}
