//! Dynamic batching: per-model request queues flushed through one
//! `classify_scored` call.
//!
//! A [`BatchQueue`] owns one worker thread. Callers submit pre-encoded
//! examples and get a [`Ticket`] back; the worker collects in-flight
//! requests until either `max_batch` sequences are queued or the oldest
//! request has waited `max_delay`, then merges them into a single
//! [`EncodedBatch`] and runs one engine call for the whole window. Results
//! are split back per request and delivered through each ticket's channel.
//! A request may carry a deadline ([`BatchQueue::submit_with_deadline`]):
//! if it expires while the request is still queued, the request resolves to
//! [`ServeError::DeadlineExceeded`] instead of occupying a flush slot.
//!
//! Batched and one-at-a-time inference are bit-identical in every backend
//! (a property the runtime crate tests), so dynamic batching changes
//! throughput and latency but never a single logit bit.

use crate::{lock_clean, Result, ServeError};
use fqbert_nlp::Example;
use fqbert_runtime::{BatchCost, EncodedBatch, Engine, Scored};
use fqbert_telemetry::{Counter, Gauge, Histogram, Registry, Scope};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When a queue flushes: after `max_batch` sequences are waiting, or once
/// the oldest request has waited `max_delay`, whichever comes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as this many sequences are queued. A single request
    /// larger than `max_batch` flushes alone (requests are never split).
    pub max_batch: usize,
    /// Flush once the oldest queued request has waited this long.
    pub max_delay: Duration,
    /// Admission bound: a submission that would push the queue past this
    /// many queued sequences is shed immediately with
    /// [`ServeError::ServerOverloaded`] instead of growing the backlog
    /// (counted in [`QueueStats::shed`]). `usize::MAX` (the default) means
    /// unbounded. Requests are never split, so a bound below a request's
    /// own size rejects that request even on an empty queue — keep
    /// `max_queue` ≥ the largest request you accept (in practice a small
    /// multiple of `max_batch`).
    pub max_queue: usize,
}

impl BatchPolicy {
    /// Serve each request the moment it arrives (batch size 1) — the
    /// no-batching baseline the throughput bench compares against.
    pub fn immediate() -> Self {
        Self {
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_queue: usize::MAX,
        }
    }

    /// This policy with the admission bound set to `max_queue` sequences
    /// (`usize::MAX` = unbounded).
    pub fn bounded(self, max_queue: usize) -> Self {
        Self { max_queue, ..self }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
            max_queue: usize::MAX,
        }
    }
}

/// What a [`Ticket`] resolves to: the request's scored classifications
/// plus how the queue served it.
#[derive(Debug, Clone, PartialEq)]
pub struct TicketResponse {
    /// Scored classification of each submitted sequence, in input order.
    pub results: Vec<Scored>,
    /// Simulated accelerator cost of exactly this request's sequences, if
    /// the backend charges one.
    pub cost: Option<BatchCost>,
    /// Total sequences in the flush window this request was served in
    /// (≥ the request's own size when batching kicked in).
    pub flushed_batch: usize,
    /// Time the request spent queued before its flush started.
    pub wait: Duration,
    /// Whether this response was replayed from the serving layer's
    /// response cache instead of an engine flush. Always `false` on
    /// responses produced by the queue itself; the
    /// [`crate::ResponseCache`] sets it on LRU hits.
    pub cached: bool,
}

/// Pending-response handle returned by [`BatchQueue::submit`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<TicketResponse>>,
}

impl Ticket {
    /// Blocks until the request is served (or fails).
    ///
    /// # Errors
    ///
    /// Propagates engine errors for this request; returns
    /// [`ServeError::ShuttingDown`] if the queue stopped before serving it.
    pub fn wait(self) -> Result<TicketResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// in flight.
    pub fn try_wait(&self) -> Option<Result<TicketResponse>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Counters describing how a queue has batched its traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests served (including failed ones).
    pub requests: u64,
    /// Sequences classified.
    pub sequences: u64,
    /// Engine flushes performed.
    pub flushes: u64,
    /// Largest number of sequences merged into one flush.
    pub largest_flush: u64,
    /// Requests whose deadline expired before a flush could serve them.
    pub expired: u64,
    /// Requests shed at admission because the queue was at
    /// [`BatchPolicy::max_queue`]. Shed requests never enter the queue and
    /// are not counted in [`QueueStats::requests`].
    pub shed: u64,
    /// Times the worker thread died and was respawned by a submitter.
    pub restarts: u64,
}

impl QueueStats {
    /// Mean sequences per engine call — the batching win over serving each
    /// request alone.
    pub fn mean_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.sequences as f64 / self.flushes as f64
        }
    }
}

struct PendingRequest {
    examples: Vec<Example>,
    enqueued: Instant,
    /// Latest instant a flush may still start serving this request; past
    /// it the request resolves to [`ServeError::DeadlineExceeded`].
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<TicketResponse>>,
}

impl PendingRequest {
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

struct QueueState {
    pending: VecDeque<PendingRequest>,
    queued_sequences: usize,
    shutdown: bool,
}

/// Cached telemetry handles for one queue, named `<scope>.queue.*`.
/// Resolved once at queue start so the submit/flush paths never touch the
/// registry lock.
struct QueueMetrics {
    /// `queue.requests`: requests resolved by the worker (served, failed
    /// or expired — not shed).
    requests: Arc<Counter>,
    /// `queue.sequences`: sequences classified.
    sequences: Arc<Counter>,
    /// `queue.flushes`: merged engine calls performed.
    flushes: Arc<Counter>,
    /// `queue.largest_flush`: high-water sequences in one flush.
    largest_flush: Arc<Gauge>,
    /// `queue.expired`: requests whose deadline passed while queued.
    expired: Arc<Counter>,
    /// `queue.shed`: requests rejected at admission (`max_queue`).
    shed: Arc<Counter>,
    /// `queue.restarts`: worker threads respawned after a death.
    restarts: Arc<Counter>,
    /// `queue.depth`: sequences currently queued.
    depth: Arc<Gauge>,
    /// `queue.wait_us`: time from submission to flush start, per request.
    wait_us: Arc<Histogram>,
    /// `queue.flush_size`: sequences merged per flush.
    flush_size: Arc<Histogram>,
    /// `queue.flush_occupancy_pct`: flush size as a percentage of
    /// `max_batch` (can exceed 100 for an oversized single request).
    flush_occupancy_pct: Arc<Histogram>,
    /// `queue.flush_us`: wall-clock time of one whole flush, engine call
    /// plus result routing (and any single-request retries).
    flush_us: Arc<Histogram>,
}

impl QueueMetrics {
    fn new(scope: &Scope) -> Self {
        let queue = scope.child("queue");
        Self {
            requests: queue.counter("requests"),
            sequences: queue.counter("sequences"),
            flushes: queue.counter("flushes"),
            largest_flush: queue.gauge("largest_flush"),
            expired: queue.counter("expired"),
            shed: queue.counter("shed"),
            restarts: queue.counter("restarts"),
            depth: queue.gauge("depth"),
            wait_us: queue.histogram("wait_us"),
            flush_size: queue.histogram("flush_size"),
            flush_occupancy_pct: queue.histogram("flush_occupancy_pct"),
            flush_us: queue.histogram("flush_us"),
        }
    }
}

struct QueueInner {
    engine: Arc<Engine>,
    policy: BatchPolicy,
    state: Mutex<QueueState>,
    cond: Condvar,
    metrics: QueueMetrics,
    telemetry: Arc<Registry>,
}

/// A dynamic batching queue over one engine, with one worker thread.
pub struct BatchQueue {
    inner: Arc<QueueInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl BatchQueue {
    /// Starts the worker thread for `engine` under `policy`, recording
    /// telemetry into a private registry (`queue.*`).
    pub fn start(engine: Arc<Engine>, policy: BatchPolicy) -> Self {
        Self::start_scoped(engine, policy, &Scope::detached(""))
    }

    /// Starts the worker thread with telemetry registered under `scope`
    /// (metric names become `<scope>.queue.*`) — how a server pools several
    /// model queues into one registry.
    pub fn start_scoped(engine: Arc<Engine>, policy: BatchPolicy, scope: &Scope) -> Self {
        let inner = Arc::new(QueueInner {
            engine,
            policy: BatchPolicy {
                max_batch: policy.max_batch.max(1),
                max_delay: policy.max_delay,
                max_queue: policy.max_queue,
            },
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                queued_sequences: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            metrics: QueueMetrics::new(scope),
            telemetry: Arc::clone(scope.registry()),
        });
        // If the OS refuses a thread the queue starts in degraded mode:
        // submissions are served inline on the caller's thread (see
        // `ensure_worker`) instead of failing construction.
        let worker = spawn_worker(&inner).ok();
        Self {
            inner,
            worker: Mutex::new(worker),
        }
    }

    /// The engine this queue flushes into.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.inner.engine
    }

    /// The flush policy.
    pub fn policy(&self) -> BatchPolicy {
        self.inner.policy
    }

    /// The telemetry registry this queue records into: counters mirrored by
    /// [`BatchQueue::stats`] plus `queue.depth`, `queue.wait_us`,
    /// `queue.flush_size`, `queue.flush_occupancy_pct` and `queue.flush_us`
    /// distributions.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.inner.telemetry
    }

    /// Enqueues one request (any number of pre-encoded sequences) and
    /// returns its [`Ticket`]. Requests submitted after
    /// [`BatchQueue::shutdown`] resolve immediately to
    /// [`ServeError::ShuttingDown`]; requests already queued at shutdown
    /// are drained, not dropped.
    pub fn submit(&self, examples: Vec<Example>) -> Ticket {
        self.submit_with_deadline(examples, None)
    }

    /// Enqueues one request with an optional deadline, counted from
    /// submission. A request whose deadline passes before the worker starts
    /// a flush over it resolves to [`ServeError::DeadlineExceeded`] without
    /// occupying a slot in that flush window — and promptly while the
    /// worker is waiting: it wakes at the earliest pending deadline, so
    /// the error arrives at the deadline rather than at the next window
    /// close (a worker busy inside an engine flush delivers it when that
    /// flush returns). A flush that already started runs to completion
    /// (the deadline bounds queue wait, not engine time).
    pub fn submit_with_deadline(
        &self,
        examples: Vec<Example>,
        deadline: Option<Duration>,
    ) -> Ticket {
        let (tx, rx) = mpsc::channel();
        if examples.is_empty() {
            let _ = tx.send(Ok(TicketResponse {
                results: Vec::new(),
                cost: None,
                flushed_batch: 0,
                wait: Duration::ZERO,
                cached: false,
            }));
            return Ticket { rx };
        }
        let mut state = lock_clean(&self.inner.state);
        if state.shutdown {
            drop(state);
            let _ = tx.send(Err(ServeError::ShuttingDown));
            return Ticket { rx };
        }
        // Admission control: a request that would push the backlog past
        // `max_queue` sequences is shed now, while it is cheap — before
        // encoding work, queue growth, or a doomed multi-window wait.
        if state.queued_sequences.saturating_add(examples.len()) > self.inner.policy.max_queue {
            drop(state);
            self.inner.metrics.shed.inc();
            let _ = tx.send(Err(ServeError::ServerOverloaded));
            return Ticket { rx };
        }
        let enqueued = Instant::now();
        state.queued_sequences += examples.len();
        self.inner.metrics.depth.add(examples.len() as i64);
        state.pending.push_back(PendingRequest {
            examples,
            enqueued,
            deadline: deadline.map(|d| enqueued + d),
            reply: tx,
        });
        drop(state);
        self.inner.cond.notify_all();
        self.ensure_worker();
        Ticket { rx }
    }

    /// Respawns the worker thread if it died (a panic escaped the flush
    /// path — engine panics are caught, so this is a last line of defence,
    /// counted in [`QueueStats::restarts`]). If no thread can be spawned
    /// at all, serves everything queued inline on this thread so the queue
    /// degrades to slower, unbatched — but correct — service.
    fn ensure_worker(&self) {
        let mut worker = lock_clean(&self.worker);
        if worker.as_ref().is_some_and(|handle| !handle.is_finished()) {
            return;
        }
        if let Some(dead) = worker.take() {
            let _ = dead.join();
            self.inner.metrics.restarts.inc();
        }
        *worker = spawn_worker(&self.inner).ok();
        if worker.is_none() {
            drop(worker);
            drain_inline(&self.inner);
        }
    }

    /// Convenience wrapper: submit and block until served.
    ///
    /// # Errors
    ///
    /// As for [`Ticket::wait`].
    pub fn classify(&self, examples: Vec<Example>) -> Result<TicketResponse> {
        self.submit(examples).wait()
    }

    /// Batching counters since start (a view over the queue's telemetry).
    pub fn stats(&self) -> QueueStats {
        let metrics = &self.inner.metrics;
        QueueStats {
            requests: metrics.requests.get(),
            sequences: metrics.sequences.get(),
            flushes: metrics.flushes.get(),
            largest_flush: u64::try_from(metrics.largest_flush.get()).unwrap_or(0),
            expired: metrics.expired.get(),
            shed: metrics.shed.get(),
            restarts: metrics.restarts.get(),
        }
    }

    /// Stops accepting new requests, drains everything already queued and
    /// joins the worker. Idempotent; called automatically on drop.
    pub fn shutdown(&self) {
        {
            let mut state = lock_clean(&self.inner.state);
            state.shutdown = true;
        }
        self.inner.cond.notify_all();
        let mut worker_slot = lock_clean(&self.worker);
        let worker = worker_slot.take();
        drop(worker_slot);
        if let Some(worker) = worker {
            let _ = worker.join();
        }
        // The worker drains the queue before exiting; if it died instead
        // (join error above, or it could never be spawned) fail whatever
        // it left behind so no ticket blocks forever.
        let leftovers: Vec<PendingRequest> = {
            let mut state = lock_clean(&self.inner.state);
            state.queued_sequences = 0;
            self.inner.metrics.depth.set(0);
            state.pending.drain(..).collect()
        };
        for request in leftovers {
            let _ = request.reply.send(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for BatchQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for BatchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchQueue")
            .field("engine", &self.inner.engine.backend().name())
            .field("policy", &self.inner.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Spawns the queue's worker thread.
fn spawn_worker(inner: &Arc<QueueInner>) -> std::io::Result<JoinHandle<()>> {
    let worker_inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("fqbert-queue-{}", inner.engine.backend().name()))
        .spawn(move || worker_loop(&worker_inner))
}

/// Removes one expired request's sequence accounting and bumps the expiry
/// counters. The caller delivers [`ServeError::DeadlineExceeded`] through
/// the request's ticket *after* releasing the state lock — a reply
/// receiver must never rendezvous with a thread that holds queue state.
fn retire_expired(inner: &QueueInner, state: &mut QueueState, request: &PendingRequest) {
    state.queued_sequences -= request.examples.len();
    inner.metrics.depth.add(-(request.examples.len() as i64));
    inner.metrics.expired.inc();
    inner.metrics.requests.inc();
}

/// Removes every pending request whose deadline has passed — anywhere in
/// the queue, since a request behind a large neighbour can expire first —
/// and pushes them onto `expired` for delivery outside the lock.
fn expire_pending(
    inner: &QueueInner,
    state: &mut QueueState,
    now: Instant,
    expired: &mut Vec<PendingRequest>,
) {
    let mut index = 0;
    while let Some(request) = state.pending.get(index) {
        if request.expired(now) {
            if let Some(request) = state.pending.remove(index) {
                retire_expired(inner, state, &request);
                expired.push(request);
            }
        } else {
            index += 1;
        }
    }
}

/// Drains whole requests off the queue front up to `max_batch` sequences;
/// the first request always goes even if it alone exceeds the cap
/// (requests are never split).
fn drain_window(inner: &QueueInner, state: &mut QueueState) -> Vec<PendingRequest> {
    let mut window: Vec<PendingRequest> = Vec::new();
    let mut sequences = 0usize;
    while let Some(front) = state.pending.front() {
        if !window.is_empty() && sequences + front.examples.len() > inner.policy.max_batch {
            break;
        }
        let Some(request) = state.pending.pop_front() else {
            break;
        };
        sequences += request.examples.len();
        state.queued_sequences -= request.examples.len();
        inner.metrics.depth.add(-(request.examples.len() as i64));
        window.push(request);
        if sequences >= inner.policy.max_batch {
            break;
        }
    }
    window
}

/// What one pass under the state lock decided: requests to fail with
/// `DeadlineExceeded`, and either a window to flush or an exit signal.
/// All channel sends happen after the lock is released.
struct WorkerStep {
    expired: Vec<PendingRequest>,
    /// `None` means shutdown with an empty queue: the worker exits.
    window: Option<Vec<PendingRequest>>,
}

/// Waits for the next flush window (or expiry batch) under the state lock.
///
/// The window stays open until the batch fills, the oldest request's delay
/// budget expires, or shutdown asks for an immediate drain. Waits are cut
/// short at the earliest per-request deadline; when requests expire the
/// step returns at once with an empty window so the caller can deliver
/// their errors promptly — at the deadline, not at the next window close —
/// and then re-enter.
fn next_step(inner: &QueueInner) -> WorkerStep {
    let mut expired = Vec::new();
    let mut state = lock_clean(&inner.state);
    // Sleep until there is work (or shutdown).
    while state.pending.is_empty() && !state.shutdown {
        state = inner
            .cond
            .wait(state)
            .unwrap_or_else(PoisonError::into_inner);
    }
    if state.pending.is_empty() {
        return WorkerStep {
            expired,
            window: None,
        };
    }
    loop {
        let now = Instant::now();
        expire_pending(inner, &mut state, now, &mut expired);
        if !expired.is_empty() {
            // Deliver the expiries first; the worker loops straight back.
            return WorkerStep {
                expired,
                window: Some(Vec::new()),
            };
        }
        let Some(front) = state.pending.front() else {
            // Everything queued expired while the window was open.
            return WorkerStep {
                expired,
                window: Some(Vec::new()),
            };
        };
        let window_deadline = front.enqueued + inner.policy.max_delay;
        if state.queued_sequences >= inner.policy.max_batch
            || state.shutdown
            || now >= window_deadline
        {
            return WorkerStep {
                expired,
                window: Some(drain_window(inner, &mut state)),
            };
        }
        let mut wake = window_deadline;
        for request in &state.pending {
            if let Some(deadline) = request.deadline {
                wake = wake.min(deadline);
            }
        }
        let (next, _timeout) = inner
            .cond
            .wait_timeout(state, wake.saturating_duration_since(now))
            .unwrap_or_else(PoisonError::into_inner);
        state = next;
    }
}

fn worker_loop(inner: &QueueInner) {
    loop {
        let step = next_step(inner);
        for request in step.expired {
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
        }
        let Some(window) = step.window else {
            // Shutdown with an empty queue: done.
            return;
        };
        if window.is_empty() {
            // Expiries only; nothing to flush.
            continue;
        }
        flush_window(inner, window);
    }
}

/// Degraded mode: no worker thread exists and none could be spawned.
/// Serves everything queued right now on the calling thread — requests
/// still resolve correctly, they just forfeit cross-request concurrency.
fn drain_inline(inner: &QueueInner) {
    loop {
        let mut expired = Vec::new();
        let window = {
            let mut state = lock_clean(&inner.state);
            expire_pending(inner, &mut state, Instant::now(), &mut expired);
            drain_window(inner, &mut state)
        };
        for request in expired {
            let _ = request.reply.send(Err(ServeError::DeadlineExceeded));
        }
        if window.is_empty() {
            return;
        }
        flush_window(inner, window);
    }
}

/// Runs one merged engine call for `window` and routes the split results
/// back through each request's channel.
fn flush_window(inner: &QueueInner, window: Vec<PendingRequest>) {
    let flush_start = Instant::now();
    let flushed_batch: usize = window.iter().map(|r| r.examples.len()).sum();
    let metrics = &inner.metrics;
    metrics.flushes.inc();
    metrics.requests.add(window.len() as u64);
    metrics.sequences.add(flushed_batch as u64);
    metrics.largest_flush.set_max(flushed_batch as i64);
    metrics.flush_size.record(flushed_batch as u64);
    metrics
        .flush_occupancy_pct
        .record((flushed_batch as u64).saturating_mul(100) / inner.policy.max_batch.max(1) as u64);
    for request in &window {
        metrics
            .wait_us
            .record_duration(flush_start.duration_since(request.enqueued));
    }
    // Records the whole flush — engine call, result routing and any
    // single-request retries — when this function returns.
    let _flush_span = metrics.flush_us.start_timer();

    let merged: Vec<Example> = window
        .iter()
        .flat_map(|r| r.examples.iter().cloned())
        .collect();
    // A panic inside the engine must cost exactly this window, not the
    // worker thread: catch it and turn it into per-request
    // `internal_error` responses.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        inner
            .engine
            .classify_scored(&EncodedBatch::from_examples(merged))
    }));
    let result = match outcome {
        Ok(result) => result,
        Err(_) => {
            for request in window {
                let _ = request.reply.send(Err(ServeError::Internal(
                    "engine panicked during batch flush".into(),
                )));
            }
            return;
        }
    };
    match result {
        Ok(output) => {
            let mut results = output.results.into_iter();
            for request in window {
                let own: Vec<Scored> = results.by_ref().take(request.examples.len()).collect();
                let cost = sum_costs(&own);
                let _ = request.reply.send(Ok(TicketResponse {
                    results: own,
                    cost,
                    flushed_batch,
                    wait: flush_start.duration_since(request.enqueued),
                    cached: false,
                }));
            }
        }
        Err(_) if window.len() > 1 => {
            // One bad sequence (e.g. all-padding) must not poison the
            // window: retry each request alone so only the offender fails.
            for request in window {
                let batch = EncodedBatch::from_examples(request.examples.clone());
                let retry = catch_unwind(AssertUnwindSafe(|| inner.engine.classify_scored(&batch)));
                let response = match retry {
                    Ok(result) => result.map_err(ServeError::from).map(|output| {
                        let cost = sum_costs(&output.results);
                        TicketResponse {
                            results: output.results,
                            cost,
                            flushed_batch: request.examples.len(),
                            wait: flush_start.duration_since(request.enqueued),
                            cached: false,
                        }
                    }),
                    Err(_) => Err(ServeError::Internal(
                        "engine panicked during single-request retry".into(),
                    )),
                };
                let _ = request.reply.send(response);
            }
        }
        Err(err) => {
            if let Some(request) = window.into_iter().next() {
                let _ = request.reply.send(Err(ServeError::from(err)));
            }
        }
    }
}

/// Sums the per-sequence simulated costs of a request, if present.
fn sum_costs(results: &[Scored]) -> Option<BatchCost> {
    let mut total: Option<BatchCost> = None;
    for scored in results {
        if let Some(cost) = scored.cost {
            let entry = total.get_or_insert(BatchCost {
                total_cycles: 0,
                latency_ms: 0.0,
            });
            entry.total_cycles += cost.total_cycles;
            entry.latency_ms += cost.latency_ms;
        }
    }
    total
}
