//! Multi-model registry: named engines loaded from artifact specs.

use crate::{Result, ServeError};
use fqbert_runtime::{BackendKind, Engine, EngineBuilder, TensorCache};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

/// One registry entry parsed from plain config:
/// `name=backend:path[#threads=N]`.
///
/// `name` is the routing key requests address the model by; `backend` is a
/// [`BackendKind`] spelling (`int` or `sim` — the float baseline cannot be
/// loaded from a quantized artifact); `path` points at a saved
/// [`fqbert_runtime::ModelArtifact`]; the optional `#threads=N` suffix
/// shards this model's batches across `N` worker threads (`0` =
/// auto-detect the host's parallelism). Without the suffix the model uses
/// the process default (the server's `--threads` flag, else
/// `FQBERT_THREADS`, else serial).
///
/// ```text
/// sst2-w4=int:models/sst2_w4.fqbt
/// sst2-w8=sim:models/sst2_w8.fqbt#threads=4
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSpec {
    /// Routing name of the model.
    pub name: String,
    /// Backend the artifact is served on.
    pub backend: BackendKind,
    /// Path of the saved artifact.
    pub path: PathBuf,
    /// Worker threads for this model's batch execution (`Some(0)` =
    /// auto-detect); `None` defers to the process default.
    pub threads: Option<usize>,
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}:{}", self.name, self.backend, self.path.display())?;
        if let Some(threads) = self.threads {
            write!(f, "#threads={threads}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = ServeError;

    fn from_str(s: &str) -> Result<Self> {
        let (name, rest) = s.split_once('=').ok_or_else(|| {
            ServeError::Protocol(format!(
                "model spec `{s}` must look like `name=backend:path[#threads=N]`"
            ))
        })?;
        let (backend, path) = rest.split_once(':').ok_or_else(|| {
            ServeError::Protocol(format!(
                "model spec `{s}` must name a backend: `name=backend:path[#threads=N]`"
            ))
        })?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ServeError::Protocol(format!(
                "model spec `{s}` has an empty model name"
            )));
        }
        // An optional execution suffix after the last `#`; artifact paths
        // containing a literal `#threads=` are not representable (rename
        // the file).
        let (path, threads) = match path.rsplit_once('#') {
            Some((path, suffix)) if suffix.trim().starts_with("threads=") => {
                let value = suffix.trim().trim_start_matches("threads=");
                let threads = value.parse::<usize>().map_err(|_| {
                    ServeError::Protocol(format!(
                        "model spec `{s}` has a bad thread count `{value}` \
                         (expected an integer, 0 = auto)"
                    ))
                })?;
                (path, Some(threads))
            }
            _ => (path, None),
        };
        let path = path.trim();
        if path.is_empty() {
            return Err(ServeError::Protocol(format!(
                "model spec `{s}` has an empty artifact path"
            )));
        }
        Ok(ModelSpec {
            name: name.to_string(),
            backend: backend.parse::<BackendKind>()?,
            path: PathBuf::from(path),
            threads,
        })
    }
}

/// Parses a plain-text registry config: one [`ModelSpec`] per line, blank
/// lines and `#` comments ignored.
///
/// # Errors
///
/// Returns the first malformed line as a [`ServeError::Protocol`].
pub fn parse_config(text: &str) -> Result<Vec<ModelSpec>> {
    text.lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::parse)
        .collect()
}

/// Metadata describing one registered model without running it.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Routing name.
    pub name: String,
    /// Task the engine serves (e.g. `SST-2`).
    pub task: String,
    /// Backend name (`float`, `int`, `sim`).
    pub backend: String,
    /// Numeric precision (e.g. `w4/a8`).
    pub precision: String,
    /// Per-layer weight bit-width summary (e.g. `w4[0-5]/w8[6-11]`, or a
    /// bare `w4` when every layer matches); `fp32` for the float backend.
    pub bits: String,
    /// Number of output classes.
    pub num_classes: usize,
    /// Worker threads the engine shards batches across (1 = serial).
    pub threads: usize,
    /// GEMM micro-kernel serving the engine (`avx2`, `sse2`, `neon`,
    /// `scalar`) — the runtime-dispatch choice, or the `FQBERT_KERNEL`
    /// override.
    pub kernel: String,
    /// Bytes of model state currently resident for this engine: float
    /// tensors (counted once per model even when deduped) plus every
    /// weight panel and bias materialized so far. Grows as lazily loaded
    /// layers run their first forward.
    pub resident_bytes: usize,
    /// Tensors this model shares with previously loaded ones through the
    /// registry's content-hash dedup (0 for the first variant of a task
    /// and for engines registered in-process).
    pub shared_tensors: usize,
}

/// A name → engine map serving several models (different tasks and/or
/// bit-widths) from one process.
///
/// Engines are held behind `Arc` so the server's per-model worker threads
/// and any in-process caller share them without copying model weights.
#[derive(Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Arc<Engine>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads every spec'd artifact into an engine and registers it. A
    /// spec's `threads` suffix selects that engine's execution policy;
    /// without one the engine keeps the builder default (`FQBERT_THREADS`,
    /// else serial).
    ///
    /// Artifact bytes are loaded **once per file**: paths are canonicalized
    /// so two specs naming the same artifact (even through different
    /// spellings or symlinks) share one read and one backing buffer. On top
    /// of that, all specs load through one registry-wide [`TensorCache`],
    /// so bit-identical float tensors *across different* artifacts (the
    /// embedding tables and classifier heads of w4/w8 variants of one task)
    /// dedup onto a single allocation — each engine's
    /// [`Engine::load_stats`] records what it shared.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, artifact I/O/validation errors, and specs
    /// naming the float backend (artifacts hold quantized models only).
    pub fn load(specs: &[ModelSpec]) -> Result<Self> {
        let mut registry = Self::new();
        let mut cache = TensorCache::new();
        let mut buffers: HashMap<PathBuf, Arc<[u8]>> = HashMap::new();
        for spec in specs {
            // Canonicalization requires the file to exist; a missing file
            // falls through to the read below, which reports the real
            // I/O error with the spec's own spelling.
            let canonical = std::fs::canonicalize(&spec.path).unwrap_or_else(|_| spec.path.clone());
            let bytes = match buffers.get(&canonical) {
                Some(bytes) => Arc::clone(bytes),
                None => {
                    let bytes: Arc<[u8]> = std::fs::read(&spec.path)?.into();
                    buffers.insert(canonical, Arc::clone(&bytes));
                    bytes
                }
            };
            let mut builder = EngineBuilder::new(fqbert_nlp::TaskKind::Sst2).backend(spec.backend);
            if let Some(threads) = spec.threads {
                builder = builder.threads(threads);
            }
            let engine = builder.load_shared_bytes(&bytes, &mut cache)?;
            registry.register(&spec.name, engine)?;
        }
        Ok(registry)
    }

    /// Registers an already-built engine under `name` (the in-process
    /// path: QAT-calibrated or float engines that never touched disk).
    /// Accepts a bare [`Engine`] or an `Arc<Engine>` already shared with
    /// other callers.
    ///
    /// # Errors
    ///
    /// Fails if `name` is already taken.
    pub fn register(&mut self, name: &str, engine: impl Into<Arc<Engine>>) -> Result<()> {
        if self.models.contains_key(name) {
            return Err(ServeError::Protocol(format!(
                "duplicate model name `{name}` in registry"
            )));
        }
        self.models.insert(name.to_string(), engine.into());
        Ok(())
    }

    /// The engine registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when absent.
    pub fn get(&self, name: &str) -> Result<Arc<Engine>> {
        self.models
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.keys().cloned().collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Iterates over `(name, engine)` pairs, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Engine>)> {
        self.models.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Metadata for every registered model, sorted by name.
    pub fn infos(&self) -> Vec<ModelInfo> {
        self.models
            .iter()
            .map(|(name, engine)| ModelInfo {
                name: name.clone(),
                task: engine.task().to_string(),
                backend: engine.backend().name().to_string(),
                precision: engine.backend().precision().to_string(),
                bits: engine
                    .backend()
                    .int_model()
                    .map(|model| model.bit_summary())
                    .unwrap_or_else(|| "fp32".to_string()),
                num_classes: engine.task().num_classes(),
                threads: engine.threads(),
                kernel: engine.kernel().to_string(),
                resident_bytes: engine.resident_bytes(),
                shared_tensors: engine.load_stats().shared_tensors,
            })
            .collect()
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_round_trip() {
        let spec: ModelSpec = "sst2-w4=int:models/sst2_w4.fqbt".parse().unwrap();
        assert_eq!(spec.name, "sst2-w4");
        assert_eq!(spec.backend, BackendKind::Int);
        assert_eq!(spec.path, PathBuf::from("models/sst2_w4.fqbt"));
        assert_eq!(spec.threads, None);
        assert_eq!(spec.to_string().parse::<ModelSpec>().unwrap(), spec);

        // Paths may contain further colons (only the first separates).
        let spec: ModelSpec = "m=sim:dir:with:colons/a.fqbt".parse().unwrap();
        assert_eq!(spec.backend, BackendKind::Sim);
        assert_eq!(spec.path, PathBuf::from("dir:with:colons/a.fqbt"));
    }

    #[test]
    fn specs_parse_thread_suffixes() {
        let spec: ModelSpec = "sst2=int:models/a.fqbt#threads=4".parse().unwrap();
        assert_eq!(spec.path, PathBuf::from("models/a.fqbt"));
        assert_eq!(spec.threads, Some(4));
        assert_eq!(spec.to_string(), "sst2=int:models/a.fqbt#threads=4");
        assert_eq!(spec.to_string().parse::<ModelSpec>().unwrap(), spec);

        // 0 = auto-detect; still round-trips.
        let spec: ModelSpec = "sst2=sim:a.fqbt#threads=0".parse().unwrap();
        assert_eq!(spec.threads, Some(0));

        // A `#` without the threads key stays part of the path.
        let spec: ModelSpec = "m=int:weird#name.fqbt".parse().unwrap();
        assert_eq!(spec.path, PathBuf::from("weird#name.fqbt"));
        assert_eq!(spec.threads, None);
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "no-equals",
            "name=int",               // missing path separator
            "=int:path",              // empty name
            "name=turbo:path",        // unknown backend
            "name=int:",              // empty path
            "name=int:   ",           // whitespace path
            "name=int:a#threads=",    // empty thread count
            "name=int:a#threads=two", // non-numeric thread count
            "name=int:#threads=2",    // empty path before the suffix
        ] {
            let err = bad.parse::<ModelSpec>().expect_err("must reject");
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn config_text_skips_comments_and_blanks() {
        let specs =
            parse_config("# registry\n\n  sst2-w4=int:a.fqbt  \n# another\nsst2-w8=sim:b.fqbt\n")
                .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "sst2-w4");
        assert_eq!(specs[1].backend, BackendKind::Sim);
        assert!(parse_config("good=int:a\nbad line\n").is_err());
    }

    #[test]
    fn empty_registry_routes_nothing() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        assert_eq!(registry.len(), 0);
        let err = registry.get("missing").expect_err("unknown model");
        assert_eq!(err.kind(), "unknown_model");
    }
}
