//! End-to-end server smoke test: spin up the TCP server with several
//! models (two bit-widths of the same task plus a simulated-hardware
//! variant), run concurrent client round trips, exercise the error frames
//! and assert a clean graceful shutdown. This is the test the CI server
//! smoke job runs.

mod common;

use common::{engine, engine_with_quant};
use fqbert_quant::QuantConfig;
use fqbert_runtime::BackendKind;
use fqbert_serve::{BatchPolicy, Client, ModelRegistry, ServeError, Server, ServerConfig};
use fqbert_tensor::gemm::kernels;
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

fn test_server() -> Server {
    let mut registry = ModelRegistry::new();
    registry
        .register("sst2-w4", engine(BackendKind::Int))
        .expect("register w4");
    registry
        .register(
            "sst2-w8",
            engine_with_quant(BackendKind::Int, QuantConfig::w8a8()),
        )
        .expect("register w8");
    registry
        .register("sst2-sim", engine(BackendKind::Sim))
        .expect("register sim");
    Server::spawn(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: Duration::from_millis(5),
                max_queue: usize::MAX,
            },
            ..ServerConfig::default()
        },
    )
    .expect("spawn server")
}

#[test]
fn server_round_trip_with_concurrent_clients_and_graceful_shutdown() {
    let server = test_server();
    let addr = server.local_addr();

    // Liveness + model listing.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let models = client.list_models().expect("list_models");
    let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, vec!["sst2-sim", "sst2-w4", "sst2-w8"]);
    let precisions: Vec<&str> = models.iter().map(|m| m.precision.as_str()).collect();
    assert!(precisions.contains(&"w4/a8") && precisions.contains(&"w8/a8"));
    // The per-layer bit summary collapses to a single label for uniform
    // models; mixed-precision artifacts report runs like `w4[0-5]/w8[6-11]`.
    let bits: Vec<&str> = models.iter().map(|m| m.bits.as_str()).collect();
    assert!(bits.contains(&"w4") && bits.contains(&"w8"));
    // Every model reports the process-wide GEMM kernel the dispatch chose,
    // and every engine holds some resident weight bytes.
    let expected_kernel = kernels::selected().name;
    for model in &models {
        assert!(
            model.resident_bytes > 0,
            "{} has no resident bytes",
            model.name
        );
        let kernel = &model.kernel;
        assert_eq!(kernel, expected_kernel);
    }

    // Concurrent clients across the two bit-widths: every request must be
    // answered on the model it addressed.
    let texts = ["w1 w2 w3", "w4 w5", "w6 w7 w8 w9"];
    let mut workers = Vec::new();
    for worker in 0..4 {
        let model = if worker % 2 == 0 {
            "sst2-w4"
        } else {
            "sst2-w8"
        };
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut responses = Vec::new();
            for _ in 0..3 {
                let response = client.classify_texts(model, &texts).expect("classify");
                assert_eq!(response.model, model);
                assert_eq!(response.results.len(), texts.len());
                assert!(response.latency_ms >= 0.0);
                responses.push(response);
            }
            responses
        }));
    }
    let mut by_model: std::collections::BTreeMap<String, Vec<Vec<f32>>> = Default::default();
    for worker in workers {
        for response in worker.join().expect("worker") {
            for result in &response.results {
                assert_eq!(result.logits.len(), 2);
                assert!((result.scores.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            }
            by_model.entry(response.model.clone()).or_default().push(
                response
                    .results
                    .iter()
                    .flat_map(|r| r.logits.clone())
                    .collect(),
            );
        }
    }
    // Same inputs on the same model always produce identical logits, and
    // the two bit-widths produce different ones (they are different
    // quantizations of the same weights).
    for logits in by_model.values() {
        assert!(logits.windows(2).all(|w| w[0] == w[1]));
    }
    assert_ne!(
        by_model["sst2-w4"][0], by_model["sst2-w8"][0],
        "w4 and w8 models must actually differ"
    );

    // The simulated model reports its cycle-model cost.
    let sim_response = client
        .classify_texts("sst2-sim", &["w1 w2 w3"])
        .expect("sim classify");
    let sim = sim_response.sim.expect("sim cost in response");
    assert!(sim.total_cycles > 0 && sim.latency_ms > 0.0);
    assert!(sim_response.flushed_batch >= 1);

    // Pipelining: many requests in flight on one connection, responses
    // drained in submission order with ids echoed — including a
    // client-supplied id and a mid-stream failure that must not poison its
    // neighbours.
    let mut pipelined = Client::connect(addr).expect("pipelined connect");
    let first = pipelined.submit("sst2-w4", &texts).expect("submit 1");
    pipelined
        .submit_as("my-own-id", "sst2-w8", &["w1 w2"])
        .expect("submit 2");
    let doomed = pipelined
        .submit("no-such-model", &["w3"])
        .expect("submit 3");
    let last = pipelined
        .submit("sst2-w4", &["w4 w5 w6"])
        .expect("submit 4");
    assert_eq!(pipelined.pending(), 4);
    let drained = pipelined.drain().expect("drain");
    assert_eq!(pipelined.pending(), 0);
    let ids: Vec<&str> = drained.iter().map(|(id, _)| id.as_str()).collect();
    assert_eq!(
        ids,
        vec![first.as_str(), "my-own-id", doomed.as_str(), last.as_str()]
    );
    let ok_first = drained[0].1.as_ref().expect("first response");
    assert_eq!(ok_first.id, first);
    assert_eq!(ok_first.model, "sst2-w4");
    assert_eq!(ok_first.results.len(), texts.len());
    // These exact inputs were served during the concurrency section, so
    // the response cache replays them without another engine call.
    assert!(ok_first.cached, "repeat inputs must replay from the cache");
    // Pipelined and round-trip classification agree bit for bit.
    assert_eq!(
        ok_first
            .results
            .iter()
            .flat_map(|r| r.logits.clone())
            .collect::<Vec<f32>>(),
        by_model["sst2-w4"][0]
    );
    assert_eq!(
        drained[1].1.as_ref().expect("own id response").id,
        "my-own-id"
    );
    let failure = drained[2].1.as_ref().expect_err("unknown model mid-stream");
    assert!(matches!(failure, ServeError::UnknownModel(_)), "{failure}");
    assert!(
        drained[3].1.is_ok(),
        "request after the failure still served"
    );
    // A drained connection is immediately usable for round trips again.
    pipelined.ping().expect("ping after drain");
    // An undrained connection refuses blocking round trips.
    pipelined.submit("sst2-w4", &["w1"]).expect("submit 5");
    let err = pipelined.ping().expect_err("round trip with pending");
    assert!(err.to_string().contains("drain"), "{err}");
    let tail = pipelined.drain().expect("final drain");
    assert_eq!(tail.len(), 1);
    assert!(tail[0].1.is_ok());

    // Error frames: unknown model, then a malformed line on a raw socket.
    let err = client
        .classify_texts("nope", &["w1"])
        .expect_err("unknown model");
    assert!(matches!(err, ServeError::UnknownModel(_)), "{err}");

    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    raw.write_all(b"this is not json\n").expect("write");
    raw.flush().expect("flush");
    let mut line = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("error frame");
    assert!(line.contains("\"error\""), "{line}");
    assert!(line.contains("protocol"), "{line}");

    // Graceful shutdown via the wire protocol.
    client.shutdown_server().expect("shutdown ack");
    server.join();
    assert!(server.is_shutting_down());
    // The queues saw exactly one engine call per distinct (model, inputs)
    // pair — every repeat either coalesced onto the in-flight leader or
    // replayed from the cache. Distinct work: the three-text batch once on
    // each int model (3 + 3), the sim request (1), and the pipelined
    // section's novel inputs `w1 w2` on w8 (1) plus `w4 w5 w6` and `w1` on
    // w4 (1 + 1); the unknown-model submission never reaches a queue.
    let total_sequences: u64 = server.queue_stats().iter().map(|(_, s)| s.sequences).sum();
    assert_eq!(total_sequences, 3 + 3 + 1 + 1 + 1 + 1);
    // The listener is gone: new connections are refused (allow a beat for
    // the OS to tear the socket down).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(250)).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn stats_command_reports_live_per_model_telemetry() {
    let server = test_server();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // Drive known traffic: five distinct single-text requests on w4 (so
    // none of them alias in the response cache), one on w8, none on sim.
    // Queue counters are recorded before the response frame is written, so
    // once `classify_texts` returns the stats are settled.
    for text in ["w1 w2 w3", "w2 w3 w4", "w3 w4 w5", "w4 w5 w6", "w5 w6 w7"] {
        client
            .classify_texts("sst2-w4", &[text])
            .expect("classify w4");
    }
    client
        .classify_texts("sst2-w8", &["w1 w2"])
        .expect("classify w8");

    let stats = client.stats().expect("stats");

    // Server totals: the six classify frames plus this stats frame itself.
    assert!(
        stats.counters.get("server.requests").copied().unwrap_or(0) >= 7,
        "server.requests missing or too small: {:?}",
        stats.counters.get("server.requests")
    );
    assert_eq!(stats.counters.get("server.errors"), Some(&0));
    assert_eq!(stats.gauges.get("server.connections"), Some(&1));

    // Per-model queue counters carry the exact traffic.
    assert_eq!(stats.counters.get("model.sst2-w4.queue.requests"), Some(&5));
    assert_eq!(
        stats.counters.get("model.sst2-w4.queue.sequences"),
        Some(&5)
    );
    assert_eq!(stats.counters.get("model.sst2-w8.queue.requests"), Some(&1));
    assert_eq!(stats.counters.get("model.sst2-w4.queue.shed"), Some(&0));
    assert_eq!(stats.counters.get("model.sst2-w4.queue.expired"), Some(&0));
    assert_eq!(stats.gauges.get("model.sst2-w4.queue.depth"), Some(&0));

    // End-to-end latency percentiles per model, ordered and bounded.
    let latency = stats
        .histograms
        .get("model.sst2-w4.request_us")
        .expect("w4 latency histogram");
    assert_eq!(latency.count, 5);
    assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
    assert!(latency.min <= latency.max);
    assert!(latency.p99 <= latency.max as f64 + 1e-9);
    assert_eq!(
        stats
            .histograms
            .get("model.sst2-w8.request_us")
            .expect("w8 latency histogram")
            .count,
        1
    );

    // Queue wait and flush-shape histograms exist and saw the flushes.
    let wait = stats
        .histograms
        .get("model.sst2-w4.queue.wait_us")
        .expect("wait histogram");
    assert_eq!(wait.count, 5);
    assert!(stats
        .histograms
        .contains_key("model.sst2-w4.queue.flush_size"));

    // Engine-internal metrics are merged under the same model prefix.
    assert!(
        stats
            .counters
            .get("model.sst2-w4.engine.calls")
            .copied()
            .unwrap_or(0)
            >= 1,
        "engine metrics must merge into the model prefix"
    );

    // The selected GEMM kernel rides along as a label under each model's
    // prefix, matching the in-process dispatch.
    assert_eq!(
        stats
            .labels
            .get("model.sst2-w4.engine.kernel")
            .map(String::as_str),
        Some(kernels::selected().name)
    );

    // Untouched models still report, at zero — the registry registers
    // every metric eagerly at spawn.
    assert_eq!(
        stats.counters.get("model.sst2-sim.queue.requests"),
        Some(&0)
    );

    // All six classify frames carried distinct inputs: six cache misses,
    // no hits, nothing coalesced.
    assert_eq!(stats.counters.get("cache.hits"), Some(&0));
    assert_eq!(stats.counters.get("cache.misses"), Some(&6));
    assert_eq!(stats.counters.get("cache.coalesced"), Some(&0));

    // Resident weight bytes ride as a per-model gauge in the same frame.
    for model in ["sst2-w4", "sst2-w8", "sst2-sim"] {
        assert!(
            stats
                .gauges
                .get(&format!("model.{model}.resident_bytes"))
                .copied()
                .unwrap_or(0)
                > 0,
            "{model} must report resident bytes"
        );
    }

    // A repeat of already-served inputs replays from the cache: the frame
    // is flagged, the hit counter moves, and the queue never sees it.
    let repeat = client
        .classify_texts("sst2-w4", &["w1 w2 w3"])
        .expect("repeat w4");
    assert!(repeat.cached, "repeat inputs must be served from the cache");
    let after = client.stats().expect("stats after repeat");
    assert_eq!(after.counters.get("cache.hits"), Some(&1));
    assert_eq!(after.counters.get("model.sst2-w4.queue.requests"), Some(&5));

    // Opting out with no_cache forces a fresh engine round trip that is
    // still bit-identical to the cached replay.
    let fresh = client
        .classify_texts_uncached("sst2-w4", &["w1 w2 w3"])
        .expect("uncached w4");
    assert!(!fresh.cached, "no_cache must bypass the response cache");
    let repeat_logits: Vec<u32> = repeat
        .results
        .iter()
        .flat_map(|r| r.logits.iter().map(|x| x.to_bits()))
        .collect();
    let fresh_logits: Vec<u32> = fresh
        .results
        .iter()
        .flat_map(|r| r.logits.iter().map(|x| x.to_bits()))
        .collect();
    assert_eq!(
        repeat_logits, fresh_logits,
        "cached replay must be bit-identical to a fresh engine call"
    );
    let uncached_stats = client.stats().expect("stats after no_cache");
    assert_eq!(
        uncached_stats.counters.get("model.sst2-w4.queue.requests"),
        Some(&6),
        "no_cache requests must reach the queue"
    );
    assert_eq!(
        uncached_stats.counters.get("cache.hits"),
        Some(&1),
        "no_cache requests must not touch cache counters"
    );

    // Stats are live: a second snapshot reflects the frames in between.
    let before = stats.counters["server.requests"];
    client.ping().expect("ping");
    let again = client.stats().expect("second stats");
    assert!(
        again.counters["server.requests"] >= before + 2,
        "second snapshot must count the ping and itself"
    );

    client.shutdown_server().expect("shutdown ack");
    server.join();
}
