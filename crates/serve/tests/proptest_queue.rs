//! Property test: results served through a dynamic-batching queue are
//! bit-identical to calling `classify_batch` directly on the same inputs,
//! for random request sizes, flush policies and submission orders.

mod common;

use common::{engine, example};
use fqbert_runtime::{BackendKind, EncodedBatch, Engine};
use fqbert_serve::{BatchPolicy, BatchQueue};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn shared_engine() -> Arc<Engine> {
    static ENGINE: OnceLock<Arc<Engine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| engine(BackendKind::Int)))
}

proptest! {
    #[test]
    fn queued_results_are_bit_identical_to_direct_classification(
        request_sizes in proptest::collection::vec(1usize..5, 1..6),
        max_batch in 1usize..12,
        delay_ms in 0u64..3,
        offset in 0usize..50,
    ) {
        let engine = shared_engine();
        let queue = BatchQueue::start(
            Arc::clone(&engine),
            BatchPolicy {
                max_batch,
                max_delay: Duration::from_millis(delay_ms),
            max_queue: usize::MAX,
            },
        );
        // Build every request's examples up front so the direct reference
        // sees exactly the same inputs.
        let requests: Vec<Vec<fqbert_nlp::Example>> = request_sizes
            .iter()
            .scan(offset, |next, &len| {
                let start = *next;
                *next += len;
                Some((start..start + len).map(example).collect())
            })
            .collect();
        let tickets: Vec<_> = requests
            .iter()
            .map(|examples| queue.submit(examples.clone()))
            .collect();
        for (examples, ticket) in requests.iter().zip(tickets) {
            let served = ticket.wait().expect("served");
            let direct = engine
                .classify_batch(&EncodedBatch::from_examples(examples.clone()))
                .expect("direct");
            prop_assert_eq!(served.results.len(), direct.logits.len());
            for (scored, (logits, prediction)) in served
                .results
                .iter()
                .zip(direct.logits.iter().zip(&direct.predictions))
            {
                prop_assert_eq!(&scored.prediction, prediction);
                prop_assert_eq!(scored.logits.len(), logits.len());
                for (a, b) in scored.logits.iter().zip(logits) {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "queued logits diverge from direct classification"
                    );
                }
            }
        }
        queue.shutdown();
    }
}
