//! Cross-kernel serving identity: the logits a client receives must be
//! bit-identical no matter which GEMM micro-kernel the dispatch selects.
//! This is the end-to-end counterpart of the tensor crate's per-tile
//! proptests — it drives real requests through the TCP server and batch
//! queues while flipping the process-global kernel between responses.
//!
//! (The `FQBERT_KERNEL` environment variable feeds the same
//! [`kernels::force`] path through `kernels::resolve`, covered by the
//! tensor crate's unit tests; CI additionally runs the whole quick tier
//! under `FQBERT_KERNEL=scalar`.)

mod common;

use common::{engine, engine_with_quant};
use fqbert_quant::QuantConfig;
use fqbert_runtime::BackendKind;
use fqbert_serve::{BatchPolicy, Client, ModelRegistry, Server, ServerConfig};
use fqbert_tensor::gemm::kernels::{self, KernelKind};
use std::time::Duration;

#[test]
fn served_logits_are_bit_identical_across_kernels() {
    // Two bit-widths so both panel formats are exercised end to end:
    // fq_bert's low-bit weights ride the nibble direct-compute path,
    // w8/a8 the wide `i16`-pair path.
    let mut registry = ModelRegistry::new();
    registry
        .register("sst2-w4", engine(BackendKind::Int))
        .expect("register w4");
    registry
        .register(
            "sst2-w8",
            engine_with_quant(BackendKind::Int, QuantConfig::w8a8()),
        )
        .expect("register w8");
    let server = Server::spawn(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: BatchPolicy {
                max_batch: 4,
                max_delay: Duration::from_millis(2),
                max_queue: usize::MAX,
            },
            ..ServerConfig::default()
        },
    )
    .expect("spawn server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let texts: &[&str] = &["w1 w2 w3", "w4 w5", "w6 w7 w8 w9 w10"];
    let logits_for = |client: &mut Client, kind: KernelKind| -> Vec<(String, Vec<Vec<f32>>)> {
        assert_eq!(kernels::force(kind), kind, "kernel must install");
        ["sst2-w4", "sst2-w8"]
            .iter()
            .map(|model| {
                let response = client.classify_texts(model, texts).expect("classify");
                let logits = response
                    .results
                    .iter()
                    .map(|result| result.logits.clone())
                    .collect();
                (model.to_string(), logits)
            })
            .collect()
    };

    let reference = logits_for(&mut client, KernelKind::Scalar);
    for kind in kernels::available() {
        let got = logits_for(&mut client, kind);
        assert_eq!(
            got,
            reference,
            "served logits must be bit-identical on the {} kernel",
            kind.name()
        );
    }
    kernels::force(kernels::best_available());

    client.shutdown_server().expect("shutdown ack");
    server.join();
}
