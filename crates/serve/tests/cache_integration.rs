//! Integration tests of the zero-copy loading + dedup + response-cache
//! stack above the real engine: registry loads that alias one artifact
//! file, cross-variant float-tensor sharing, and cache/coalescing paths
//! that must stay bit-identical to direct queue round trips.

mod common;

use common::{engine, engine_with_quant};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EncodedBatch};
use fqbert_serve::telemetry::Scope;
use fqbert_serve::{
    BatchPolicy, BatchQueue, CacheKey, ModelRegistry, ModelSpec, RequestInputs, ResponseCache,
    TicketResponse,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Flattened logit bit patterns of a response, for exact comparisons.
fn logit_bits(response: &TicketResponse) -> Vec<u32> {
    response
        .results
        .iter()
        .flat_map(|r| r.logits.iter().map(|x| x.to_bits()))
        .collect()
}

#[test]
fn registry_collapses_shared_paths_and_dedups_float_tensors() {
    let dir = std::env::temp_dir().join("fqbert_registry_dedup_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let w4_path = dir.join("sst2_w4.fqbt");
    let w8_path = dir.join("sst2_w8.fqbt");
    engine(BackendKind::Int).save(&w4_path).expect("save w4");
    engine_with_quant(BackendKind::Int, QuantConfig::w8a8())
        .save(&w8_path)
        .expect("save w8");

    // The second spec spells the same file with a redundant `.` component:
    // path canonicalization must collapse both onto one file read, and the
    // registry-wide dedup cache must then share every float tensor. The w8
    // variant lives in its own file but derives from the same float model,
    // so its float tensors dedup too.
    let alias = dir.join(".").join("sst2_w4.fqbt");
    let specs = [
        ModelSpec {
            name: "w4".to_string(),
            backend: BackendKind::Int,
            path: w4_path.clone(),
            threads: None,
        },
        ModelSpec {
            name: "w4-alias".to_string(),
            backend: BackendKind::Int,
            path: alias,
            threads: None,
        },
        ModelSpec {
            name: "w8".to_string(),
            backend: BackendKind::Int,
            path: w8_path.clone(),
            threads: None,
        },
    ];
    let registry = ModelRegistry::load(&specs).expect("load registry");
    let infos: BTreeMap<String, _> = registry
        .infos()
        .into_iter()
        .map(|info| (info.name.clone(), info))
        .collect();
    assert_eq!(infos.len(), 3);
    assert_eq!(
        infos["w4"].shared_tensors, 0,
        "the first load has nothing to share against"
    );
    assert_eq!(
        infos["w4-alias"].shared_tensors, 7,
        "an aliased path must share all seven float tensors"
    );
    assert_eq!(
        infos["w8"].shared_tensors, 7,
        "a second bit-width of one float model must share its float tensors"
    );
    for info in infos.values() {
        assert!(
            info.resident_bytes > 0,
            "{} must report resident bytes",
            info.name
        );
    }

    std::fs::remove_file(&w4_path).ok();
    std::fs::remove_file(&w8_path).ok();
}

#[test]
fn cached_and_coalesced_responses_are_bit_identical_to_the_queue() {
    let engine = engine(BackendKind::Int);
    let queue = Arc::new(BatchQueue::start(
        Arc::clone(&engine),
        BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            max_queue: usize::MAX,
        },
    ));
    let cache = Arc::new(ResponseCache::new(32, &Scope::detached("")));
    let texts = vec!["w1 w2 w3".to_string(), "w4 w5".to_string()];
    let key = CacheKey {
        model: "sst2".to_string(),
        inputs: RequestInputs::Texts(texts.clone()),
    };
    let submit = {
        let queue = Arc::clone(&queue);
        let engine = Arc::clone(&engine);
        let texts = texts.clone();
        move || {
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let batch = EncodedBatch::from_texts(engine.tokenizer(), &refs);
            queue.submit(batch.examples().to_vec()).wait()
        }
    };

    // The oracle: a direct queue round trip with no cache in the path.
    let direct = submit().expect("direct queue round trip");
    let direct_bits = logit_bits(&direct);

    // Eight threads race the same key. Exactly one becomes the leader and
    // reaches the queue; everyone else coalesces onto it or replays the
    // stored answer — and every response carries identical logits.
    let barrier = Arc::new(Barrier::new(8));
    let mut workers = Vec::new();
    for _ in 0..8 {
        let cache = Arc::clone(&cache);
        let key = key.clone();
        let submit = submit.clone();
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            cache.get_or_serve(key, None, submit).expect("serve")
        }));
    }
    let responses: Vec<TicketResponse> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();
    for response in &responses {
        assert_eq!(
            logit_bits(response),
            direct_bits,
            "cached/coalesced responses must be bit-identical to the queue"
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "exactly one racer reaches the engine");
    assert_eq!(
        stats.hits + stats.coalesced,
        7,
        "the other seven replay or coalesce"
    );
    // The direct oracle plus the one leader: the queue never saw the
    // repeats.
    assert_eq!(queue.stats().requests, 2);

    // A later repeat replays from the LRU, flagged as cached, still
    // bit-identical, without reaching the queue.
    let replay = cache
        .get_or_serve(key, None, || panic!("must not serve"))
        .expect("replay");
    assert!(replay.cached);
    assert_eq!(logit_bits(&replay), direct_bits);
    assert_eq!(queue.stats().requests, 2);

    queue.shutdown();
}
