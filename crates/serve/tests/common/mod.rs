//! Shared helpers for the serve tests: a small calibrated integer engine
//! built without training (deterministic logits are all the queue and
//! protocol tests need).

use fqbert_autograd::Graph;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{Example, TaskKind, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, Engine, EngineBuilder};
use std::sync::Arc;

pub const MAX_LEN: usize = 16;

/// A deterministic sequence of valid token ids.
pub fn example(i: usize) -> Example {
    let len = 4 + i % (MAX_LEN - 6);
    let mut token_ids = vec![2usize];
    token_ids.extend((0..len).map(|d| 4 + (i * 7 + d * 3) % 40));
    token_ids.push(3);
    Example {
        segment_ids: vec![0; token_ids.len()],
        attention_mask: vec![1; token_ids.len()],
        token_ids,
        label: 0,
    }
}

/// Builds a calibrated engine over an untrained tiny model.
pub fn engine(kind: BackendKind) -> Arc<Engine> {
    engine_with_quant(kind, QuantConfig::fq_bert())
}

/// As [`engine`], with an explicit quantization profile (e.g.
/// [`QuantConfig::w8a8`] for a second bit-width of the same task).
pub fn engine_with_quant(kind: BackendKind, quant: QuantConfig) -> Arc<Engine> {
    let words: Vec<String> = (0..40).map(|i| format!("w{i}")).collect();
    let vocab = Vocab::from_tokens(&words);
    let model = BertModel::new(BertConfig::tiny(vocab.len(), MAX_LEN, 2), 5);
    let mut hook = QatHook::calibration_only(quant);
    for i in 0..6 {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, &example(i), &mut hook)
            .expect("calibration");
    }
    Arc::new(
        EngineBuilder::new(TaskKind::Sst2)
            .vocab(vocab, MAX_LEN)
            .backend(kind)
            .batch_size(64)
            .build_with_hook(&model, &hook)
            .expect("engine"),
    )
}
