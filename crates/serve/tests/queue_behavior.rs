//! `BatchQueue` flush-trigger tests: max-batch reached, max-delay expiry,
//! shutdown drain, oversized requests, poison isolation and the simulated
//! cost split.

mod common;

use common::{engine, example};
use fqbert_runtime::BackendKind;
use fqbert_serve::{BatchPolicy, BatchQueue, ServeError};
use std::time::Duration;

#[test]
fn max_batch_reached_flushes_one_merged_window() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 4,
            // A delay budget so large that only the max-batch trigger can
            // explain a flush.
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let tickets: Vec<_> = (0..4).map(|i| queue.submit(vec![example(i)])).collect();
    for ticket in tickets {
        let response = ticket.wait().expect("served");
        assert_eq!(response.results.len(), 1);
        assert_eq!(
            response.flushed_batch, 4,
            "all four requests must ride one flush"
        );
        assert!(response.cost.is_none(), "int backend charges no cost");
    }
    let stats = queue.stats();
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.sequences, 4);
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.largest_flush, 4);
    assert!((stats.mean_flush() - 4.0).abs() < f64::EPSILON);
}

#[test]
fn max_delay_expiry_flushes_a_partial_window() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 1000,
            max_delay: Duration::from_millis(30),
            max_queue: usize::MAX,
        },
    );
    let first = queue.submit(vec![example(0)]);
    let second = queue.submit(vec![example(1)]);
    let first = first.wait().expect("served");
    let second = second.wait().expect("served");
    // The window could not have filled (max_batch 1000): only the delay
    // expiry explains these flushes.
    assert!(first.flushed_batch >= 1 && first.flushed_batch <= 2);
    assert_eq!(first.results.len(), 1);
    assert_eq!(second.results.len(), 1);
    let stats = queue.stats();
    assert_eq!(stats.sequences, 2);
    assert!(stats.flushes >= 1 && stats.flushes <= 2);
}

#[test]
fn shutdown_drains_queued_requests_and_rejects_new_ones() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 1000,
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    // Far below max_batch and far before the deadline: these requests sit
    // queued until shutdown drains them.
    let tickets: Vec<_> = (0..3).map(|i| queue.submit(vec![example(i)])).collect();
    queue.shutdown();
    for ticket in tickets {
        let response = ticket.wait().expect("drained, not dropped");
        assert_eq!(response.results.len(), 1);
    }
    let late = queue.submit(vec![example(9)]).wait();
    assert!(
        matches!(late, Err(ServeError::ShuttingDown)),
        "post-shutdown submits must be rejected: {late:?}"
    );
    // Idempotent.
    queue.shutdown();
}

#[test]
fn oversized_request_flushes_alone_and_empty_request_resolves_immediately() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 2,
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let big: Vec<_> = (0..5).map(example).collect();
    let response = queue.classify(big).expect("served");
    assert_eq!(response.results.len(), 5, "requests are never split");
    assert_eq!(response.flushed_batch, 5);

    let empty = queue.classify(Vec::new()).expect("empty request");
    assert!(empty.results.is_empty());
    assert_eq!(empty.flushed_batch, 0);
}

#[test]
fn poisoned_window_fails_only_the_offending_request() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let mut poison = example(1);
    for m in poison.attention_mask.iter_mut() {
        *m = 0;
    }
    let good = queue.submit(vec![example(0)]);
    let bad = queue.submit(vec![poison]);
    let filler_a = queue.submit(vec![example(2)]);
    let filler_b = queue.submit(vec![example(3)]);

    let good = good.wait().expect("valid request must survive the window");
    assert_eq!(good.results.len(), 1);
    let err = bad.wait().expect_err("all-padding request must fail");
    assert!(matches!(err, ServeError::Runtime(_)), "{err}");
    assert!(filler_a.wait().is_ok());
    assert!(filler_b.wait().is_ok());
}

#[test]
fn expired_deadline_fails_the_request_without_a_flush_slot() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 2,
            // The window stays open long enough for a 1 ms deadline to
            // expire before the flush drains the queue.
            max_delay: Duration::from_millis(200),
            max_queue: usize::MAX,
        },
    );
    let doomed = queue.submit_with_deadline(vec![example(0)], Some(Duration::from_millis(1)));
    std::thread::sleep(Duration::from_millis(30));
    // A window-filling request triggers the flush; the expired request in
    // front of it must not take one of the two slots.
    let filler = queue.submit(vec![example(1), example(2)]);
    let err = doomed.wait().expect_err("expired request must fail");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    assert_eq!(err.kind(), "deadline_exceeded");
    let filler = filler.wait().expect("served");
    assert_eq!(filler.results.len(), 2);
    assert_eq!(
        filler.flushed_batch, 2,
        "expired request must not occupy a flush slot"
    );
    let stats = queue.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.sequences, 2, "expired sequences are never classified");
}

#[test]
fn deadline_errors_arrive_at_the_deadline_not_at_window_close() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 1000,
            // A 30 s window: only a deadline-driven wake-up explains the
            // error arriving quickly.
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let start = std::time::Instant::now();
    let err = queue
        .submit_with_deadline(vec![example(0)], Some(Duration::from_millis(50)))
        .wait()
        .expect_err("lone short-deadline request must expire");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline error took {:?} — the worker slept through the deadline",
        start.elapsed()
    );
}

#[test]
fn generous_deadlines_do_not_change_serving() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 2,
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let a = queue.submit_with_deadline(vec![example(0)], Some(Duration::from_secs(60)));
    let b = queue.submit_with_deadline(vec![example(1)], None);
    assert_eq!(a.wait().expect("served").results.len(), 1);
    assert_eq!(b.wait().expect("served").results.len(), 1);
    assert_eq!(queue.stats().expired, 0);
}

#[test]
fn full_queue_sheds_new_requests_with_server_overloaded() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            // Nothing can trigger a flush before shutdown (the window needs
            // 16 sequences and has a 30 s budget), so the queue fills to
            // exactly the bound and holds there — deterministically.
            max_batch: 16,
            max_delay: Duration::from_secs(30),
            max_queue: 8,
        },
    );
    let queued: Vec<_> = (0..8).map(|i| queue.submit(vec![example(i)])).collect();
    let shed: Vec<_> = (0..4).map(|i| queue.submit(vec![example(i)])).collect();
    for ticket in shed {
        let err = ticket.wait().expect_err("over-bound submit must be shed");
        assert!(matches!(err, ServeError::ServerOverloaded), "{err}");
        assert_eq!(err.kind(), "server_overloaded");
    }
    // Admitted requests are unaffected: shutdown drains all eight.
    queue.shutdown();
    for ticket in queued {
        assert_eq!(ticket.wait().expect("drained").results.len(), 1);
    }
    let stats = queue.stats();
    assert_eq!(stats.shed, 4);
    assert_eq!(stats.sequences, 8, "shed sequences are never classified");
    assert_eq!(
        stats.largest_flush, 8,
        "the queue held exactly the bound, never more"
    );
    assert_eq!(stats.expired, 0);
    // The same counters are live in the queue's telemetry registry.
    let snapshot = queue.telemetry().snapshot();
    assert_eq!(snapshot.counter("queue.shed"), Some(4));
    assert_eq!(snapshot.counter("queue.sequences"), Some(8));
    assert_eq!(snapshot.gauge("queue.depth"), Some(0), "drained to empty");
}

#[test]
fn requests_larger_than_the_bound_are_shed_even_on_an_empty_queue() {
    let queue = BatchQueue::start(
        engine(BackendKind::Int),
        BatchPolicy {
            max_batch: 4,
            max_delay: Duration::from_secs(30),
            max_queue: 2,
        },
    );
    // Requests are never split, so a 3-sequence request can never fit a
    // 2-sequence bound.
    let err = queue
        .classify((0..3).map(example).collect())
        .expect_err("oversized request must be shed");
    assert!(matches!(err, ServeError::ServerOverloaded), "{err}");
    // A fitting request still rides normally afterwards.
    let queued = queue.submit(vec![example(0), example(1)]);
    queue.shutdown();
    assert_eq!(queued.wait().expect("served").results.len(), 2);
    assert_eq!(queue.stats().shed, 1);
}

#[test]
fn sim_queue_reports_per_request_costs_that_sum_to_the_flush() {
    let queue = BatchQueue::start(
        engine(BackendKind::Sim),
        BatchPolicy {
            max_batch: 3,
            max_delay: Duration::from_secs(30),
            max_queue: usize::MAX,
        },
    );
    let a = queue.submit(vec![example(0), example(1)]);
    let b = queue.submit(vec![example(2)]);
    let a = a.wait().expect("served");
    let b = b.wait().expect("served");
    assert_eq!(a.flushed_batch, 3);
    let cost_a = a.cost.expect("sim cost for request a");
    let cost_b = b.cost.expect("sim cost for request b");
    assert!(cost_a.total_cycles > 0 && cost_b.total_cycles > 0);
    // Each request is billed for exactly its own sequences; the engine run
    // directly on the same inputs must charge the same.
    let engine = queue.engine().clone();
    let direct = engine
        .classify_batch(&fqbert_runtime::EncodedBatch::from_examples(vec![
            example(0),
            example(1),
        ]))
        .expect("direct");
    assert_eq!(
        direct.cost.expect("direct cost").total_cycles,
        cost_a.total_cycles
    );
    // Per-sequence costs from the scored API line up too.
    let scored = engine
        .classify_scored(&fqbert_runtime::EncodedBatch::from_examples(vec![example(
            2,
        )]))
        .expect("scored");
    assert_eq!(
        scored.results[0].cost.expect("seq cost").total_cycles,
        cost_b.total_cycles
    );
}
