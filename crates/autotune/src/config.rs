//! The searchable bit-width assignment: one weight width per layer per
//! matrix site.
//!
//! [`BitConfig`] is the genome of the search and the unit every oracle
//! consumes: the cycle model prices it, the accuracy evaluator assembles an
//! integer model from it, and the CLI round-trips it as text (`Display` /
//! `FromStr`), e.g. `448888/444444` for a two-layer model whose first layer
//! keeps Q/K at 4 bits and everything else at 8.

use crate::error::{AutotuneError, Result};
use fqbert_quant::{LayerBits, LAYER_SITES};
use std::fmt;
use std::str::FromStr;

/// Per-layer, per-site weight bit-width assignment for a whole encoder
/// stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitConfig {
    /// One [`LayerBits`] per encoder layer, in layer order.
    pub layers: Vec<LayerBits>,
}

impl BitConfig {
    /// Every site of every layer at the same width.
    pub fn uniform(layers: usize, bits: u32) -> Self {
        Self {
            layers: vec![LayerBits::uniform(bits); layers],
        }
    }

    /// Number of encoder layers covered.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of independently searchable sites.
    pub fn num_sites(&self) -> usize {
        self.layers.len() * LAYER_SITES
    }

    /// The width of flat site `index` (layer-major, site order of
    /// [`fqbert_quant::LAYER_SITE_NAMES`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_sites()`.
    pub fn get(&self, index: usize) -> u32 {
        self.layers[index / LAYER_SITES].get(index % LAYER_SITES)
    }

    /// Sets the width of flat site `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_sites()`.
    pub fn set(&mut self, index: usize, bits: u32) {
        self.layers[index / LAYER_SITES].set(index % LAYER_SITES, bits);
    }

    /// Widest site anywhere in the stack (the artifact's headline width).
    pub fn max_bits(&self) -> u32 {
        self.layers
            .iter()
            .map(LayerBits::max_bits)
            .max()
            .unwrap_or(0)
    }

    /// `Some(bits)` when every site of every layer shares one width.
    pub fn uniform_bits(&self) -> Option<u32> {
        let first = self.layers.first()?.uniform_bits()?;
        self.layers
            .iter()
            .all(|l| l.uniform_bits() == Some(first))
            .then_some(first)
    }

    /// Total weight bits across the stack, the storage-cost tiebreaker used
    /// by the search when two configs price identically in cycles.
    pub fn total_bits(&self) -> u64 {
        self.layers
            .iter()
            .flat_map(|l| l.as_array())
            .map(u64::from)
            .sum()
    }

    /// Checks the assignment is non-empty and every width representable.
    ///
    /// # Errors
    ///
    /// Returns [`AutotuneError::InvalidConfig`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<()> {
        if self.layers.is_empty() {
            return Err(AutotuneError::InvalidConfig(
                "a bit configuration needs at least one layer".to_string(),
            ));
        }
        for (l, bits) in self.layers.iter().enumerate() {
            bits.validate()
                .map_err(|e| AutotuneError::InvalidConfig(format!("layer {l}: {e}")))?;
        }
        Ok(())
    }
}

impl fmt::Display for BitConfig {
    /// One digit per site, six digits per layer, layers joined with `/`:
    /// `448888/444444`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, layer) in self.layers.iter().enumerate() {
            if l > 0 {
                f.write_str("/")?;
            }
            for bits in layer.as_array() {
                write!(f, "{bits}")?;
            }
        }
        Ok(())
    }
}

impl FromStr for BitConfig {
    type Err = AutotuneError;

    fn from_str(s: &str) -> Result<Self> {
        let mut layers = Vec::new();
        for (l, part) in s.split('/').enumerate() {
            let digits: Vec<u32> = part
                .chars()
                .map(|c| {
                    c.to_digit(10).ok_or_else(|| {
                        AutotuneError::InvalidConfig(format!(
                            "layer {l}: `{c}` is not a bit-width digit"
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            if digits.len() != LAYER_SITES {
                return Err(AutotuneError::InvalidConfig(format!(
                    "layer {l}: `{part}` has {} digits, expected {LAYER_SITES}",
                    digits.len()
                )));
            }
            let mut array = [0u32; LAYER_SITES];
            array.copy_from_slice(&digits);
            layers.push(LayerBits::from_array(array));
        }
        let config = Self { layers };
        config.validate()?;
        Ok(config)
    }
}

impl fqbert_bench::ToJson for BitConfig {
    fn to_json(&self) -> String {
        fqbert_bench::ToJson::to_json(&self.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let mut cfg = BitConfig::uniform(2, 4);
        cfg.set(2, 8); // layer 0, site v
        cfg.set(9, 2); // layer 1, site attn_output
        let text = cfg.to_string();
        assert_eq!(text, "448444/444244");
        assert_eq!(text.parse::<BitConfig>().unwrap(), cfg);
        assert_eq!(cfg.max_bits(), 8);
        assert_eq!(cfg.uniform_bits(), None);
        assert_eq!(BitConfig::uniform(3, 4).uniform_bits(), Some(4));
    }

    #[test]
    fn flat_indexing_is_layer_major() {
        let mut cfg = BitConfig::uniform(2, 4);
        cfg.set(7, 8);
        assert_eq!(cfg.layers[1].k, 8);
        assert_eq!(cfg.get(7), 8);
        assert_eq!(cfg.num_sites(), 12);
        assert_eq!(cfg.total_bits(), 11 * 4 + 8);
    }

    #[test]
    fn malformed_texts_are_rejected() {
        assert!("44844".parse::<BitConfig>().is_err(), "five digits");
        assert!("44x444".parse::<BitConfig>().is_err(), "non-digit");
        assert!("444444/44".parse::<BitConfig>().is_err(), "short layer");
        assert!("944444".parse::<BitConfig>().is_err(), "out of range");
        assert!("414444".parse::<BitConfig>().is_err(), "below range");
        assert!("".parse::<BitConfig>().is_err(), "empty");
    }
}
