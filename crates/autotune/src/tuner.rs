//! Candidate assembly and evaluation.
//!
//! The expensive part of mixed-precision search is *not* trying a candidate
//! — it is quantizing weights. [`Autotuner`] therefore quantizes every site
//! once per supported width up front (three uniform conversions through
//! [`fqbert_core::convert_mixed`], sharing one calibrated hook) and
//! assembles each candidate by cloning the pre-quantized [`IntLinear`]s into
//! [`IntEncoderLayer::from_quantized_parts`]. Accuracy comes from running
//! the assembled integer model over a held-out evaluation set; cycles come
//! analytically from [`fqbert_accel::cycle_model::estimate_latency_mixed`],
//! which needs no model at all.

use crate::config::BitConfig;
use crate::error::{AutotuneError, Result};
use fqbert_accel::cycle_model::estimate_latency_mixed;
use fqbert_accel::dataflow::EncoderShape;
use fqbert_accel::AcceleratorConfig;
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::{convert_mixed, IntBertModel, IntEncoderLayer, IntLinear, QatHook};
use fqbert_nlp::{accuracy, Example};
use fqbert_quant::LAYER_SITES;

/// The weight widths the search explores, narrowest first. These are the
/// widths the v2 artifact format packs natively (≤ 4 bits nibble-packed,
/// 8 bits byte-per-code) and the BIM executes (≤ 4 bits at full rate,
/// wider nibble-split at half rate).
pub const SEARCH_WIDTHS: [u32; 3] = [2, 4, 8];

/// One evaluated bit assignment: the point the Pareto front is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The evaluated assignment.
    pub config: BitConfig,
    /// Accuracy in percent on the tuner's evaluation set.
    pub accuracy: f64,
    /// Simulated accelerator cycles for one evaluation-length sequence.
    pub cycles: u64,
}

/// Prices a [`BitConfig`] in simulated accelerator cycles.
#[derive(Debug, Clone)]
pub struct CycleOracle {
    accel: AcceleratorConfig,
    shape: EncoderShape,
}

impl CycleOracle {
    /// Builds an oracle for sequences of `seq_len` tokens through the given
    /// model architecture on the given accelerator.
    pub fn new(accel: AcceleratorConfig, config: &BertConfig, seq_len: usize) -> Self {
        Self {
            accel,
            shape: EncoderShape {
                seq_len,
                hidden: config.hidden,
                intermediate: config.intermediate,
                heads: config.heads,
            },
        }
    }

    /// Total simulated cycles of one inference under `config`.
    pub fn cycles(&self, config: &BitConfig) -> u64 {
        estimate_latency_mixed(&self.accel, &self.shape, &config.layers).total_cycles
    }
}

/// Pre-quantized site bank plus evaluation set: everything needed to turn a
/// [`BitConfig`] into a [`Candidate`].
pub struct Autotuner {
    /// One fully quantized model per entry of [`SEARCH_WIDTHS`]; the site
    /// bank candidates are assembled from.
    banks: Vec<IntBertModel>,
    eval: Vec<Example>,
    oracle: CycleOracle,
}

impl Autotuner {
    /// Quantizes `model` once per supported width using the calibrated
    /// `hook` (per-site clip tuning runs at each site's width) and keeps
    /// `eval` as the accuracy oracle's dataset.
    ///
    /// # Errors
    ///
    /// Returns an error when `eval` is empty, the hook lacks calibration, or
    /// quantization fails.
    pub fn new(
        model: &BertModel,
        hook: &QatHook,
        eval: Vec<Example>,
        accel: AcceleratorConfig,
        seq_len: usize,
    ) -> Result<Self> {
        if eval.is_empty() {
            return Err(AutotuneError::Search(
                "the evaluation set must not be empty".to_string(),
            ));
        }
        let layers = model.config().layers;
        let banks = SEARCH_WIDTHS
            .iter()
            .map(|&bits| {
                let uniform = BitConfig::uniform(layers, bits);
                convert_mixed(model, hook, &uniform.layers).map_err(AutotuneError::from)
            })
            .collect::<Result<Vec<_>>>()?;
        let oracle = CycleOracle::new(accel, model.config(), seq_len);
        Ok(Self {
            banks,
            eval,
            oracle,
        })
    }

    /// Number of encoder layers of the tuned model.
    pub fn num_layers(&self) -> usize {
        self.banks[0].config().layers
    }

    /// Number of independently searchable sites.
    pub fn num_sites(&self) -> usize {
        self.num_layers() * LAYER_SITES
    }

    /// The evaluation examples accuracy is measured on.
    pub fn eval_set(&self) -> &[Example] {
        &self.eval
    }

    /// The cycle oracle candidates are priced with.
    pub fn oracle(&self) -> &CycleOracle {
        &self.oracle
    }

    fn bank_for(&self, bits: u32) -> Result<&IntBertModel> {
        SEARCH_WIDTHS
            .iter()
            .position(|&w| w == bits)
            .map(|i| &self.banks[i])
            .ok_or_else(|| {
                AutotuneError::InvalidConfig(format!(
                    "weight width {bits} is not searchable (supported: {SEARCH_WIDTHS:?})"
                ))
            })
    }

    /// Assembles the integer model realising `config` from the
    /// pre-quantized site bank. The result is bit-identical to converting
    /// the float model directly with the same assignment.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations (wrong layer count,
    /// unsupported width).
    pub fn assemble(&self, config: &BitConfig) -> Result<IntBertModel> {
        config.validate()?;
        if config.num_layers() != self.num_layers() {
            return Err(AutotuneError::InvalidConfig(format!(
                "configuration covers {} layers, model has {}",
                config.num_layers(),
                self.num_layers()
            )));
        }
        let base = &self.banks[0];
        let cfg = base.config().clone();
        let mut layers = Vec::with_capacity(cfg.layers);
        for (l, bits) in config.layers.iter().enumerate() {
            let pick = |site_bits: u32, select: fn(&IntEncoderLayer) -> &IntLinear| {
                self.bank_for(site_bits)
                    .map(|bank| select(&bank.layers[l]).clone())
            };
            let reference = &base.layers[l];
            layers.push(IntEncoderLayer::from_quantized_parts(
                pick(bits.q, |layer| &layer.query)?,
                pick(bits.k, |layer| &layer.key)?,
                pick(bits.v, |layer| &layer.value)?,
                pick(bits.attn_output, |layer| &layer.attn_output)?,
                pick(bits.ffn1, |layer| &layer.ffn1)?,
                pick(bits.ffn2, |layer| &layer.ffn2)?,
                cfg.heads,
                cfg.head_dim(),
                &reference.scales(),
                reference.attn_layer_norm().clone(),
                reference.ffn_layer_norm().clone(),
            )?);
        }
        Ok(IntBertModel::from_parts(
            cfg,
            base.word_embeddings().clone(),
            base.position_embeddings().clone(),
            base.segment_embeddings().clone(),
            base.embedding_gamma().clone(),
            base.embedding_beta().clone(),
            base.classifier_weight().clone(),
            base.classifier_bias().clone(),
            base.embedding_out_scale(),
            layers,
            config.max_bits(),
        ))
    }

    /// Evaluates one assignment: assembles the model, measures accuracy on
    /// the evaluation set, and prices the assignment in simulated cycles.
    ///
    /// # Errors
    ///
    /// Propagates assembly and inference errors.
    pub fn evaluate(&self, config: &BitConfig) -> Result<Candidate> {
        let model = self.assemble(config)?;
        let predictions = model.predict_batch(&self.eval)?;
        let labels: Vec<usize> = self.eval.iter().map(|e| e.label).collect();
        Ok(Candidate {
            config: config.clone(),
            accuracy: accuracy(&predictions, &labels),
            cycles: self.oracle.cycles(config),
        })
    }
}
