//! The bit-width search loop.
//!
//! Two phases over the [`Autotuner`]'s oracles:
//!
//! 1. **Greedy descent from uniform w8** — sites are narrowed one at a time
//!    in sensitivity order (least sensitive first, 8→4 then 4→2), keeping a
//!    move only while accuracy stays at or above the floor. This is the
//!    Q-BERT-style deterministic core.
//! 2. **Evolutionary refinement** (optional) — a seeded hill climb that
//!    mutates the incumbent at random sites and widths, escaping the greedy
//!    order's local minimum while the evaluation budget lasts. All
//!    randomness flows from the in-repo xoshiro generator, so a fixed seed
//!    reproduces the search exactly.
//!
//! Every distinct evaluated configuration is recorded; the outcome carries
//! the feasible optimum, the three uniform baselines, and the accuracy ×
//! cycles Pareto front over everything the search looked at.

use crate::config::BitConfig;
use crate::error::{AutotuneError, Result};
use crate::sensitivity::{profile, SensitivityReport};
use crate::tuner::{Autotuner, Candidate, SEARCH_WIDTHS};
use fqbert_quant::LAYER_SITES;
use fqbert_tensor::RngSource;
use std::collections::BTreeMap;

/// Knobs of one search run.
#[derive(Debug, Clone)]
pub struct SearchSettings {
    /// Accuracy floor in percent. `None` derives it as the worse of the
    /// uniform w4 and w8 accuracies — the tightest floor that is always
    /// attainable, which guarantees the search beats uniform w8 cycles.
    pub floor: Option<f64>,
    /// Fresh candidate evaluations allowed in the greedy and refinement
    /// phases combined (uniform baselines and sensitivity probes are billed
    /// separately and re-used free of charge).
    pub budget: usize,
    /// Seed of the refinement RNG; the whole run is a pure function of
    /// (model, calibration, eval set, settings).
    pub seed: u64,
    /// Whether to run the evolutionary refinement after the greedy descent.
    pub refine: bool,
}

impl Default for SearchSettings {
    fn default() -> Self {
        Self {
            floor: None,
            budget: 48,
            seed: 7,
            refine: true,
        }
    }
}

/// Everything a search run produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Feasible configuration with the fewest simulated cycles (ties break
    /// to higher accuracy, then fewer total weight bits).
    pub best: Candidate,
    /// The accuracy floor the search enforced (derived or user-set).
    pub floor: f64,
    /// Uniform baselines, one per [`SEARCH_WIDTHS`] entry (w2, w4, w8).
    pub uniforms: Vec<Candidate>,
    /// The per-site sensitivity profile that ordered the greedy descent.
    pub sensitivity: SensitivityReport,
    /// Every distinct configuration evaluated, in evaluation order.
    pub evaluated: Vec<Candidate>,
    /// Accuracy × cycles Pareto front over [`SearchOutcome::evaluated`],
    /// sorted by ascending cycles.
    pub front: Vec<Candidate>,
}

impl SearchOutcome {
    /// The uniform baseline at `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not one of [`SEARCH_WIDTHS`].
    pub fn uniform(&self, bits: u32) -> &Candidate {
        let i = SEARCH_WIDTHS
            .iter()
            .position(|&w| w == bits)
            .expect("bits must be a search width");
        &self.uniforms[i]
    }

    /// Cycle speedup of the best configuration over uniform w8.
    pub fn speedup_vs_w8(&self) -> f64 {
        self.uniform(8).cycles as f64 / self.best.cycles as f64
    }
}

/// Deduplicating evaluation cache: fresh evaluations are appended to
/// `evaluated` and (beyond the seeded baselines) counted against the budget.
struct Memo {
    evaluated: Vec<Candidate>,
    index: BTreeMap<String, usize>,
    spent: usize,
}

impl Memo {
    fn new() -> Self {
        Self {
            evaluated: Vec::new(),
            index: BTreeMap::new(),
            spent: 0,
        }
    }

    fn seed(&mut self, candidate: Candidate) {
        let key = candidate.config.to_string();
        if !self.index.contains_key(&key) {
            self.index.insert(key, self.evaluated.len());
            self.evaluated.push(candidate);
        }
    }

    fn contains(&self, config: &BitConfig) -> bool {
        self.index.contains_key(&config.to_string())
    }

    fn eval(&mut self, tuner: &Autotuner, config: &BitConfig) -> Result<Candidate> {
        let key = config.to_string();
        if let Some(&i) = self.index.get(&key) {
            return Ok(self.evaluated[i].clone());
        }
        let candidate = tuner.evaluate(config)?;
        self.spent += 1;
        self.index.insert(key, self.evaluated.len());
        self.evaluated.push(candidate.clone());
        Ok(candidate)
    }
}

/// `a` strictly better than `b` for the feasible objective.
fn better(a: &Candidate, b: &Candidate) -> bool {
    (a.cycles, -a.accuracy, a.config.total_bits()) < (b.cycles, -b.accuracy, b.config.total_bits())
}

/// Non-dominated subset of `candidates`, sorted by ascending cycles.
pub fn pareto_front(candidates: &[Candidate]) -> Vec<Candidate> {
    let mut sorted: Vec<&Candidate> = candidates.iter().collect();
    sorted.sort_by(|a, b| {
        a.cycles
            .cmp(&b.cycles)
            .then(b.accuracy.total_cmp(&a.accuracy))
    });
    let mut front: Vec<Candidate> = Vec::new();
    let mut best_accuracy = f64::NEG_INFINITY;
    for c in sorted {
        if c.accuracy > best_accuracy {
            best_accuracy = c.accuracy;
            front.push(c.clone());
        }
    }
    front
}

/// Runs the full search: uniform baselines → sensitivity profile → greedy
/// descent → optional evolutionary refinement.
///
/// # Errors
///
/// Propagates evaluation errors, and returns [`AutotuneError::Search`] when
/// no evaluated configuration reaches the accuracy floor (only possible with
/// a user-supplied floor above every uniform baseline).
pub fn search(tuner: &Autotuner, settings: &SearchSettings) -> Result<SearchOutcome> {
    let layers = tuner.num_layers();
    let mut memo = Memo::new();

    let uniforms: Vec<Candidate> = SEARCH_WIDTHS
        .iter()
        .map(|&bits| memo.eval(tuner, &BitConfig::uniform(layers, bits)))
        .collect::<Result<_>>()?;
    let floor = settings.floor.unwrap_or_else(|| {
        let w4 = &uniforms[1];
        let w8 = &uniforms[2];
        w4.accuracy.min(w8.accuracy)
    });

    // Sensitivity probes double as the greedy descent's first-step
    // evaluations, so seed them into the cache (cycles are analytic and
    // match what `Autotuner::evaluate` would report).
    let sensitivity = profile(tuner, 8, 4)?;
    for site in &sensitivity.sites {
        let mut config = BitConfig::uniform(layers, 8);
        config.set(site.layer * LAYER_SITES + site.site, 4);
        let cycles = tuner.oracle().cycles(&config);
        memo.seed(Candidate {
            config,
            accuracy: site.accuracy,
            cycles,
        });
    }
    memo.spent = 0; // the budget covers greedy + refinement only

    // Greedy descent: narrow sites least-sensitive-first, 8→4 then 4→2,
    // keeping every move that holds the floor.
    let order = sensitivity.descent_order();
    let mut current = BitConfig::uniform(layers, 8);
    for narrow_to in [4u32, 2u32] {
        for &site in &order {
            if memo.spent >= settings.budget {
                break;
            }
            if current.get(site) <= narrow_to {
                continue;
            }
            let mut trial = current.clone();
            trial.set(site, narrow_to);
            if memo.eval(tuner, &trial)?.accuracy >= floor {
                current = trial;
            }
        }
    }

    let best_of = |memo: &Memo| -> Option<Candidate> {
        memo.evaluated.iter().filter(|c| c.accuracy >= floor).fold(
            None,
            |best: Option<Candidate>, c| match best {
                Some(b) if !better(c, &b) => Some(b),
                _ => Some(c.clone()),
            },
        )
    };

    // Evolutionary refinement: seeded hill climb around the incumbent,
    // occasionally restarting from another feasible front member.
    if settings.refine {
        let mut rng = RngSource::seed_from_u64(settings.seed);
        let mut parent = best_of(&memo)
            .map(|c| c.config)
            .unwrap_or_else(|| current.clone());
        let mut misses = 0usize;
        while memo.spent < settings.budget && misses < 4 * settings.budget {
            let mut trial = parent.clone();
            let mutations = 1 + (rng.next_u64() % 2) as usize;
            for _ in 0..mutations {
                let site = rng.usize_in(0, tuner.num_sites());
                let width = SEARCH_WIDTHS[rng.usize_in(0, SEARCH_WIDTHS.len())];
                trial.set(site, width);
            }
            if memo.contains(&trial) {
                misses += 1;
                continue;
            }
            let incumbent = best_of(&memo);
            let candidate = memo.eval(tuner, &trial)?;
            let improved = candidate.accuracy >= floor
                && incumbent.as_ref().is_none_or(|b| better(&candidate, b));
            if improved {
                parent = candidate.config.clone();
            } else if rng.bool_with(0.25) {
                // Diversify: restart from a random feasible front member.
                let front = pareto_front(&memo.evaluated);
                let feasible: Vec<&Candidate> =
                    front.iter().filter(|c| c.accuracy >= floor).collect();
                if !feasible.is_empty() {
                    parent = feasible[rng.usize_in(0, feasible.len())].config.clone();
                }
            }
        }
    }

    let best = best_of(&memo).ok_or_else(|| {
        AutotuneError::Search(format!(
            "no evaluated configuration reaches the accuracy floor {floor:.2}%"
        ))
    })?;
    let front = pareto_front(&memo.evaluated);
    Ok(SearchOutcome {
        best,
        floor,
        uniforms,
        sensitivity,
        evaluated: memo.evaluated,
        front,
    })
}
