//! Mixed-precision bit-width autotuning for FQ-BERT.
//!
//! The paper fixes one global weight width (4 bits); its accelerator,
//! however, executes every weight width from 2 to 8 — ≤ 4-bit weights on
//! the BIM's native 8b×4b multipliers, wider weights nibble-split at half
//! the MAC rate. That makes the *assignment* of widths to the six matrix
//! sites of every encoder layer a genuine design space: narrower sites
//! stream fewer DMA bytes, wider sites buy back accuracy, and the simulated
//! cycle model prices every choice.
//!
//! This crate searches that space (Q-BERT-style, see PAPERS.md):
//!
//! * [`BitConfig`] — the searchable assignment, CLI-round-trippable as
//!   `448888/444444`.
//! * [`Autotuner`] — pre-quantizes every site at every width once, then
//!   assembles and evaluates candidates cheaply; accuracy on a held-out set
//!   is the constraint, simulated cycles the objective.
//! * [`sensitivity::profile`] — per-site accuracy degradation, the descent
//!   order of the greedy phase.
//! * [`search`] — greedy descent from uniform w8 plus seeded evolutionary
//!   refinement; returns the feasible optimum and the full accuracy ×
//!   cycles Pareto front.
//!
//! The winning model is a standard [`fqbert_runtime::ModelArtifact`] (the
//! v2 format already stores per-linear widths), so it loads and serves
//! through the existing engine and registry unchanged.

pub mod config;
pub mod error;
pub mod search;
pub mod sensitivity;
pub mod tuner;

pub use config::BitConfig;
pub use error::{AutotuneError, Result};
pub use search::{pareto_front, search, SearchOutcome, SearchSettings};
pub use sensitivity::{SensitivityReport, SiteSensitivity};
pub use tuner::{Autotuner, Candidate, CycleOracle, SEARCH_WIDTHS};
