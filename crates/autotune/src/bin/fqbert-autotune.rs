//! `fqbert-autotune` — search per-layer/per-projection weight bit-widths
//! minimizing simulated accelerator cycles under an accuracy floor.
//!
//! ```text
//! fqbert-autotune [--task sst2|mnli] [--floor auto|PCT] [--budget N]
//!                 [--seed N] [--out PATH] [--no-refine]
//! ```
//!
//! Trains the task baseline (honouring `FQBERT_QUICK`), calibrates it on
//! dev examples, runs the mixed-precision search, prints the accuracy ×
//! cycles Pareto front, and (with `--out`) saves the winning model as a
//! standard v2 artifact that `fqbert-serve` loads unchanged.

use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_autotune::{search, Autotuner, SearchSettings};
use fqbert_bench::{markdown_table, ExperimentConfig};
use fqbert_core::QatHook;
use fqbert_nlp::Tokenizer;
use fqbert_quant::QuantConfig;
use fqbert_runtime::ModelArtifact;
use std::path::PathBuf;

/// Dev examples used for post-training calibration (matches the engine
/// builder pipeline).
const CALIBRATION_EXAMPLES: usize = 16;

fn usage() -> ! {
    eprintln!(
        "usage: fqbert-autotune [--task sst2|mnli] [--floor auto|PCT] [--budget N] \
         [--seed N] [--out PATH] [--no-refine]"
    );
    std::process::exit(2);
}

fn main() {
    let mut task_name = "sst2".to_string();
    let mut settings = SearchSettings::default();
    let mut out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut flag_value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--task" => task_name = flag_value("--task").to_lowercase(),
            "--floor" => {
                let value = flag_value("--floor");
                if value != "auto" {
                    let pct: f64 = value.parse().unwrap_or_else(|_| {
                        eprintln!("--floor must be `auto` or an accuracy percentage");
                        usage()
                    });
                    settings.floor = Some(pct);
                }
            }
            "--budget" => {
                settings.budget = flag_value("--budget").parse().unwrap_or_else(|_| {
                    eprintln!("--budget must be a non-negative integer");
                    usage()
                })
            }
            "--seed" => {
                settings.seed = flag_value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed must be an integer");
                    usage()
                })
            }
            "--out" => out = Some(PathBuf::from(flag_value("--out"))),
            "--no-refine" => settings.refine = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let experiment = ExperimentConfig::from_env();
    println!("training `{task_name}` baseline...");
    let task = match task_name.as_str() {
        "sst2" => experiment.train_sst2(),
        "mnli" => experiment.train_mnli().0,
        other => {
            eprintln!("unknown task `{other}` (supported: sst2, mnli)");
            usage();
        }
    };
    println!(
        "float dev accuracy: {:.2}% over {} examples",
        task.float_accuracy,
        task.dataset.dev.len()
    );

    // Post-training calibration on dev examples, the same scales the engine
    // builder would derive.
    let calib = task.dataset.dev.len().min(CALIBRATION_EXAMPLES);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for example in &task.dataset.dev[..calib] {
        let mut graph = Graph::new();
        let bound = task.model.bind(&mut graph);
        bound
            .forward(&mut graph, example, &mut hook)
            .expect("calibration forward");
    }

    let tuner = Autotuner::new(
        &task.model,
        &hook,
        task.dataset.dev.clone(),
        AcceleratorConfig::zcu111_n16_m16(),
        task.dataset.max_len,
    )
    .expect("tuner construction");

    println!(
        "searching {} sites (budget {}, seed {})...",
        tuner.num_sites(),
        settings.budget,
        settings.seed
    );
    let outcome = search(&tuner, &settings).expect("search");

    let rows: Vec<Vec<String>> = outcome
        .front
        .iter()
        .map(|c| {
            vec![
                c.config.to_string(),
                format!("{:.2}", c.accuracy),
                c.cycles.to_string(),
                format!("{:.2}x", outcome.uniform(8).cycles as f64 / c.cycles as f64),
            ]
        })
        .collect();
    println!("\nPareto front (floor {:.2}%):", outcome.floor);
    println!(
        "{}",
        markdown_table(&["config", "accuracy %", "cycles", "speedup vs w8"], &rows)
    );
    println!(
        "best: {} — {:.2}% at {} cycles ({:.2}x vs uniform w8, {} configs evaluated)",
        outcome.best.config,
        outcome.best.accuracy,
        outcome.best.cycles,
        outcome.speedup_vs_w8(),
        outcome.evaluated.len()
    );

    if let Some(path) = out {
        let model = tuner.assemble(&outcome.best.config).expect("assembly");
        let tokenizer = Tokenizer::new(task.dataset.vocab.clone(), task.dataset.max_len);
        ModelArtifact::new(task.dataset.task, model, tokenizer)
            .save(&path)
            .expect("artifact save");
        println!("saved mixed-precision artifact to {}", path.display());
    }
}
