//! Error type of the autotune crate.

use std::fmt;

/// Errors produced by bit-width search.
#[derive(Debug)]
pub enum AutotuneError {
    /// A bit configuration is malformed (wrong arity, unsupported width,
    /// unparsable text).
    InvalidConfig(String),
    /// The search cannot proceed (empty evaluation set, zero budget where
    /// one is required, no feasible candidate).
    Search(String),
    /// An error from the integer model / conversion layer.
    Core(fqbert_core::FqBertError),
    /// An error from the runtime layer (artifact I/O, engine assembly).
    Runtime(fqbert_runtime::RuntimeError),
}

impl fmt::Display for AutotuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid bit configuration: {msg}"),
            Self::Search(msg) => write!(f, "search failed: {msg}"),
            Self::Core(e) => write!(f, "model error: {e}"),
            Self::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for AutotuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fqbert_core::FqBertError> for AutotuneError {
    fn from(e: fqbert_core::FqBertError) -> Self {
        Self::Core(e)
    }
}

impl From<fqbert_runtime::RuntimeError> for AutotuneError {
    fn from(e: fqbert_runtime::RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

/// Convenience result alias for autotune operations.
pub type Result<T> = std::result::Result<T, AutotuneError>;
