//! Per-site sensitivity profiling.
//!
//! Q-BERT ranks layers by Hessian spectrum; without second-order machinery
//! the standard stand-in (and what this profiler implements) is the measured
//! accuracy degradation when a single site drops precision while everything
//! else stays wide. The resulting ranking — least sensitive first — is the
//! descent order of the greedy search: sites whose precision is free to cut
//! are cut first.

use crate::config::BitConfig;
use crate::error::Result;
use crate::tuner::Autotuner;
use fqbert_quant::{LAYER_SITES, LAYER_SITE_NAMES};

/// Accuracy impact of narrowing one site in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSensitivity {
    /// Encoder layer index.
    pub layer: usize,
    /// Site index within the layer ([`LAYER_SITE_NAMES`] order).
    pub site: usize,
    /// Human-readable site name, e.g. `ffn1`.
    pub site_name: &'static str,
    /// Accuracy (percent) with only this site narrowed.
    pub accuracy: f64,
    /// Baseline accuracy minus [`SiteSensitivity::accuracy`]; negative when
    /// narrowing happened to help.
    pub accuracy_drop: f64,
}

/// The full profile: one measurement per site, least sensitive first.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// Accuracy (percent) of the all-wide reference configuration.
    pub baseline_accuracy: f64,
    /// Width every site was held at while one site was narrowed.
    pub from_bits: u32,
    /// Width the probed site was narrowed to.
    pub probe_bits: u32,
    /// Per-site measurements sorted by ascending accuracy drop (ties broken
    /// by layer then site index, so the order is deterministic).
    pub sites: Vec<SiteSensitivity>,
}

impl SensitivityReport {
    /// Flat site indices in descent order (least sensitive first).
    pub fn descent_order(&self) -> Vec<usize> {
        self.sites
            .iter()
            .map(|s| s.layer * LAYER_SITES + s.site)
            .collect()
    }
}

/// Measures every site's isolated accuracy drop when narrowed from
/// `from_bits` to `probe_bits`, starting from the uniform `from_bits`
/// configuration. Costs `num_sites + 1` evaluations.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn profile(tuner: &Autotuner, from_bits: u32, probe_bits: u32) -> Result<SensitivityReport> {
    let layers = tuner.num_layers();
    let baseline = tuner.evaluate(&BitConfig::uniform(layers, from_bits))?;
    let mut sites = Vec::with_capacity(tuner.num_sites());
    for layer in 0..layers {
        for (site, site_name) in LAYER_SITE_NAMES.iter().enumerate() {
            let mut config = BitConfig::uniform(layers, from_bits);
            config.set(layer * LAYER_SITES + site, probe_bits);
            let candidate = tuner.evaluate(&config)?;
            sites.push(SiteSensitivity {
                layer,
                site,
                site_name,
                accuracy: candidate.accuracy,
                accuracy_drop: baseline.accuracy - candidate.accuracy,
            });
        }
    }
    // total_cmp gives a deterministic order even with equal drops; the
    // (layer, site) construction order above is the tiebreaker because
    // sort_by is stable.
    sites.sort_by(|a, b| a.accuracy_drop.total_cmp(&b.accuracy_drop));
    Ok(SensitivityReport {
        baseline_accuracy: baseline.accuracy,
        from_bits,
        probe_bits,
        sites,
    })
}
