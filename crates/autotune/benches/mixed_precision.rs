//! Mixed-precision search over the quick-eval tasks, emitting the accuracy
//! × simulated-cycles Pareto front.
//!
//! For each task (synthetic SST-2 and MNLI) this trains the float baseline
//! (honouring `FQBERT_QUICK`), calibrates it, runs the bit-width search,
//! and records the uniform w2/w4/w8 baselines, every front member, and the
//! feasible optimum. Besides the console output it emits machine-readable
//! `results/BENCH_mixed_precision.json` and the markdown table
//! `results/MIXED_PRECISION.md`; CI runs this in quick mode and asserts the
//! searched config beats uniform w8 cycles at no accuracy loss below the
//! floor.

use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_autotune::{search, Autotuner, Candidate, SearchOutcome, SearchSettings};
use fqbert_bench::{impl_to_json, markdown_table, save_json_in, ExperimentConfig};
use fqbert_core::QatHook;
use fqbert_quant::QuantConfig;
use std::path::Path;

/// Candidate evaluations allowed beyond baselines and sensitivity probes.
const BUDGET: usize = 32;

/// Search seed — fixed so the committed results regenerate bit-for-bit.
const SEED: u64 = 7;

struct FrontRow {
    config: String,
    accuracy: f64,
    cycles: u64,
    speedup_vs_w8: f64,
    feasible: bool,
}

impl_to_json!(FrontRow {
    config,
    accuracy,
    cycles,
    speedup_vs_w8,
    feasible
});

struct TaskReport {
    task: String,
    float_accuracy: f64,
    eval_examples: u64,
    floor: f64,
    budget: u64,
    seed: u64,
    evaluated: u64,
    uniforms: Vec<FrontRow>,
    best: FrontRow,
    front: Vec<FrontRow>,
}

impl_to_json!(TaskReport {
    task,
    float_accuracy,
    eval_examples,
    floor,
    budget,
    seed,
    evaluated,
    uniforms,
    best,
    front
});

struct Report {
    bench: String,
    quick: bool,
    tasks: Vec<TaskReport>,
}

impl_to_json!(Report {
    bench,
    quick,
    tasks
});

fn row(candidate: &Candidate, outcome: &SearchOutcome) -> FrontRow {
    FrontRow {
        config: candidate.config.to_string(),
        accuracy: candidate.accuracy,
        cycles: candidate.cycles,
        speedup_vs_w8: outcome.uniform(8).cycles as f64 / candidate.cycles as f64,
        feasible: candidate.accuracy >= outcome.floor,
    }
}

fn tune_task(name: &str, experiment: &ExperimentConfig) -> TaskReport {
    println!("[{name}] training float baseline...");
    let task = match name {
        "sst2" => experiment.train_sst2(),
        "mnli" => experiment.train_mnli().0,
        other => panic!("unknown task `{other}`"),
    };
    let calib = task.dataset.dev.len().min(16);
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for example in &task.dataset.dev[..calib] {
        let mut graph = Graph::new();
        let bound = task.model.bind(&mut graph);
        bound
            .forward(&mut graph, example, &mut hook)
            .expect("calibration forward");
    }
    let tuner = Autotuner::new(
        &task.model,
        &hook,
        task.dataset.dev.clone(),
        AcceleratorConfig::zcu111_n16_m16(),
        task.dataset.max_len,
    )
    .expect("tuner");
    let settings = SearchSettings {
        budget: BUDGET,
        seed: SEED,
        ..SearchSettings::default()
    };
    let outcome = search(&tuner, &settings).expect("search");
    println!(
        "[{name}] best {} — {:.2}% at {} cycles ({:.2}x vs w8, floor {:.2}%)",
        outcome.best.config,
        outcome.best.accuracy,
        outcome.best.cycles,
        outcome.speedup_vs_w8(),
        outcome.floor
    );
    TaskReport {
        task: task.dataset.task.to_string(),
        float_accuracy: task.float_accuracy,
        eval_examples: task.dataset.dev.len() as u64,
        floor: outcome.floor,
        budget: BUDGET as u64,
        seed: SEED,
        evaluated: outcome.evaluated.len() as u64,
        uniforms: outcome.uniforms.iter().map(|c| row(c, &outcome)).collect(),
        best: row(&outcome.best, &outcome),
        front: outcome.front.iter().map(|c| row(c, &outcome)).collect(),
    }
}

fn markdown(report: &Report) -> String {
    let mut out = String::from("# Mixed-precision bit-width search\n\n");
    out.push_str(
        "Accuracy × simulated-cycles Pareto fronts of the per-layer/per-projection \
         weight bit-width search (`fqbert-autotune`), per quick-eval task. Cycles are \
         one ZCU111 inference at the task's sequence length; the floor is the worse \
         of the uniform w4/w8 accuracies unless overridden.\n\n",
    );
    for task in &report.tasks {
        out.push_str(&format!(
            "## {} (floor {:.2}%, float baseline {:.2}%)\n\n",
            task.task, task.floor, task.float_accuracy
        ));
        let rows: Vec<Vec<String>> = task
            .front
            .iter()
            .map(|r| {
                vec![
                    format!("`{}`", r.config),
                    format!("{:.2}", r.accuracy),
                    r.cycles.to_string(),
                    format!("{:.2}x", r.speedup_vs_w8),
                    if r.config == task.best.config {
                        "**best**".to_string()
                    } else if r.feasible {
                        "yes".to_string()
                    } else {
                        "below floor".to_string()
                    },
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "config",
                "accuracy %",
                "cycles",
                "speedup vs w8",
                "feasible",
            ],
            &rows,
        ));
        out.push('\n');
    }
    out
}

fn main() {
    let experiment = ExperimentConfig::from_env();
    let quick = std::env::var("FQBERT_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let report = Report {
        bench: "mixed_precision".to_string(),
        quick,
        tasks: vec![
            tune_task("sst2", &experiment),
            tune_task("mnli", &experiment),
        ],
    };

    for task in &report.tasks {
        assert!(
            task.uniforms.len() + task.front.len() >= 3 && task.evaluated >= 3,
            "{}: the report must record at least 3 evaluated configs",
            task.task
        );
        assert!(
            task.best.speedup_vs_w8 > 1.0,
            "{}: the searched config must beat uniform w8 cycles",
            task.task
        );
        assert!(
            task.best.accuracy >= task.floor,
            "{}: the searched config must hold the accuracy floor",
            task.task
        );
    }

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path =
        save_json_in(&dir, "BENCH_mixed_precision", &report).expect("write BENCH_mixed_precision");
    println!("wrote {}", path.display());
    let md = dir.join("MIXED_PRECISION.md");
    std::fs::write(&md, markdown(&report)).expect("write MIXED_PRECISION.md");
    println!("wrote {}", md.display());
}
