//! Integration tests of the bit-width search: seeded reproducibility, the
//! beats-uniform-w8 guarantee, and artifact round-trips of searched models.

use fqbert_accel::AcceleratorConfig;
use fqbert_autograd::Graph;
use fqbert_autotune::{search, Autotuner, BitConfig, SearchSettings};
use fqbert_bert::{BertConfig, BertModel};
use fqbert_core::QatHook;
use fqbert_nlp::{Example, TaskKind, Tokenizer, Vocab};
use fqbert_quant::QuantConfig;
use fqbert_runtime::{BackendKind, EngineBuilder, ModelArtifact};

const MAX_LEN: usize = 12;

fn example(i: usize) -> Example {
    let tokens = vec![2, 4 + i % 10, 5 + (i * 3) % 10, 7 + (i * 5) % 9, 3];
    Example {
        segment_ids: vec![0; tokens.len()],
        attention_mask: vec![1; tokens.len()],
        token_ids: tokens,
        label: i % 2,
    }
}

/// A tiny calibrated setup: untrained model (accuracy is meaningless but
/// deterministic, which is all these tests need) plus a dev set.
fn tuner(seed: u64) -> Autotuner {
    let model = BertModel::new(BertConfig::tiny(30, MAX_LEN, 2), seed);
    let examples: Vec<Example> = (0..10).map(example).collect();
    let mut hook = QatHook::calibration_only(QuantConfig::fq_bert());
    for ex in &examples[..6] {
        let mut graph = Graph::new();
        let bound = model.bind(&mut graph);
        bound
            .forward(&mut graph, ex, &mut hook)
            .expect("calibration");
    }
    Autotuner::new(
        &model,
        &hook,
        examples,
        AcceleratorConfig::zcu111_n16_m16(),
        MAX_LEN,
    )
    .expect("tuner")
}

#[test]
fn same_seed_reproduces_the_search_exactly() {
    let settings = SearchSettings {
        budget: 16,
        seed: 42,
        ..SearchSettings::default()
    };
    let a = search(&tuner(3), &settings).expect("first run");
    let b = search(&tuner(3), &settings).expect("second run");
    assert_eq!(a.best.config, b.best.config);
    assert_eq!(a.best.cycles, b.best.cycles);
    assert_eq!(a.best.accuracy, b.best.accuracy);
    let configs = |outcome: &fqbert_autotune::SearchOutcome| -> Vec<String> {
        outcome
            .evaluated
            .iter()
            .map(|c| c.config.to_string())
            .collect()
    };
    assert_eq!(
        configs(&a),
        configs(&b),
        "the evaluation trajectory must be a pure function of the seed"
    );
}

#[test]
fn search_beats_uniform_w8_cycles_at_the_floor() {
    let t = tuner(5);
    let outcome = search(
        &t,
        &SearchSettings {
            budget: 12,
            seed: 1,
            ..SearchSettings::default()
        },
    )
    .expect("search");
    assert!(outcome.best.accuracy >= outcome.floor);
    assert!(
        outcome.best.cycles < outcome.uniform(8).cycles,
        "best {} cycles must beat uniform w8 {}",
        outcome.best.cycles,
        outcome.uniform(8).cycles
    );
    assert!(outcome.speedup_vs_w8() > 1.0);
    assert_eq!(outcome.uniforms.len(), 3);
    assert!(outcome.evaluated.len() >= 3);
    assert!(!outcome.front.is_empty());
    // The front is sorted by cycles with strictly increasing accuracy.
    for pair in outcome.front.windows(2) {
        assert!(pair[0].cycles <= pair[1].cycles);
        assert!(pair[0].accuracy < pair[1].accuracy);
    }
    // Uniform narrowing must price strictly cheaper: w2 < w4 < w8 cycles.
    assert!(outcome.uniform(2).cycles < outcome.uniform(4).cycles);
    assert!(outcome.uniform(4).cycles < outcome.uniform(8).cycles);
}

#[test]
fn assembled_models_match_direct_conversion_and_report_their_bits() {
    let t = tuner(7);
    let config: BitConfig = "284448/444444".parse().expect("parse");
    let model = t.assemble(&config).expect("assembly");
    assert_eq!(model.weight_bits(), 8, "headline width is the widest site");
    assert_eq!(model.layer_bit_widths(), config.layers);
    assert_eq!(model.bit_summary(), "w2-8[0]/w4[1]");
    // Uniform assembly equals the uniform bank exactly.
    let uniform = t.assemble(&BitConfig::uniform(2, 4)).expect("uniform");
    assert_eq!(uniform.bit_summary(), "w4");
    assert_eq!(uniform.weight_bits(), 4);
}

#[test]
fn searched_artifact_round_trips_bit_identically_on_every_backend() {
    let t = tuner(11);
    let outcome = search(
        &t,
        &SearchSettings {
            budget: 8,
            seed: 9,
            ..SearchSettings::default()
        },
    )
    .expect("search");
    let model = t.assemble(&outcome.best.config).expect("assembly");
    let examples: Vec<Example> = (0..10).map(example).collect();
    let reference = model.logits_batch(&examples).expect("reference logits");

    let words: Vec<String> = (0..26).map(|i| format!("w{i}")).collect();
    let tokenizer = Tokenizer::new(Vocab::from_tokens(&words), MAX_LEN);
    let dir = std::env::temp_dir().join("fqbert_autotune_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mixed.fqb");
    ModelArtifact::new(TaskKind::Sst2, model.clone(), tokenizer)
        .save(&path)
        .expect("save");

    // The loaded model is bit-identical, and both artifact-loadable
    // backends (int and sim; the float backend holds no quantized model by
    // design) reproduce the in-memory logits exactly.
    let loaded = ModelArtifact::load(&path).expect("load");
    assert_eq!(loaded.model, model);
    for kind in [BackendKind::Int, BackendKind::Sim] {
        let engine = EngineBuilder::new(TaskKind::Sst2)
            .backend(kind)
            .load(&path)
            .expect("engine");
        let served = engine
            .backend()
            .int_model()
            .expect("quantized backend")
            .logits_batch(&examples)
            .expect("served logits");
        assert_eq!(served, reference, "{kind:?} logits must be bit-identical");
    }
    std::fs::remove_file(&path).ok();
}
