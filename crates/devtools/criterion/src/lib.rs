//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This repository must build without network access, so the benches under
//! `crates/bench/benches/` run against this small, API-compatible subset of
//! criterion: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a plain wall-clock loop (median-free mean over a fixed
//! time budget) rather than criterion's statistical machinery, so treat the
//! printed numbers as indicative. Set `FQBERT_BENCH_MS` to change the
//! per-benchmark measurement budget in milliseconds (default 250).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-benchmark measurement budget in milliseconds (the `FQBERT_BENCH_MS`
/// override, clamped to at least 1ms). Public so bench harnesses can record
/// the budget their numbers were measured under.
pub fn budget_ms() -> u64 {
    std::env::var("FQBERT_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250u64)
        .max(1)
}

fn budget() -> Duration {
    Duration::from_millis(budget_ms())
}

/// Identifies one parameterised benchmark (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    last_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed wall-clock budget and records the mean
    /// time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < budget() / 10 || warmup_iters < 3 {
            std_black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = budget().as_secs_f64();
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(3, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// One measured benchmark: its group, id and mean time per iteration.
///
/// Recorded by [`Criterion`] for every benchmark run, so harnesses can emit
/// machine-readable reports (the real criterion writes `target/criterion/`;
/// this shim leaves persistence to the caller via
/// [`Criterion::take_results`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Group name passed to [`Criterion::benchmark_group`].
    pub group: String,
    /// Benchmark id within the group (`function_id/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iterations: u64,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            last_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{:<40} {:>12}/iter ({} iterations)",
            self.name,
            id,
            human_time(bencher.last_ns),
            bencher.iters
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id: id.to_string(),
            mean_ns: bencher.last_ns,
            iterations: bencher.iters,
        });
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) {
        self.run_one(&id.to_string(), f);
    }

    /// Benchmarks `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run_one(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Results of every benchmark run so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Drains the recorded results (shim extension: lets a bench `main`
    /// persist a machine-readable report after running its groups).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("FQBERT_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "smoke");
        assert_eq!(results[0].id, "add");
        assert_eq!(results[1].id, "with_input/3");
        assert!(results.iter().all(|r| r.mean_ns > 0.0 && r.iterations > 0));
        assert!(c.take_results().is_empty());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
