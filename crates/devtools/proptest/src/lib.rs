//! Offline stand-in for the `proptest` crate.
//!
//! The FQ-BERT repository must build and test without network access, so the
//! property tests run against this small, API-compatible subset of proptest:
//!
//! * [`Strategy`] with `prop_flat_map`/`prop_map`, range strategies for the
//!   primitive integer and float types, [`Just`], tuple strategies and
//!   [`collection::vec`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros.
//!
//! Differences from the real crate: case generation is a deterministic
//! splitmix/xorshift stream seeded from the test name (every run explores the
//! same cases), there is no shrinking, and failures report the assertion
//! panic directly. The default number of cases per property is
//! [`DEFAULT_CASES`]; set `PROPTEST_CASES` to override.

use std::ops::{Range, RangeInclusive};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 64;

/// Number of cases to run, honouring the `PROPTEST_CASES` env override.
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CASES)
}

/// Deterministic pseudo-random generator driving case generation
/// (xorshift64* over a splitmix64-initialised state).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 step so that similar seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Self {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Seeds a generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` into a new strategy.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }

    /// Maps generated values through `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<A, F> {
    inner: A,
    f: F,
}

impl<A, F, S> Strategy for FlatMap<A, F>
where
    A: Strategy,
    F: Fn(A::Value) -> S,
    S: Strategy,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<A, F> {
    inner: A,
    f: F,
}

impl<A, F, T> Strategy for Map<A, F>
where
    A: Strategy,
    F: Fn(A::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                // A full-width i128 inclusive range would overflow span, but
                // no test needs more than 64 bits of span.
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Rounding can land exactly on the exclusive upper bound
                // (e.g. unit_f64 > 1 - 2^-25 cast to f32); clamp back into
                // the half-open range.
                v.min(self.end.next_down()).max(self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a `Vec` strategy with the given length
    /// (or length range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Mirror of `proptest::num`: full-range `ANY` strategies for the integer
/// widths the property tests draw from.
pub mod num {
    macro_rules! any_int_module {
        ($($m:ident => $t:ty),+ $(,)?) => {$(
            /// Full-range strategies for this integer width.
            pub mod $m {
                use crate::{Strategy, TestRng};

                /// Strategy type of [`ANY`].
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }

                /// Uniform over the whole value range
                /// (`proptest::num::*::ANY`).
                pub const ANY: Any = Any;
            }
        )+};
    }

    any_int_module!(
        i8 => i8, i16 => i16, i32 => i32, i64 => i64,
        u8 => u8, u16 => u16, u32 => u32, u64 => u64,
    );
}

/// Property assertion: behaves like `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion: behaves like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion: behaves like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Case precondition: skips to the next generated case when not met.
///
/// Expands to a `continue` targeting the case loop generated by
/// [`proptest!`], so it is only meaningful inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each function body runs [`num_cases`] times with
/// fresh values drawn from the listed strategies.
#[macro_export]
macro_rules! proptest {
    ($( #[test] fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            #[test]
            fn $name() {
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::num_cases() {
                    $( let $pat = $crate::Strategy::generate(&($strategy), &mut rng); )+
                    $body
                }
            }
        )+
    };
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (-8i8..=7).generate(&mut rng);
            assert!((-8..=7).contains(&v));
            let u = (1usize..200).generate(&mut rng);
            assert!((1..200).contains(&u));
            let f = (-100.0f32..100.0).generate(&mut rng);
            assert!((-100.0..100.0).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        let strat = collection::vec(0u64..1000, 1..20);
        for _ in 0..10 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u32..10, (a, b) in (1usize..=4, 1usize..=4)) {
            prop_assume!(x > 0);
            prop_assert!(x < 10);
            prop_assert_eq!(a * b, b * a);
        }
    }
}
