//! Property tests pinning the fixed-point requantizer to the float
//! reference across the full int32 accumulator range and a wide band of
//! effective scales — including the tiny-scale region that used to panic on
//! shift overflow and the wide-accumulator region that used to overflow the
//! 64-bit product.

use fqbert_quant::Requantizer;
use proptest::prelude::*;

/// Float reference for Eq. 5: round-half-away-from-zero, saturating.
fn float_reference(acc: i64, scale: f64, out_max: i32) -> i32 {
    let exact = acc as f64 * scale;
    let rounded = if exact >= 0.0 {
        (exact + 0.5).floor()
    } else {
        (exact - 0.5).ceil()
    };
    rounded.clamp(-f64::from(out_max), f64::from(out_max)) as i32
}

proptest! {
    #[test]
    fn matches_float_reference_over_full_i32_accumulator_range(
        acc in i32::MIN..=i32::MAX,
        scale_exp in -40i32..8,
        mantissa in 0.5f64..1.0,
    ) {
        let scale = mantissa * 2.0f64.powi(scale_exp);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let got = rq.apply(i64::from(acc));
        let expected = float_reference(i64::from(acc), scale, 127);
        // The Q1.30 multiplier carries ~2^-30 relative error, so allow one
        // output LSB of slack around the float reference.
        prop_assert!(
            (got - expected).abs() <= 1,
            "scale {} acc {}: {} vs {}", scale, acc, got, expected
        );
    }

    #[test]
    fn any_positive_finite_scale_is_accepted_and_panic_free(
        scale_exp in -1080i32..1020,
        mantissa in 0.5f64..1.0,
        acc in proptest::num::i64::ANY,
    ) {
        let scale = mantissa * 2.0f64.powi(scale_exp);
        prop_assume!(scale.is_finite() && scale > 0.0);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let out = rq.apply(acc);
        prop_assert!((-127..=127).contains(&out));
        // Sign discipline survives the clamped encodings.
        if acc == 0 {
            prop_assert_eq!(out, 0);
        } else if acc != i64::MIN {
            prop_assert_eq!(out, -rq.apply(-acc));
        }
    }

    #[test]
    fn wide_accumulators_match_reference_at_moderate_scales(
        acc_shifted in -(1i64 << 44)..(1i64 << 44),
        scale_exp in -44i32..-20,
    ) {
        let scale = 2.0f64.powi(scale_exp);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let got = rq.apply(acc_shifted);
        let expected = float_reference(acc_shifted, scale, 127);
        prop_assert!(
            (got - expected).abs() <= 1,
            "scale 2^{} acc {}: {} vs {}", scale_exp, acc_shifted, got, expected
        );
    }

    #[test]
    fn sixteen_bit_outputs_respect_their_bound(
        acc in proptest::num::i64::ANY,
        scale_exp in -60i32..20,
    ) {
        let rq = Requantizer::from_scale(2.0f64.powi(scale_exp), 16).expect("valid scale");
        let out = rq.apply(acc);
        prop_assert!((-32767..=32767).contains(&out));
    }
}
