//! Property tests pinning the fixed-point requantizer to the float
//! reference across the full int32 accumulator range and a wide band of
//! effective scales — including the tiny-scale region that used to panic on
//! shift overflow and the wide-accumulator region that used to overflow the
//! 64-bit product.

use fqbert_quant::Requantizer;
use proptest::prelude::*;

/// Float reference for Eq. 5: round-half-away-from-zero, saturating.
fn float_reference(acc: i64, scale: f64, out_max: i32) -> i32 {
    let exact = acc as f64 * scale;
    let rounded = if exact >= 0.0 {
        (exact + 0.5).floor()
    } else {
        (exact - 0.5).ceil()
    };
    rounded.clamp(-f64::from(out_max), f64::from(out_max)) as i32
}

proptest! {
    #[test]
    fn matches_float_reference_over_full_i32_accumulator_range(
        acc in i32::MIN..=i32::MAX,
        scale_exp in -40i32..8,
        mantissa in 0.5f64..1.0,
    ) {
        let scale = mantissa * 2.0f64.powi(scale_exp);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let got = rq.apply(i64::from(acc));
        let expected = float_reference(i64::from(acc), scale, 127);
        // The Q1.30 multiplier carries ~2^-30 relative error, so allow one
        // output LSB of slack around the float reference.
        prop_assert!(
            (got - expected).abs() <= 1,
            "scale {} acc {}: {} vs {}", scale, acc, got, expected
        );
    }

    #[test]
    fn any_positive_finite_scale_is_accepted_and_panic_free(
        scale_exp in -1080i32..1020,
        mantissa in 0.5f64..1.0,
        acc in proptest::num::i64::ANY,
    ) {
        let scale = mantissa * 2.0f64.powi(scale_exp);
        prop_assume!(scale.is_finite() && scale > 0.0);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let out = rq.apply(acc);
        prop_assert!((-127..=127).contains(&out));
        // Sign discipline survives the clamped encodings.
        if acc == 0 {
            prop_assert_eq!(out, 0);
        } else if acc != i64::MIN {
            prop_assert_eq!(out, -rq.apply(-acc));
        }
    }

    #[test]
    fn wide_accumulators_match_reference_at_moderate_scales(
        acc_shifted in -(1i64 << 44)..(1i64 << 44),
        scale_exp in -44i32..-20,
    ) {
        let scale = 2.0f64.powi(scale_exp);
        let rq = Requantizer::from_scale(scale, 8).expect("valid scale");
        let got = rq.apply(acc_shifted);
        let expected = float_reference(acc_shifted, scale, 127);
        prop_assert!(
            (got - expected).abs() <= 1,
            "scale 2^{} acc {}: {} vs {}", scale_exp, acc_shifted, got, expected
        );
    }

    #[test]
    fn sixteen_bit_outputs_respect_their_bound(
        acc in proptest::num::i64::ANY,
        scale_exp in -60i32..20,
    ) {
        let rq = Requantizer::from_scale(2.0f64.powi(scale_exp), 16).expect("valid scale");
        let out = rq.apply(acc);
        prop_assert!((-32767..=32767).contains(&out));
    }

    // Every requantizer's encoded (multiplier, shift) pair sits inside the
    // SIMD epilogue's exact-in-i64 envelope, and the GEMM requant kernels
    // driven with those parameters are bit-identical to
    // `apply(acc + bias).clamp(-127, 127)` — the contract that lets
    // `IntLinear` fuse the epilogue into the GEMM.
    #[test]
    fn gemm_requant_kernels_are_bit_identical_to_apply(
        accs in proptest::collection::vec(proptest::num::i32::ANY, 1..80),
        biases in proptest::collection::vec(proptest::num::i32::ANY, 1..80),
        scale_exp in -70i32..34,
        mantissa in 0.5f64..1.0,
        out_bits in 2u32..=8,
    ) {
        use fqbert_tensor::gemm::kernels;
        use fqbert_tensor::gemm::RequantParams;

        let scale = mantissa * 2.0f64.powi(scale_exp);
        prop_assume!(scale.is_finite() && scale > 0.0);
        let rq = Requantizer::from_scale(scale, out_bits).expect("valid scale");
        let params = RequantParams {
            multiplier: rq.multiplier(),
            shift: rq.shift(),
            clamp: rq.out_max().min(127),
        };
        prop_assert!(params.simd_exact(), "out of envelope: {:?}", params);
        let len = accs.len();
        let bias: Vec<i32> = (0..len).map(|i| biases[i % biases.len()]).collect();
        // Splice in the corners that maximise |acc + bias|.
        let mut accs = accs;
        accs[0] = i32::MIN;
        if let Some(slot) = accs.get_mut(1) {
            *slot = i32::MAX;
        }
        let expected: Vec<i8> = accs
            .iter()
            .zip(&bias)
            .map(|(&a, &b)| {
                rq.apply(i64::from(a) + i64::from(b)).clamp(-127, 127) as i8
            })
            .collect();
        for kind in kernels::available() {
            let mut got = vec![0i8; len];
            (kernels::dispatch_for(kind).requant)(&accs, &bias, params, &mut got);
            prop_assert_eq!(&got, &expected, "requant diverges on {}", kind.name());
        }
    }
}
