//! Clip-threshold tuning (the CLIP configuration of Fig. 3).
//!
//! The paper notes that the clip thresholds `MIN = -MAX` "need to be
//! carefully tuned during training". We implement the tuning as a
//! deterministic grid search that picks the symmetric threshold minimising
//! the mean squared quantization error of the tensor — the standard
//! MSE-optimal clipping criterion. At low bit-widths the optimal threshold is
//! noticeably smaller than `max|x|`, which is exactly why the CLIP curves of
//! Fig. 3 degrade more gracefully than the NO_CLIP curves.

use crate::{QuantParams, Result};
use fqbert_tensor::Tensor;

/// Result of a clip-threshold search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipSearchResult {
    /// The selected symmetric clip threshold `MAX`.
    pub clip: f32,
    /// Mean squared quantization error at the selected threshold.
    pub mse: f32,
    /// Mean squared quantization error with no clipping (threshold =
    /// `max|x|`), for comparison.
    pub mse_no_clip: f32,
}

/// Searches for the MSE-optimal symmetric clip threshold for quantizing
/// `tensor` at `bits` bits.
///
/// The search evaluates `steps` thresholds spaced uniformly between
/// `max|x| / steps` and `max|x|` and returns the best.
///
/// # Errors
///
/// Returns an error for an unsupported bit-width or a tensor with no dynamic
/// range.
///
/// # Examples
///
/// ```
/// use fqbert_quant::tune_clip_threshold;
/// use fqbert_tensor::{RngSource, Tensor};
///
/// let mut rng = RngSource::seed_from_u64(0);
/// let w = rng.normal_tensor(&[512], 0.0, 1.0);
/// let result = tune_clip_threshold(&w, 2, 64)?;
/// assert!(result.mse <= result.mse_no_clip);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn tune_clip_threshold(tensor: &Tensor, bits: u32, steps: usize) -> Result<ClipSearchResult> {
    let abs_max = tensor.abs_max()?;
    let no_clip = QuantParams::for_weights(tensor, bits, None)?;
    let mse_no_clip = no_clip.quantization_mse(tensor);
    let mut best = ClipSearchResult {
        clip: abs_max,
        mse: mse_no_clip,
        mse_no_clip,
    };
    let steps = steps.max(1);
    for i in 1..=steps {
        let clip = abs_max * i as f32 / steps as f32;
        if clip <= 0.0 {
            continue;
        }
        let params = QuantParams::for_weights(tensor, bits, Some(clip))?;
        let mse = params.quantization_mse(tensor);
        if mse < best.mse {
            best.clip = clip;
            best.mse = mse;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_tensor::RngSource;

    #[test]
    fn tuned_clip_never_worse_than_no_clip() {
        let mut rng = RngSource::seed_from_u64(3);
        let w = rng.normal_tensor(&[1024], 0.0, 0.5);
        for bits in [2, 4, 6, 8] {
            let r = tune_clip_threshold(&w, bits, 50).unwrap();
            assert!(r.mse <= r.mse_no_clip + 1e-9, "bits={bits}");
            assert!(r.clip > 0.0 && r.clip <= w.abs_max().unwrap() + 1e-6);
        }
    }

    #[test]
    fn low_bitwidth_benefits_more_from_clipping() {
        // Heavy-tailed data: clipping should help a lot at 2 bits and barely
        // matter at 8 bits. This is the mechanism behind the CLIP/NO_CLIP gap
        // in Fig. 3 of the paper.
        let mut rng = RngSource::seed_from_u64(4);
        let mut data = rng.normal_tensor(&[2048], 0.0, 0.2).into_vec();
        // Inject a few large outliers.
        data[0] = 4.0;
        data[1] = -4.0;
        data[2] = 3.5;
        let w = Tensor::from_vec(data, &[2048]).unwrap();

        let r2 = tune_clip_threshold(&w, 2, 100).unwrap();
        let r8 = tune_clip_threshold(&w, 8, 100).unwrap();
        let gain2 = r2.mse_no_clip / r2.mse.max(1e-12);
        let gain8 = r8.mse_no_clip / r8.mse.max(1e-12);
        assert!(
            gain2 > gain8,
            "clipping should help more at 2 bits (gain {gain2}) than at 8 bits (gain {gain8})"
        );
        assert!(r2.clip < w.abs_max().unwrap() * 0.8);
    }

    #[test]
    fn degenerate_tensor_is_error() {
        let w = Tensor::zeros(&[16]);
        assert!(tune_clip_threshold(&w, 4, 10).is_err());
    }

    #[test]
    fn single_step_falls_back_to_abs_max() {
        let w = Tensor::from_vec(vec![0.5, -1.5, 1.0], &[3]).unwrap();
        let r = tune_clip_threshold(&w, 8, 1).unwrap();
        assert!((r.clip - 1.5).abs() < 1e-6);
    }
}
