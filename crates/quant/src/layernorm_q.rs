//! Integer / fixed-point layer normalization (paper §III-B, LN Core).
//!
//! The accelerator's LN core is a coarse-grained, 3-stage SIMD pipeline:
//!
//! 1. consume **two** input vectors with their scaling factors (the residual
//!    and the sub-layer output of the `Add & LN` block), produce their sum
//!    and its mean;
//! 2. subtract the mean and compute the variance;
//! 3. apply the element-wise `gamma * (x - mean) / sqrt(var + eps) + beta`
//!    multiplication and requantize to 8-bit.
//!
//! [`QuantizedLayerNorm`] reproduces those three stages with fixed-point
//! arithmetic only ([`Fixed`] values and the Newton–Raphson
//! [`fixed_inv_sqrt`]); `gamma` and `beta` are stored as the 8-bit
//! fixed-point parameters the paper describes.

use crate::fixedpoint::{fixed_inv_sqrt, Fixed};
use crate::{QuantError, Result};

/// Fractional bits used for the internal fixed-point pipeline.
const INTERNAL_FRAC_BITS: u32 = 16;
/// Fractional bits used to store the 8-bit gamma/beta parameters.
const PARAM_FRAC_BITS: u32 = 6;

/// A layer-norm layer whose parameters and arithmetic are fully quantized.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayerNorm {
    gamma: Vec<i8>,
    beta: Vec<i8>,
    eps: f32,
}

impl QuantizedLayerNorm {
    /// Quantizes float `gamma`/`beta` parameters into the 8-bit fixed-point
    /// representation used on the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidArgument`] if the parameter vectors have
    /// different lengths or are empty.
    pub fn from_float(gamma: &[f32], beta: &[f32], eps: f32) -> Result<Self> {
        if gamma.len() != beta.len() || gamma.is_empty() {
            return Err(QuantError::InvalidArgument(format!(
                "gamma ({}) and beta ({}) must be equal-length and non-empty",
                gamma.len(),
                beta.len()
            )));
        }
        // fqlint::allow(narrowing-cast): `PARAM_FRAC_BITS` is a bit-shift
        // amount < 32.
        let quantize = |v: f32| -> i8 {
            (v * f32::powi(2.0, PARAM_FRAC_BITS as i32))
                .round()
                .clamp(i8::MIN as f32, i8::MAX as f32) as i8
        };
        Ok(Self {
            gamma: gamma.iter().copied().map(quantize).collect(),
            beta: beta.iter().copied().map(quantize).collect(),
            eps,
        })
    }

    /// Reassembles a layer norm from stored parameter codes (the inverse of
    /// [`QuantizedLayerNorm::gamma_codes`]/[`QuantizedLayerNorm::beta_codes`]
    /// plus [`QuantizedLayerNorm::eps`]), used when loading model artifacts.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidArgument`] if the code vectors have
    /// different lengths or are empty.
    pub fn from_codes(gamma: Vec<i8>, beta: Vec<i8>, eps: f32) -> Result<Self> {
        if gamma.len() != beta.len() || gamma.is_empty() {
            return Err(QuantError::InvalidArgument(format!(
                "gamma ({}) and beta ({}) codes must be equal-length and non-empty",
                gamma.len(),
                beta.len()
            )));
        }
        Ok(Self { gamma, beta, eps })
    }

    /// The epsilon added to the variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Hidden size normalised over.
    pub fn hidden(&self) -> usize {
        self.gamma.len()
    }

    /// The quantized gamma codes (Q2.5 fixed point).
    pub fn gamma_codes(&self) -> &[i8] {
        &self.gamma
    }

    /// The quantized beta codes (Q2.5 fixed point).
    pub fn beta_codes(&self) -> &[i8] {
        &self.beta
    }

    /// Dequantized gamma values (for comparison against the float reference).
    pub fn gamma_f32(&self) -> Vec<f32> {
        // fqlint::allow(narrowing-cast): `PARAM_FRAC_BITS` is a bit-shift
        // amount < 32.
        self.gamma
            .iter()
            .map(|&g| g as f32 / f32::powi(2.0, PARAM_FRAC_BITS as i32))
            .collect()
    }

    /// Dequantized beta values.
    pub fn beta_f32(&self) -> Vec<f32> {
        // fqlint::allow(narrowing-cast): `PARAM_FRAC_BITS` is a bit-shift
        // amount < 32.
        self.beta
            .iter()
            .map(|&b| b as f32 / f32::powi(2.0, PARAM_FRAC_BITS as i32))
            .collect()
    }

    /// Runs the 3-stage `Add & LN` pipeline on two quantized input rows.
    ///
    /// `a` and `b` are int8 codes with scales `scale_a` / `scale_b`
    /// (values = code / scale). The output is requantized to int8 codes with
    /// `out_scale` levels per unit.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidArgument`] if the row lengths do not match
    /// the parameter length, or [`QuantError::InvalidScale`] for non-positive
    /// scales.
    pub fn apply_residual(
        &self,
        a: &[i8],
        scale_a: f32,
        b: &[i8],
        scale_b: f32,
        out_scale: f32,
    ) -> Result<Vec<i8>> {
        if a.len() != self.hidden() || b.len() != self.hidden() {
            return Err(QuantError::InvalidArgument(format!(
                "input rows of {} / {} elements do not match hidden size {}",
                a.len(),
                b.len(),
                self.hidden()
            )));
        }
        for &s in &[scale_a, scale_b, out_scale] {
            if !(s.is_finite() && s > 0.0) {
                return Err(QuantError::InvalidScale(s));
            }
        }
        let n = self.hidden() as i64;

        // Stage 1: dequantize both operands onto the shared internal
        // fixed-point grid, add them, and accumulate the mean.
        let inv_a = Fixed::from_f32(1.0 / scale_a, INTERNAL_FRAC_BITS);
        let inv_b = Fixed::from_f32(1.0 / scale_b, INTERNAL_FRAC_BITS);
        let mut summed: Vec<Fixed> = Vec::with_capacity(self.hidden());
        let mut total: i64 = 0;
        for (&xa, &xb) in a.iter().zip(b.iter()) {
            let va = Fixed::from_raw(i32::from(xa), 0)
                .rescale(INTERNAL_FRAC_BITS)
                .mul(inv_a);
            let vb = Fixed::from_raw(i32::from(xb), 0)
                .rescale(INTERNAL_FRAC_BITS)
                .mul(inv_b);
            let v = va.saturating_add(vb);
            total += i64::from(v.raw());
            summed.push(v);
        }
        // fqlint::allow(narrowing-cast): the mean of `i32`-ranged raw
        // values is itself in `i32` range.
        let mean = Fixed::from_raw((total / n) as i32, INTERNAL_FRAC_BITS);

        // Stage 2: subtract the mean and accumulate the variance.
        let mut centered: Vec<Fixed> = Vec::with_capacity(self.hidden());
        let mut var_acc: i64 = 0;
        for v in &summed {
            let c = v.saturating_sub(mean);
            // Accumulate (x-mean)^2 in a wide integer with 2*frac bits, then
            // renormalise once at the end.
            var_acc += i64::from(c.raw()) * i64::from(c.raw());
            centered.push(c);
        }
        let var_raw = (var_acc / n) >> INTERNAL_FRAC_BITS;
        let var = Fixed::from_raw(
            var_raw.clamp(0, i64::from(i32::MAX)) as i32,
            INTERNAL_FRAC_BITS,
        );
        let eps_fixed = Fixed::from_f32(
            self.eps.max(1.0 / (1 << INTERNAL_FRAC_BITS) as f32),
            INTERNAL_FRAC_BITS,
        );
        let inv_std = fixed_inv_sqrt(var.saturating_add(eps_fixed), 20);

        // Stage 3: element-wise gamma/beta and output requantization.
        let out_scale_fixed = Fixed::from_f32(out_scale, INTERNAL_FRAC_BITS);
        let mut out = Vec::with_capacity(self.hidden());
        for (i, c) in centered.iter().enumerate() {
            let gamma = Fixed::from_raw(i32::from(self.gamma[i]), PARAM_FRAC_BITS)
                .rescale(INTERNAL_FRAC_BITS);
            let beta = Fixed::from_raw(i32::from(self.beta[i]), PARAM_FRAC_BITS)
                .rescale(INTERNAL_FRAC_BITS);
            let normalised = c.mul(inv_std).mul(gamma).saturating_add(beta);
            let scaled = normalised.mul(out_scale_fixed);
            // Round the fixed-point value to the nearest integer code.
            let code = scaled
                .rescale(0)
                .raw()
                .clamp(i8::MIN as i32, i8::MAX as i32) as i8;
            out.push(code);
        }
        Ok(out)
    }

    /// Runs layer normalization on a single quantized row (no residual).
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Self::apply_residual`].
    pub fn apply(&self, x: &[i8], scale_x: f32, out_scale: f32) -> Result<Vec<i8>> {
        let zeros = vec![0i8; x.len()];
        self.apply_residual(x, scale_x, &zeros, 1.0, out_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqbert_tensor::Tensor;

    fn float_layer_norm(x: &[f32], gamma: &[f32], beta: &[f32], eps: f32) -> Vec<f32> {
        let n = x.len() as f32;
        let mean = x.iter().sum::<f32>() / n;
        let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        x.iter()
            .enumerate()
            .map(|(i, &v)| (v - mean) * inv * gamma[i] + beta[i])
            .collect()
    }

    #[test]
    fn parameters_roundtrip_within_fixed_point_step() {
        let gamma = vec![1.0f32, 0.5, -1.25, 2.0];
        let beta = vec![0.1f32, -0.3, 0.0, 1.5];
        let ln = QuantizedLayerNorm::from_float(&gamma, &beta, 1e-5).unwrap();
        for (a, b) in gamma.iter().zip(ln.gamma_f32().iter()) {
            assert!((a - b).abs() <= 1.0 / 32.0 + 1e-6);
        }
        for (a, b) in beta.iter().zip(ln.beta_f32().iter()) {
            assert!((a - b).abs() <= 1.0 / 32.0 + 1e-6);
        }
    }

    #[test]
    fn matches_float_reference_on_residual_add() {
        let hidden = 32;
        let mut rng = fqbert_tensor::RngSource::seed_from_u64(5);
        let a_f = rng.normal_tensor(&[hidden], 0.0, 1.0);
        let b_f = rng.normal_tensor(&[hidden], 0.0, 1.0);
        let gamma: Vec<f32> = (0..hidden).map(|i| 0.8 + 0.01 * i as f32).collect();
        let beta: Vec<f32> = (0..hidden).map(|i| -0.2 + 0.01 * i as f32).collect();
        let ln = QuantizedLayerNorm::from_float(&gamma, &beta, 1e-5).unwrap();

        // Quantize the inputs to int8.
        let scale_a = 127.0 / a_f.abs_max().unwrap();
        let scale_b = 127.0 / b_f.abs_max().unwrap();
        let a_q: Vec<i8> = a_f
            .as_slice()
            .iter()
            .map(|&v| (v * scale_a).round() as i8)
            .collect();
        let b_q: Vec<i8> = b_f
            .as_slice()
            .iter()
            .map(|&v| (v * scale_b).round() as i8)
            .collect();

        let out_scale = 32.0;
        let out = ln
            .apply_residual(&a_q, scale_a, &b_q, scale_b, out_scale)
            .unwrap();

        let sum: Vec<f32> = a_f
            .as_slice()
            .iter()
            .zip(b_f.as_slice())
            .map(|(&x, &y)| x + y)
            .collect();
        let reference = float_layer_norm(&sum, &ln.gamma_f32(), &ln.beta_f32(), 1e-5);
        let mut max_err = 0.0f32;
        for (o, r) in out.iter().zip(reference.iter()) {
            let approx = *o as f32 / out_scale;
            max_err = max_err.max((approx - r).abs());
        }
        assert!(
            max_err < 0.15,
            "quantized layer norm deviates from reference by {max_err}"
        );
    }

    #[test]
    fn single_input_normalisation_has_near_zero_mean() {
        let hidden = 64;
        let mut rng = fqbert_tensor::RngSource::seed_from_u64(6);
        let x_f = rng.normal_tensor(&[hidden], 3.0, 2.0);
        let gamma = vec![1.0f32; hidden];
        let beta = vec![0.0f32; hidden];
        let ln = QuantizedLayerNorm::from_float(&gamma, &beta, 1e-5).unwrap();
        let scale_x = 127.0 / x_f.abs_max().unwrap();
        let x_q: Vec<i8> = x_f
            .as_slice()
            .iter()
            .map(|&v| (v * scale_x).round() as i8)
            .collect();
        let out = ln.apply(&x_q, scale_x, 32.0).unwrap();
        let vals =
            Tensor::from_vec(out.iter().map(|&c| c as f32 / 32.0).collect(), &[hidden]).unwrap();
        assert!(vals.mean().unwrap().abs() < 0.1);
        let var = vals.map(|v| v * v).mean().unwrap();
        assert!((var - 1.0).abs() < 0.2, "variance {var} should be near 1");
    }

    #[test]
    fn input_validation() {
        let ln = QuantizedLayerNorm::from_float(&[1.0, 1.0], &[0.0, 0.0], 1e-5).unwrap();
        assert!(ln.apply(&[1, 2, 3], 1.0, 1.0).is_err());
        assert!(ln.apply(&[1, 2], 0.0, 1.0).is_err());
        assert!(ln.apply(&[1, 2], 1.0, -1.0).is_err());
        assert!(QuantizedLayerNorm::from_float(&[1.0], &[0.0, 0.0], 1e-5).is_err());
        assert!(QuantizedLayerNorm::from_float(&[], &[], 1e-5).is_err());
    }
}
