//! Bias quantization to 32-bit integers (paper Eq. 4).
//!
//! Biases are quantized with the product of the activation and weight scales,
//! `s_bias = s_a · s_w`, so that the integer bias can be added directly to
//! the int32 accumulator of `Σ a_I · w_I` without any rescaling.

use crate::{QuantParams, Result};
use fqbert_tensor::{IntTensor, Tensor};

/// Quantizes a bias vector to `i32` codes using `s_bias = s_a · s_w`
/// (Eq. 4).
///
/// # Errors
///
/// Returns an error if the combined scale is invalid.
///
/// # Examples
///
/// ```
/// use fqbert_quant::{quantize_bias, QuantParams};
/// use fqbert_tensor::Tensor;
///
/// let bias = Tensor::from_vec(vec![0.1, -0.2], &[2])?;
/// let a = QuantParams::for_activations(2.0, 8)?;
/// let w = QuantParams::for_weights(&Tensor::from_vec(vec![0.5, -1.0], &[2])?, 4, None)?;
/// let q = quantize_bias(&bias, &a, &w)?;
/// assert_eq!(q.dims(), &[2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn quantize_bias(
    bias: &Tensor,
    activation: &QuantParams,
    weight: &QuantParams,
) -> Result<IntTensor<i32>> {
    let s_bias = bias_scale(activation, weight);
    let params = QuantParams::new(32, s_bias)?;
    Ok(params.quantize_tensor_i32(bias))
}

/// The combined bias scale `s_bias = s_a · s_w`.
pub fn bias_scale(activation: &QuantParams, weight: &QuantParams) -> f32 {
    activation.scale() * weight.scale()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_scale_is_product_of_scales() {
        let a = QuantParams::for_activations(2.0, 8).unwrap();
        let w = QuantParams::new(4, 3.5).unwrap();
        assert!((bias_scale(&a, &w) - (127.0 / 2.0) * 3.5).abs() < 1e-4);
    }

    #[test]
    fn quantized_bias_roundtrips_within_one_step() {
        let bias = Tensor::from_vec(vec![0.37, -0.21, 0.0, 1.5], &[4]).unwrap();
        let a = QuantParams::for_activations(4.0, 8).unwrap();
        let w = QuantParams::new(4, 7.0 / 0.8).unwrap();
        let q = quantize_bias(&bias, &a, &w).unwrap();
        let s = bias_scale(&a, &w);
        for (i, &b) in bias.as_slice().iter().enumerate() {
            let back = q.as_slice()[i] as f32 / s;
            assert!((back - b).abs() <= 0.5 / s + 1e-6);
        }
    }

    #[test]
    fn int_bias_adds_directly_to_accumulator() {
        // End-to-end check of Eq. 4/5 consistency: computing in integers with
        // the int32 bias must match the float computation after dequantizing
        // by s_a * s_w.
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25], &[1, 3]).unwrap();
        let w = Tensor::from_vec(vec![0.5, -0.25, 0.75, 0.1, 0.6, -0.4], &[3, 2]).unwrap();
        let bias = Tensor::from_vec(vec![0.3, -0.7], &[2]).unwrap();

        let ap = QuantParams::for_activations(x.abs_max().unwrap(), 8).unwrap();
        let wp = QuantParams::for_weights(&w, 8, None).unwrap();
        let xq = ap.quantize_tensor_i8(&x);
        let wq = wp.quantize_tensor_i8(&w);
        let bq = quantize_bias(&bias, &ap, &wp).unwrap();

        let acc = xq.matmul_i32(&wq).unwrap();
        let s = bias_scale(&ap, &wp);
        let float_ref = x.matmul(&w).unwrap().add_bias(&bias).unwrap();
        for j in 0..2 {
            let int_result = acc.as_slice()[j] + bq.as_slice()[j];
            let approx = int_result as f32 / s;
            assert!(
                (approx - float_ref.as_slice()[j]).abs() < 0.02,
                "integer pipeline deviates: {approx} vs {}",
                float_ref.as_slice()[j]
            );
        }
    }
}
