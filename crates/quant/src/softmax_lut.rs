//! Lookup-table softmax with max-subtraction (paper §III-B, Softmax Core).
//!
//! The accelerator replaces the exponential with a 256-entry lookup table.
//! Because softmax is invariant to subtracting a constant, every element is
//! first reduced by the row maximum; the argument of `exp` is then confined
//! to `(-∞, 0]` and its value to `(0, 1]`, so an 8-bit table indexed by the
//! (integer) difference from the maximum suffices. The numerator and the
//! softmax output are both quantized to 8 bits, exactly as in the paper.

use crate::{QuantError, Result};

/// Number of entries in the exponential lookup table.
pub const LUT_ENTRIES: usize = 256;

/// An integer-only softmax evaluator backed by a 256-entry exponential LUT.
///
/// # Examples
///
/// ```
/// use fqbert_quant::SoftmaxLut;
///
/// // Scores quantized with 4 levels per unit.
/// let lut = SoftmaxLut::new(4.0, 127)?;
/// let probs = lut.apply_row(&[8, 4, 0, -4]);
/// assert_eq!(probs.len(), 4);
/// assert!(probs[0] > probs[1] && probs[1] > probs[2]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
// fqlint::allow(float-escape): the stored `input_scale` is per-tensor
// calibration metadata; row evaluation itself is integer-only.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxLut {
    /// `table[d] ≈ exp(-d / input_scale) · 255`, for the integer difference
    /// `d` between an element and its row maximum.
    table: Vec<u8>,
    /// Scale (levels per unit) of the integer input scores.
    input_scale_bits: u32,
    input_scale: f32,
    /// Maximum output level (e.g. 127 for signed 8-bit probabilities).
    out_levels: u32,
}

impl SoftmaxLut {
    /// Builds the lookup table for input scores quantized with
    /// `input_scale` levels per unit, producing probabilities quantized to
    /// `out_levels` levels (so an output code `c` represents `c / out_levels`).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidScale`] for a non-positive input scale or
    /// [`QuantError::InvalidArgument`] for `out_levels` outside `1..=255`.
    // fqlint::allow(float-escape): construction-time boundary — the exp
    // table is built once from float math; inference only indexes it.
    pub fn new(input_scale: f32, out_levels: u32) -> Result<Self> {
        if !(input_scale.is_finite() && input_scale > 0.0) {
            return Err(QuantError::InvalidScale(input_scale));
        }
        if !(1..=255).contains(&out_levels) {
            return Err(QuantError::InvalidArgument(format!(
                "out_levels must be in 1..=255, got {out_levels}"
            )));
        }
        let table = (0..LUT_ENTRIES)
            .map(|d| {
                let x = -(d as f32) / input_scale;
                (x.exp() * 255.0).round().clamp(0.0, 255.0) as u8
            })
            .collect();
        Ok(Self {
            table,
            input_scale_bits: 8,
            input_scale,
            out_levels,
        })
    }

    /// The 256-entry exponential table (for the accelerator's parameter
    /// buffer initialisation).
    pub fn table(&self) -> &[u8] {
        &self.table
    }

    /// Scale of the integer input scores.
    // fqlint::allow(float-escape): scale-metadata accessor for calibration
    // and artifact serialization; not on the per-token compute path.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Maximum output level (the quantized value representing probability 1).
    pub fn out_levels(&self) -> u32 {
        self.out_levels
    }

    /// Looks up `exp(-(d)/s)` for an integer difference `d ≥ 0`, saturating
    /// to the last entry for differences beyond the table.
    pub fn exp_lookup(&self, diff: i64) -> u32 {
        debug_assert!(
            diff >= 0,
            "difference from the row maximum must be non-negative"
        );
        let idx = diff.clamp(0, (LUT_ENTRIES - 1) as i64) as usize;
        u32::from(self.table[idx])
    }

    /// Applies the integer softmax to one row of quantized scores, returning
    /// probabilities quantized to `out_levels` levels.
    ///
    /// The computation uses only integer comparisons, table lookups, adds and
    /// one integer division per element — the same operations as the
    /// accelerator's Softmax Core.
    pub fn apply_row(&self, scores: &[i32]) -> Vec<i32> {
        if scores.is_empty() {
            return Vec::new();
        }
        let max = scores.iter().copied().max().expect("non-empty row");
        let numerators: Vec<u32> = scores
            .iter()
            .map(|&s| self.exp_lookup(i64::from(max) - i64::from(s)))
            .collect();
        let denom: u64 = numerators.iter().map(|&n| u64::from(n)).sum();
        let denom = denom.max(1);
        numerators
            .iter()
            .map(|&n| {
                // Rounded integer division: (n * out_levels + denom/2) / denom.
                // fqlint::allow(narrowing-cast): `n <= denom`, so the
                // quotient is at most `out_levels`, which fits `i32`.
                ((u64::from(n) * u64::from(self.out_levels) + denom / 2) / denom) as i32
            })
            .collect()
    }

    /// Applies the integer softmax to every row of a matrix stored row-major.
    ///
    /// A `0 × 0` matrix (`cols == 0` with empty data) is valid and yields an
    /// empty output, so zero-length attention segments can flow through
    /// without a special case upstream.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `cols` (including any
    /// non-empty `data` with `cols == 0`).
    pub fn apply_matrix(&self, data: &[i32], cols: usize) -> Vec<i32> {
        if cols == 0 {
            assert!(data.is_empty(), "data must be rectangular");
            return Vec::new();
        }
        assert!(data.len().is_multiple_of(cols), "data must be rectangular");
        data.chunks(cols)
            .flat_map(|row| self.apply_row(row))
            .collect()
    }

    /// Dequantizes an output code back to a probability in `[0, 1]`.
    // fqlint::allow(float-escape): explicit dequantization exit point for
    // tests and reporting; the attention datapath consumes the codes.
    pub fn dequantize_output(&self, code: i32) -> f32 {
        code as f32 / self.out_levels as f32
    }

    /// Number of bits used to index the table (always 8).
    pub fn index_bits(&self) -> u32 {
        self.input_scale_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_softmax(scores: &[f32]) -> Vec<f32> {
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = scores.iter().map(|&s| (s - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }

    #[test]
    fn table_is_monotonically_decreasing() {
        let lut = SoftmaxLut::new(8.0, 127).unwrap();
        let t = lut.table();
        assert_eq!(t.len(), LUT_ENTRIES);
        assert_eq!(t[0], 255);
        for w in t.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn outputs_approximately_sum_to_one() {
        let lut = SoftmaxLut::new(4.0, 255).unwrap();
        let probs = lut.apply_row(&[12, 7, 3, -5, 0, 2]);
        let sum: i32 = probs.iter().sum();
        // Rounding can move the sum slightly away from out_levels.
        assert!((sum - 255).abs() <= 6, "sum of quantized probs = {sum}");
    }

    #[test]
    fn matches_float_softmax_closely() {
        let lut = SoftmaxLut::new(8.0, 255).unwrap();
        let scores = [20i32, 10, 0, -10, -30, 5];
        let quantized = lut.apply_row(&scores);
        let float_scores: Vec<f32> = scores.iter().map(|&s| s as f32 / 8.0).collect();
        let reference = float_softmax(&float_scores);
        for (q, r) in quantized.iter().zip(reference.iter()) {
            let approx = lut.dequantize_output(*q);
            assert!(
                (approx - r).abs() < 0.02,
                "quantized softmax {approx} deviates from float {r}"
            );
        }
    }

    #[test]
    fn shift_invariance_is_exact_in_integer_domain() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        let a = lut.apply_row(&[5, 2, -3, 7]);
        let b = lut.apply_row(&[105, 102, 97, 107]);
        assert_eq!(a, b);
    }

    #[test]
    fn saturates_for_very_negative_scores() {
        let lut = SoftmaxLut::new(2.0, 127).unwrap();
        let probs = lut.apply_row(&[0, -10_000]);
        assert_eq!(probs[1], 0);
        assert_eq!(probs[0], 127);
    }

    #[test]
    fn apply_matrix_processes_each_row_independently() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        let data = vec![1, 2, 3, 4, 10, 0, -10, 5];
        let out = lut.apply_matrix(&data, 4);
        assert_eq!(out.len(), 8);
        assert_eq!(&out[..4], lut.apply_row(&data[..4]).as_slice());
        assert_eq!(&out[4..], lut.apply_row(&data[4..]).as_slice());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SoftmaxLut::new(0.0, 127).is_err());
        assert!(SoftmaxLut::new(-1.0, 127).is_err());
        assert!(SoftmaxLut::new(4.0, 0).is_err());
        assert!(SoftmaxLut::new(4.0, 256).is_err());
    }

    #[test]
    fn empty_row_yields_empty_output() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        assert!(lut.apply_row(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_panics() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        let _ = lut.apply_matrix(&[1, 2, 3], 2);
    }

    #[test]
    fn empty_matrix_with_zero_cols_is_valid() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        assert!(lut.apply_matrix(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn zero_cols_with_data_panics() {
        let lut = SoftmaxLut::new(4.0, 127).unwrap();
        let _ = lut.apply_matrix(&[1], 0);
    }
}
