//! Symmetric linear quantization (paper Eq. 1–3).
//!
//! For a clip threshold `MAX` (with `MIN = -MAX`, symmetric) and bit-width
//! `k`, the quantizer is
//!
//! ```text
//! x_c = clamp(x, -MAX, MAX)
//! s   = (2^(k-1) - 1) / MAX
//! x_I = round(x_c * s)          (integer code)
//! x_q = x_I / s                 (dequantized value)
//! ```
//!
//! Weight scales come from the (optionally tuned) clip threshold (Eq. 2);
//! activation scales come from an EMA of the running max (Eq. 3), provided by
//! [`crate::observer::EmaObserver`].

use crate::{QuantError, Result};
use fqbert_tensor::{IntTensor, Tensor};

/// Per-tensor symmetric quantization parameters: a bit-width and a scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    bits: u32,
    scale: f32,
}

impl QuantParams {
    /// Creates parameters from an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] for `bits` outside `2..=32`
    /// or [`QuantError::InvalidScale`] for a non-positive / non-finite scale.
    pub fn new(bits: u32, scale: f32) -> Result<Self> {
        if !(2..=32).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth(bits));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(QuantError::InvalidScale(scale));
        }
        Ok(Self { bits, scale })
    }

    /// Derives weight-quantization parameters from a weight tensor (Eq. 2).
    ///
    /// With `clip = None` the scale uses `max|W|` (the NO_CLIP configuration
    /// of Fig. 3); with `clip = Some(c)` the weights are clamped to `[-c, c]`
    /// first (the CLIP configuration).
    ///
    /// # Errors
    ///
    /// Returns an error for an unsupported bit-width or an all-zero tensor.
    pub fn for_weights(weights: &Tensor, bits: u32, clip: Option<f32>) -> Result<Self> {
        let abs_max = weights.abs_max()?;
        let range = clip.unwrap_or(abs_max);
        if range <= 0.0 || !range.is_finite() {
            return Err(QuantError::DegenerateRange { abs_max });
        }
        let qmax = Self::level_max(bits)?;
        Self::new(bits, qmax / range)
    }

    /// Derives activation-quantization parameters from an observed running
    /// maximum (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns an error for an unsupported bit-width or a non-positive range.
    pub fn for_activations(observed_max: f32, bits: u32) -> Result<Self> {
        if observed_max <= 0.0 || !observed_max.is_finite() {
            return Err(QuantError::DegenerateRange {
                abs_max: observed_max,
            });
        }
        let qmax = Self::level_max(bits)?;
        Self::new(bits, qmax / observed_max)
    }

    /// Largest representable level `2^(k-1) - 1` for a bit-width.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedBitWidth`] outside `2..=32`.
    pub fn level_max(bits: u32) -> Result<f32> {
        if !(2..=32).contains(&bits) {
            return Err(QuantError::UnsupportedBitWidth(bits));
        }
        Ok(((1u64 << (bits - 1)) - 1) as f32)
    }

    /// Bit-width `k`.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Scale factor `s` (integer levels per unit of real value).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Clip threshold implied by the scale, `MAX = (2^(k-1)-1)/s`.
    pub fn clip(&self) -> f32 {
        Self::level_max(self.bits).expect("bits validated at construction") / self.scale
    }

    /// Quantizes a single value to its integer code (Eq. 1).
    pub fn quantize_value(&self, x: f32) -> i32 {
        let clip = self.clip();
        let clamped = x.clamp(-clip, clip);
        // fqlint::allow(narrowing-cast): float-to-int `as` saturates in
        // Rust, and `clamped * scale` is bounded by the code range the
        // scheme was built for.
        (clamped * self.scale).round() as i32
    }

    /// Dequantizes an integer code back to a real value.
    pub fn dequantize_value(&self, code: i32) -> f32 {
        code as f32 / self.scale
    }

    /// Quantize-dequantize a single value (the "fake quant" path).
    pub fn fake_quantize_value(&self, x: f32) -> f32 {
        self.dequantize_value(self.quantize_value(x))
    }

    /// Quantizes a tensor to `i8` codes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the bit-width exceeds 8 (codes would not fit
    /// in `i8`); in release builds values saturate.
    pub fn quantize_tensor_i8(&self, x: &Tensor) -> IntTensor<i8> {
        debug_assert!(self.bits <= 8, "i8 codes require a bit-width of at most 8");
        let data: Vec<i8> = x
            .as_slice()
            .iter()
            .map(|&v| self.quantize_value(v).clamp(i8::MIN as i32, i8::MAX as i32) as i8)
            .collect();
        IntTensor::from_vec(data, x.dims()).expect("shape preserved")
    }

    /// Quantizes a tensor to `i32` codes (used for wide intermediates).
    pub fn quantize_tensor_i32(&self, x: &Tensor) -> IntTensor<i32> {
        let data: Vec<i32> = x
            .as_slice()
            .iter()
            .map(|&v| self.quantize_value(v))
            .collect();
        IntTensor::from_vec(data, x.dims()).expect("shape preserved")
    }

    /// Quantize-dequantize a whole tensor.
    pub fn fake_quantize_tensor(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.fake_quantize_value(v))
    }

    /// Mean squared quantization error over a tensor.
    pub fn quantization_mse(&self, x: &Tensor) -> f32 {
        let q = self.fake_quantize_tensor(x);
        x.mse(&q).unwrap_or(f32::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn level_max_values() {
        assert_eq!(QuantParams::level_max(2).unwrap(), 1.0);
        assert_eq!(QuantParams::level_max(4).unwrap(), 7.0);
        assert_eq!(QuantParams::level_max(8).unwrap(), 127.0);
        assert_eq!(QuantParams::level_max(32).unwrap(), (i32::MAX as f32));
        assert!(QuantParams::level_max(1).is_err());
        assert!(QuantParams::level_max(33).is_err());
    }

    #[test]
    fn weight_scale_matches_eq2() {
        let w = t(&[0.5, -2.0, 1.0]);
        let p = QuantParams::for_weights(&w, 4, None).unwrap();
        assert!((p.scale() - 7.0 / 2.0).abs() < 1e-6);
        assert!((p.clip() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn activation_scale_matches_eq3() {
        let p = QuantParams::for_activations(4.0, 8).unwrap();
        assert!((p.scale() - 127.0 / 4.0).abs() < 1e-5);
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let w = t(&[0.31, -0.77, 0.05, 0.99, -0.42]);
        for bits in [4, 6, 8] {
            let p = QuantParams::for_weights(&w, bits, None).unwrap();
            let step = 1.0 / p.scale();
            for &x in w.as_slice() {
                let err = (x - p.fake_quantize_value(x)).abs();
                assert!(
                    err <= step / 2.0 + 1e-6,
                    "error {err} exceeds half step {step}"
                );
            }
        }
    }

    #[test]
    fn codes_stay_within_level_range() {
        let w = t(&[0.9, -0.9, 0.1, -0.1, 0.5]);
        let p = QuantParams::for_weights(&w, 4, None).unwrap();
        let q = p.quantize_tensor_i8(&w);
        assert!(q.as_slice().iter().all(|&c| (-7..=7).contains(&c)));
    }

    #[test]
    fn clipping_saturates_outliers() {
        let p = QuantParams::for_weights(&t(&[10.0, -0.5, 0.5]), 8, Some(1.0)).unwrap();
        assert_eq!(p.quantize_value(10.0), 127);
        assert_eq!(p.quantize_value(-10.0), -127);
    }

    #[test]
    fn degenerate_and_invalid_inputs() {
        assert!(QuantParams::for_weights(&t(&[0.0, 0.0]), 4, None).is_err());
        assert!(QuantParams::for_activations(0.0, 8).is_err());
        assert!(QuantParams::for_activations(f32::NAN, 8).is_err());
        assert!(QuantParams::new(8, -1.0).is_err());
        assert!(QuantParams::new(0, 1.0).is_err());
    }

    #[test]
    fn higher_bitwidth_has_lower_mse() {
        let mut rng = fqbert_tensor::RngSource::seed_from_u64(1);
        let w = rng.normal_tensor(&[256], 0.0, 1.0);
        let mse2 = QuantParams::for_weights(&w, 2, None)
            .unwrap()
            .quantization_mse(&w);
        let mse4 = QuantParams::for_weights(&w, 4, None)
            .unwrap()
            .quantization_mse(&w);
        let mse8 = QuantParams::for_weights(&w, 8, None)
            .unwrap()
            .quantization_mse(&w);
        assert!(mse2 > mse4, "2-bit MSE should exceed 4-bit MSE");
        assert!(mse4 > mse8, "4-bit MSE should exceed 8-bit MSE");
    }

    #[test]
    fn quantize_i32_matches_value_quantizer() {
        let w = t(&[0.2, -0.4, 0.6]);
        let p = QuantParams::for_weights(&w, 8, None).unwrap();
        let q = p.quantize_tensor_i32(&w);
        for (i, &x) in w.as_slice().iter().enumerate() {
            assert_eq!(q.as_slice()[i], p.quantize_value(x));
        }
    }
}
