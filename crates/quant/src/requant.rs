//! Integer-only requantization of accumulator values (paper Eq. 5).
//!
//! After the integer matrix multiply, the int32 accumulator (plus int32 bias)
//! must be rescaled to the next layer's 8-bit activation grid:
//!
//! ```text
//! y_I = round((Σ a_I·w_I + b_I) · s_f),   s_f = s_y / (s_a · s_w)
//! ```
//!
//! On the accelerator this is done without floating point: `s_f` is encoded
//! as a 32-bit fixed-point multiplier and a right shift. [`Requantizer`]
//! reproduces that datapath bit-exactly and is what both the integer
//! inference engine and the accelerator simulator use.

use crate::{QuantError, Result};

/// Number of fractional bits used for the fixed-point requantization
/// multiplier (the paper stores `s_f` as a 32-bit integer; we use a Q1.30
/// normalised-mantissa encoding, the common HLS implementation).
const MULTIPLIER_FRAC_BITS: u32 = 30;

/// Largest representable right shift. Capped below 63 so that the rounding
/// term `1 << (shift - 1)` and the shift itself always stay inside the
/// product's integer width; scales too small for this shift fold the excess
/// into the multiplier instead (see [`Requantizer::from_scale`]).
const MAX_SHIFT: i32 = 62;

/// Fixed-point requantizer implementing Eq. 5 with integer arithmetic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requantizer {
    /// Normalised multiplier in Q1.30 (in `[2^29, 2^30]` for scales inside
    /// the normalised range; denormalised — possibly zero — for scales below
    /// `2^-32`, where the excess shift is folded in).
    multiplier: i64,
    /// Total right shift applied after the multiplication, always in
    /// `0..=MAX_SHIFT`.
    shift: i32,
    /// Output saturation bound (`2^(bits-1) - 1`).
    out_max: i32,
}

impl Requantizer {
    /// Builds a requantizer for the effective scale
    /// `s_f = s_y / (s_a · s_w)` and an output bit-width.
    ///
    /// Every positive finite scale is representable: for scales so small
    /// that the normalised shift would exceed [`MAX_SHIFT`] (below roughly
    /// `2^-32`) the excess is folded into the multiplier with rounded
    /// halving — down to a zero multiplier for scales under `~2^-63`, where
    /// rounding every representable accumulator to zero *is* the correct
    /// result. For huge scales whose normalised shift would go negative
    /// (scale ≥ `2^30`), the shift is clamped to zero; the multiplier alone
    /// then already exceeds every supported output bound, so all non-zero
    /// accumulators saturate exactly as they would with the true scale.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidScale`] if `effective_scale` is not a
    /// positive finite number, or [`QuantError::UnsupportedBitWidth`] for an
    /// output width outside `2..=16`.
    // fqlint::allow(float-escape): construction-time boundary — the float
    // effective scale is folded into a fixed-point multiplier/shift pair
    // exactly once; `apply` is integer-only.
    pub fn from_scale(effective_scale: f64, out_bits: u32) -> Result<Self> {
        if !(effective_scale.is_finite() && effective_scale > 0.0) {
            return Err(QuantError::InvalidScale(effective_scale as f32));
        }
        if !(2..=16).contains(&out_bits) {
            return Err(QuantError::UnsupportedBitWidth(out_bits));
        }
        // Normalise the scale into [0.5, 1.0) × 2^exp.
        let mut scale = effective_scale;
        let mut exp = 0i32;
        while scale >= 1.0 {
            scale /= 2.0;
            exp += 1;
        }
        while scale < 0.5 {
            scale *= 2.0;
            exp -= 1;
        }
        let mut multiplier = (scale * f64::from(1u32 << MULTIPLIER_FRAC_BITS)).round() as i64;
        // fqlint::allow(narrowing-cast): `MULTIPLIER_FRAC_BITS` is a
        // bit-shift amount < 32.
        let mut shift = MULTIPLIER_FRAC_BITS as i32 - exp;
        if shift > MAX_SHIFT {
            // Tiny scale: fold the unrepresentable part of the shift into
            // the multiplier (rounded halving; underflows to 0 for scales
            // below ~2^-63, which maps every accumulator to the correctly
            // rounded output 0).
            let excess = shift - MAX_SHIFT;
            multiplier = if excess >= 63 {
                0
            } else {
                (multiplier + (1i64 << (excess - 1))) >> excess
            };
            shift = MAX_SHIFT;
        } else if shift < 0 {
            // Huge scale: with the Q1.30 multiplier ≥ 2^29 > out_max, every
            // non-zero accumulator saturates whether the product is shifted
            // left or not, so clamping the shift to 0 changes no output.
            shift = 0;
        }
        Ok(Self {
            multiplier,
            shift,
            out_max: (1i32 << (out_bits - 1)) - 1,
        })
    }

    /// Effective scale represented by this requantizer (for inspection).
    ///
    /// For scales inside the representable band (roughly `2^-63` to `2^30`)
    /// this closely tracks the scale passed to
    /// [`Requantizer::from_scale`]. Outside it, the clamped encoding is
    /// reported: huge scales read as `~2^29..2^30` (every non-zero
    /// accumulator saturates either way) and fully underflowed tiny scales
    /// read as `0` (every accumulator requantizes to zero).
    // fqlint::allow(float-escape): inspection/debug accessor reporting the
    // encoded scale; the requantization path never calls it.
    pub fn effective_scale(&self) -> f64 {
        self.multiplier as f64 / f64::powi(2.0, self.shift)
    }

    /// Requantizes one accumulator value to the output grid, using only
    /// integer multiply, add and shift (round-half-away-from-zero, saturating).
    ///
    /// The `accumulator · multiplier` product is formed in 128-bit integer
    /// arithmetic (a 64×33-bit product cannot overflow i128), so the full
    /// `i64` accumulator range is handled exactly — the previous 64-bit
    /// product overflowed for `|accumulator| ≳ 2^33` with a Q1.30 multiplier.
    pub fn apply(&self, accumulator: i64) -> i32 {
        let product = i128::from(accumulator) * i128::from(self.multiplier);
        // `shift` is clamped to 0..=MAX_SHIFT at construction, so both the
        // rounding term and the shift are always in range.
        let rounded = if self.shift > 0 {
            let half = 1i128 << (self.shift - 1);
            if product >= 0 {
                (product + half) >> self.shift
            } else {
                -((-product + half) >> self.shift)
            }
        } else {
            product
        };
        rounded.clamp(-i128::from(self.out_max), i128::from(self.out_max)) as i32
    }

    /// Requantizes a slice of accumulator values.
    pub fn apply_slice(&self, accumulators: &[i64]) -> Vec<i32> {
        accumulators.iter().map(|&a| self.apply(a)).collect()
    }

    /// Output saturation bound.
    pub fn out_max(&self) -> i32 {
        self.out_max
    }

    /// The fixed-point multiplier (Q1.30-normalised, always in
    /// `[0, 2^30]` — denormal folding for tiny scales only shrinks it).
    /// Together with [`Requantizer::shift`] this exposes the encoded
    /// datapath so a fused GEMM epilogue (e.g.
    /// `fqbert_tensor::gemm::gemm_i8_requant`) can reproduce
    /// [`Requantizer::apply`] bit-exactly without holding a `Requantizer`.
    pub fn multiplier(&self) -> i64 {
        self.multiplier
    }

    /// The post-multiply right shift, always in `0..=62`.
    pub fn shift(&self) -> i32 {
        self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_float_reference_within_one_lsb() {
        for &scale in &[0.0123f64, 0.37, 0.0009, 1.7, 5.3e-4] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            for acc in [-100_000i64, -1234, -1, 0, 1, 999, 54_321, 1_000_000] {
                let float_ref = (acc as f64 * scale).round();
                let clamped = float_ref.clamp(-127.0, 127.0) as i32;
                let got = rq.apply(acc);
                assert!(
                    (got - clamped).abs() <= 1,
                    "scale {scale}, acc {acc}: {got} vs {clamped}"
                );
            }
        }
    }

    #[test]
    fn saturates_at_output_bounds() {
        let rq = Requantizer::from_scale(1.0, 8).unwrap();
        assert_eq!(rq.apply(1_000_000), 127);
        assert_eq!(rq.apply(-1_000_000), -127);
        assert_eq!(rq.out_max(), 127);
    }

    #[test]
    fn effective_scale_is_close_to_requested() {
        for &scale in &[0.01f64, 0.5, 2.0, 1e-4] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            let rel_err = (rq.effective_scale() - scale).abs() / scale;
            assert!(rel_err < 1e-6, "scale {scale}: rel err {rel_err}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(Requantizer::from_scale(0.0, 8).is_err());
        assert!(Requantizer::from_scale(-1.0, 8).is_err());
        assert!(Requantizer::from_scale(f64::NAN, 8).is_err());
        assert!(Requantizer::from_scale(0.5, 1).is_err());
        assert!(Requantizer::from_scale(0.5, 32).is_err());
    }

    #[test]
    fn rounding_is_symmetric_around_zero() {
        let rq = Requantizer::from_scale(0.1, 8).unwrap();
        for acc in 1..500i64 {
            assert_eq!(rq.apply(acc), -rq.apply(-acc), "asymmetric at {acc}");
        }
    }

    #[test]
    fn four_bit_output_range() {
        let rq = Requantizer::from_scale(0.05, 4).unwrap();
        for acc in [-10_000i64, -500, 0, 500, 10_000] {
            let out = rq.apply(acc);
            assert!((-7..=7).contains(&out));
        }
    }

    #[test]
    fn tiny_scales_at_the_shift_boundary_do_not_panic() {
        // shift = 30 - exp; exp = -32 puts shift exactly at MAX_SHIFT = 62,
        // one octave below crosses the old panic threshold (shift > 63).
        for &scale in &[
            2.0f64.powi(-32),
            2.0f64.powi(-33),
            2.0f64.powi(-34),
            2.0f64.powi(-40),
            2.0f64.powi(-63),
            2.0f64.powi(-64),
            1e-300,
            f64::MIN_POSITIVE,
            5e-324, // smallest positive subnormal
        ] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            for acc in [i64::MIN, -(1 << 40), -1, 0, 1, 1 << 40, i64::MAX] {
                let got = rq.apply(acc);
                let expected = (acc as f64 * scale).round().clamp(-127.0, 127.0) as i32;
                assert!(
                    (got - expected).abs() <= 1,
                    "scale {scale:e}, acc {acc}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn tiny_scale_still_requantizes_large_accumulators_accurately() {
        // 2^-40 · 2^48 = 256 → saturates at 127; 2^-40 · 3·2^45 = 96.
        let rq = Requantizer::from_scale(2.0f64.powi(-40), 8).unwrap();
        assert_eq!(rq.apply(1 << 48), 127);
        assert_eq!(rq.apply(3 << 45), 96);
        assert_eq!(rq.apply(-(3 << 45)), -96);
        assert_eq!(rq.apply(0), 0);
    }

    #[test]
    fn huge_scales_saturate_instead_of_overflowing_the_left_shift() {
        for &scale in &[2.0f64.powi(31), 1e30, 1e300, f64::MAX] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            assert_eq!(rq.apply(1), 127, "scale {scale:e}");
            assert_eq!(rq.apply(-1), -127, "scale {scale:e}");
            assert_eq!(rq.apply(i64::MAX), 127);
            assert_eq!(rq.apply(0), 0);
        }
    }

    #[test]
    fn wide_accumulators_no_longer_overflow_the_product() {
        // With a Q1.30 multiplier the old i64 product overflowed for
        // |acc| ≳ 2^33; these must saturate cleanly instead.
        let rq = Requantizer::from_scale(0.5, 8).unwrap();
        for acc in [1i64 << 33, 1 << 40, i64::MAX, -(1 << 33), i64::MIN] {
            let expected = if acc > 0 { 127 } else { -127 };
            assert_eq!(rq.apply(acc), expected, "acc {acc}");
        }
        // Full int32-accumulator range at a scale small enough not to
        // saturate: compare against the float reference.
        let rq = Requantizer::from_scale(2.0f64.powi(-26), 8).unwrap();
        for acc in [
            i64::from(i32::MAX),
            i64::from(i32::MIN),
            1 << 30,
            -(1 << 30),
        ] {
            let expected = (acc as f64 * 2.0f64.powi(-26)).round().clamp(-127.0, 127.0) as i32;
            assert!((rq.apply(acc) - expected).abs() <= 1, "acc {acc}");
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let rq = Requantizer::from_scale(0.02, 8).unwrap();
        let accs = vec![-3000i64, -1, 0, 17, 2500];
        let out = rq.apply_slice(&accs);
        for (i, &a) in accs.iter().enumerate() {
            assert_eq!(out[i], rq.apply(a));
        }
    }
}
