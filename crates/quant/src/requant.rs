//! Integer-only requantization of accumulator values (paper Eq. 5).
//!
//! After the integer matrix multiply, the int32 accumulator (plus int32 bias)
//! must be rescaled to the next layer's 8-bit activation grid:
//!
//! ```text
//! y_I = round((Σ a_I·w_I + b_I) · s_f),   s_f = s_y / (s_a · s_w)
//! ```
//!
//! On the accelerator this is done without floating point: `s_f` is encoded
//! as a 32-bit fixed-point multiplier and a right shift. [`Requantizer`]
//! reproduces that datapath bit-exactly and is what both the integer
//! inference engine and the accelerator simulator use.

use crate::{QuantError, Result};

/// Number of fractional bits used for the fixed-point requantization
/// multiplier (the paper stores `s_f` as a 32-bit integer; we use a Q1.30
/// normalised-mantissa encoding, the common HLS implementation).
const MULTIPLIER_FRAC_BITS: u32 = 30;

/// Fixed-point requantizer implementing Eq. 5 with integer arithmetic only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requantizer {
    /// Normalised multiplier in Q1.30 (in `[2^29, 2^30)` for non-zero scales).
    multiplier: i64,
    /// Total right shift applied after the multiplication.
    shift: i32,
    /// Output saturation bound (`2^(bits-1) - 1`).
    out_max: i32,
}

impl Requantizer {
    /// Builds a requantizer for the effective scale
    /// `s_f = s_y / (s_a · s_w)` and an output bit-width.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidScale`] if `effective_scale` is not a
    /// positive finite number, or [`QuantError::UnsupportedBitWidth`] for an
    /// output width outside `2..=16`.
    pub fn from_scale(effective_scale: f64, out_bits: u32) -> Result<Self> {
        if !(effective_scale.is_finite() && effective_scale > 0.0) {
            return Err(QuantError::InvalidScale(effective_scale as f32));
        }
        if !(2..=16).contains(&out_bits) {
            return Err(QuantError::UnsupportedBitWidth(out_bits));
        }
        // Normalise the scale into [0.5, 1.0) × 2^exp.
        let mut scale = effective_scale;
        let mut exp = 0i32;
        while scale >= 1.0 {
            scale /= 2.0;
            exp += 1;
        }
        while scale < 0.5 {
            scale *= 2.0;
            exp -= 1;
        }
        let multiplier = (scale * f64::from(1u32 << MULTIPLIER_FRAC_BITS)).round() as i64;
        let shift = MULTIPLIER_FRAC_BITS as i32 - exp;
        Ok(Self {
            multiplier,
            shift,
            out_max: (1i32 << (out_bits - 1)) - 1,
        })
    }

    /// Effective scale represented by this requantizer (for inspection).
    pub fn effective_scale(&self) -> f64 {
        self.multiplier as f64 / f64::powi(2.0, self.shift)
    }

    /// Requantizes one accumulator value to the output grid, using only
    /// integer multiply, add and shift (round-half-away-from-zero, saturating).
    pub fn apply(&self, accumulator: i64) -> i32 {
        let product = accumulator * self.multiplier;
        let rounded = if self.shift > 0 {
            let half = 1i64 << (self.shift - 1);
            if product >= 0 {
                (product + half) >> self.shift
            } else {
                -((-product + half) >> self.shift)
            }
        } else {
            product << (-self.shift)
        };
        rounded.clamp(-(self.out_max as i64), self.out_max as i64) as i32
    }

    /// Requantizes a slice of accumulator values.
    pub fn apply_slice(&self, accumulators: &[i64]) -> Vec<i32> {
        accumulators.iter().map(|&a| self.apply(a)).collect()
    }

    /// Output saturation bound.
    pub fn out_max(&self) -> i32 {
        self.out_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_float_reference_within_one_lsb() {
        for &scale in &[0.0123f64, 0.37, 0.0009, 1.7, 5.3e-4] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            for acc in [-100_000i64, -1234, -1, 0, 1, 999, 54_321, 1_000_000] {
                let float_ref = (acc as f64 * scale).round();
                let clamped = float_ref.clamp(-127.0, 127.0) as i32;
                let got = rq.apply(acc);
                assert!(
                    (got - clamped).abs() <= 1,
                    "scale {scale}, acc {acc}: {got} vs {clamped}"
                );
            }
        }
    }

    #[test]
    fn saturates_at_output_bounds() {
        let rq = Requantizer::from_scale(1.0, 8).unwrap();
        assert_eq!(rq.apply(1_000_000), 127);
        assert_eq!(rq.apply(-1_000_000), -127);
        assert_eq!(rq.out_max(), 127);
    }

    #[test]
    fn effective_scale_is_close_to_requested() {
        for &scale in &[0.01f64, 0.5, 2.0, 1e-4] {
            let rq = Requantizer::from_scale(scale, 8).unwrap();
            let rel_err = (rq.effective_scale() - scale).abs() / scale;
            assert!(rel_err < 1e-6, "scale {scale}: rel err {rel_err}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(Requantizer::from_scale(0.0, 8).is_err());
        assert!(Requantizer::from_scale(-1.0, 8).is_err());
        assert!(Requantizer::from_scale(f64::NAN, 8).is_err());
        assert!(Requantizer::from_scale(0.5, 1).is_err());
        assert!(Requantizer::from_scale(0.5, 32).is_err());
    }

    #[test]
    fn rounding_is_symmetric_around_zero() {
        let rq = Requantizer::from_scale(0.1, 8).unwrap();
        for acc in 1..500i64 {
            assert_eq!(rq.apply(acc), -rq.apply(-acc), "asymmetric at {acc}");
        }
    }

    #[test]
    fn four_bit_output_range() {
        let rq = Requantizer::from_scale(0.05, 4).unwrap();
        for acc in [-10_000i64, -500, 0, 500, 10_000] {
            let out = rq.apply(acc);
            assert!((-7..=7).contains(&out));
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let rq = Requantizer::from_scale(0.02, 8).unwrap();
        let accs = vec![-3000i64, -1, 0, 17, 2500];
        let out = rq.apply_slice(&accs);
        for (i, &a) in accs.iter().enumerate() {
            assert_eq!(out[i], rq.apply(a));
        }
    }
}
