//! Signed fixed-point arithmetic shared by the softmax and layer-norm cores.
//!
//! The paper quantizes the softmax numerator/output and the layer-norm
//! parameters to 8-bit fixed point. [`Fixed`] models a signed fixed-point
//! value with a configurable number of fractional bits and saturating
//! arithmetic, which is how the HLS implementation behaves.

use std::fmt;

/// A signed fixed-point number: `value = raw / 2^frac_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fixed {
    raw: i32,
    frac_bits: u32,
}

impl Fixed {
    /// Creates a fixed-point value from its raw integer representation.
    pub fn from_raw(raw: i32, frac_bits: u32) -> Self {
        Self { raw, frac_bits }
    }

    /// Converts a real number, rounding to the nearest representable value
    /// and saturating at the `i32` raw range.
    pub fn from_f32(value: f32, frac_bits: u32) -> Self {
        // fqlint::allow(narrowing-cast): `frac_bits` is a bit-shift
        // amount, always < 32.
        let scaled = (value as f64 * f64::powi(2.0, frac_bits as i32)).round();
        let raw = scaled.clamp(i32::MIN as f64, i32::MAX as f64) as i32;
        Self { raw, frac_bits }
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        // fqlint::allow(narrowing-cast): `frac_bits` is a bit-shift
        // amount, always < 32.
        self.raw as f32 / f32::powi(2.0, self.frac_bits as i32)
    }

    /// Raw integer representation.
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// Number of fractional bits.
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Saturating addition. Both operands must share the same format.
    ///
    /// # Panics
    ///
    /// Panics if the fractional bit counts differ.
    pub fn saturating_add(self, other: Fixed) -> Fixed {
        assert_eq!(
            self.frac_bits, other.frac_bits,
            "fixed-point formats must match for addition"
        );
        Fixed {
            raw: self.raw.saturating_add(other.raw),
            frac_bits: self.frac_bits,
        }
    }

    /// Saturating subtraction. Both operands must share the same format.
    ///
    /// # Panics
    ///
    /// Panics if the fractional bit counts differ.
    pub fn saturating_sub(self, other: Fixed) -> Fixed {
        assert_eq!(
            self.frac_bits, other.frac_bits,
            "fixed-point formats must match for subtraction"
        );
        Fixed {
            raw: self.raw.saturating_sub(other.raw),
            frac_bits: self.frac_bits,
        }
    }

    /// Fixed-point multiplication, keeping the left operand's format and
    /// rounding the dropped fraction bits.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Fixed) -> Fixed {
        let wide = self.raw as i64 * other.raw as i64;
        let shift = other.frac_bits;
        let half = if shift > 0 { 1i64 << (shift - 1) } else { 0 };
        let rounded = if wide >= 0 {
            (wide + half) >> shift
        } else {
            -((-wide + half) >> shift)
        };
        Fixed {
            raw: rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32,
            frac_bits: self.frac_bits,
        }
    }

    /// Re-encodes the value with a different number of fractional bits.
    pub fn rescale(self, frac_bits: u32) -> Fixed {
        if frac_bits >= self.frac_bits {
            let shift = frac_bits - self.frac_bits;
            Fixed {
                raw: self.raw.saturating_mul(1 << shift),
                frac_bits,
            }
        } else {
            let shift = self.frac_bits - frac_bits;
            let half = 1i32 << (shift - 1);
            let raw = if self.raw >= 0 {
                (self.raw.saturating_add(half)) >> shift
            } else {
                -((-self.raw).saturating_add(half) >> shift)
            };
            Fixed { raw, frac_bits }
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (Q.{})", self.to_f32(), self.frac_bits)
    }
}

/// Integer inverse square root via Newton–Raphson on fixed-point values,
/// used by the quantized layer-norm core. Returns `1/sqrt(x)` for `x > 0`
/// encoded with `frac_bits` fractional bits.
///
/// # Panics
///
/// Panics if `x` is not strictly positive.
pub fn fixed_inv_sqrt(x: Fixed, iterations: u32) -> Fixed {
    assert!(x.raw() > 0, "inverse square root requires a positive input");
    // Start from a floating-point-free initial guess y0 = 2^(-ceil(log2(x)/2)).
    //
    // The ceiling matters: with x = 2^e·m (m in [1, 2)) this guarantees
    // 0.5·x·y0² < 1, so the first Newton correction `1.5 - 0.5·x·y0²` stays
    // positive, and every later iterate lands in (0, 1/sqrt(x)] — the basin
    // of the positive root. A truncating `e/2` guess overshoots for odd
    // positive e (e.g. x in [3,4) or [12,16)) and Newton then converges to
    // the *negative* root -1/sqrt(x), sign-flipping the caller's output.
    // fqlint::allow(narrowing-cast): `leading_zeros()` is at most 32 and
    // `frac_bits` is a bit-shift amount < 32 — both fit `i32`.
    let value_log2 = 31 - x.raw().leading_zeros() as i32 - x.frac_bits() as i32;
    let guess_log2 = -(value_log2 + 1).div_euclid(2);
    let frac = x.frac_bits();
    // fqlint::allow(narrowing-cast): `frac` is a bit-shift amount < 32.
    let mut y = Fixed::from_raw(1i32 << (frac as i32 + guess_log2).clamp(0, 30), frac);
    let three_halves = Fixed::from_f32(1.5, frac);
    let half_x = Fixed::from_raw(x.raw() / 2, frac);
    for _ in 0..iterations {
        // y = y * (1.5 - 0.5 * x * y * y)
        let y2 = y.mul(y);
        let term = half_x.mul(y2);
        let correction = three_halves.saturating_sub(term);
        if correction.raw() <= 0 {
            // Defensive guard (unreachable with the guess above): back off
            // towards zero rather than crossing into the negative basin.
            y = Fixed::from_raw(y.raw() / 2, frac);
            continue;
        }
        y = y.mul(correction);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_conversion() {
        for &v in &[0.0f32, 1.5, -2.25, 0.125, 100.0, -0.0625] {
            let f = Fixed::from_f32(v, 12);
            assert!((f.to_f32() - v).abs() < 1.0 / 4096.0);
        }
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Fixed::from_f32(1.25, 8);
        let b = Fixed::from_f32(0.5, 8);
        assert!((a.saturating_add(b).to_f32() - 1.75).abs() < 1e-3);
        assert!((a.saturating_sub(b).to_f32() - 0.75).abs() < 1e-3);
    }

    #[test]
    fn multiplication_accuracy() {
        let a = Fixed::from_f32(1.5, 12);
        let b = Fixed::from_f32(-2.25, 12);
        assert!((a.mul(b).to_f32() + 3.375).abs() < 1e-2);
    }

    #[test]
    fn saturation_does_not_wrap() {
        let a = Fixed::from_raw(i32::MAX, 8);
        let b = Fixed::from_raw(1, 8);
        assert_eq!(a.saturating_add(b).raw(), i32::MAX);
        let c = Fixed::from_raw(i32::MIN, 8);
        assert_eq!(c.saturating_sub(b).raw(), i32::MIN);
    }

    #[test]
    fn rescale_preserves_value() {
        let a = Fixed::from_f32(3.75, 8);
        let b = a.rescale(12);
        assert!((b.to_f32() - 3.75).abs() < 1e-3);
        let c = b.rescale(4);
        assert!((c.to_f32() - 3.75).abs() < 0.07);
    }

    #[test]
    #[should_panic(expected = "formats must match")]
    fn mismatched_formats_panic_on_add() {
        let _ = Fixed::from_f32(1.0, 8).saturating_add(Fixed::from_f32(1.0, 10));
    }

    #[test]
    fn inv_sqrt_matches_float_reference() {
        for &v in &[0.25f32, 1.0, 2.0, 4.0, 9.0, 16.0, 100.0] {
            let x = Fixed::from_f32(v, 16);
            let y = fixed_inv_sqrt(x, 12);
            let expected = 1.0 / v.sqrt();
            let rel = (y.to_f32() - expected).abs() / expected;
            assert!(
                rel < 0.02,
                "1/sqrt({v}): got {} want {expected}",
                y.to_f32()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive input")]
    fn inv_sqrt_rejects_non_positive() {
        let _ = fixed_inv_sqrt(Fixed::from_f32(0.0, 16), 4);
    }

    #[test]
    fn display_contains_format() {
        let s = Fixed::from_f32(1.5, 8).to_string();
        assert!(s.contains("Q.8"));
    }
}
