//! Error type for quantization operations.

use fqbert_tensor::TensorError;
use std::fmt;

/// Error returned by quantization primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The requested bit-width is outside the supported range.
    UnsupportedBitWidth(u32),
    /// The tensor to be quantized contains no finite, non-zero dynamic range.
    DegenerateRange {
        /// Largest absolute value observed.
        abs_max: f32,
    },
    /// A scale factor is non-positive or non-finite.
    InvalidScale(f32),
    /// An argument is outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
            QuantError::UnsupportedBitWidth(bits) => {
                write!(f, "unsupported quantization bit-width {bits}")
            }
            QuantError::DegenerateRange { abs_max } => {
                write!(
                    f,
                    "cannot derive a scale from a degenerate range (|x|max = {abs_max})"
                )
            }
            QuantError::InvalidScale(s) => write!(f, "invalid scale factor {s}"),
            QuantError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for QuantError {
    fn from(e: TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let errs: Vec<QuantError> = vec![
            TensorError::EmptyTensor("max").into(),
            QuantError::UnsupportedBitWidth(1),
            QuantError::DegenerateRange { abs_max: 0.0 },
            QuantError::InvalidScale(-1.0),
            QuantError::InvalidArgument("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
