//! Quantization primitives for FQ-BERT (paper §II).
//!
//! The paper quantizes *everything*: weights (4-bit), activations (8-bit),
//! biases (32-bit integers), scale factors, the softmax numerator and output,
//! layer-normalization parameters, and every intermediate result. This crate
//! implements each of those mechanisms as a standalone, testable component:
//!
//! * [`scheme`] — symmetric linear quantization (Eq. 1–3): clamping, scale
//!   computation for weights and activations, quantize/dequantize.
//! * [`observer`] — min/max and exponential-moving-average activation
//!   observers used to calibrate activation scales during fine-tuning.
//! * [`clip`] — clip-threshold tuning (the CLIP configuration of Fig. 3),
//!   implemented as an MSE-optimal grid search.
//! * [`bias`] — 32-bit integer bias quantization with `s_bias = s_a·s_w`
//!   (Eq. 4).
//! * [`requant`] — integer-only requantization of the int32 accumulator back
//!   to int8 using a fixed-point multiplier (Eq. 5).
//! * [`fixedpoint`] — the signed fixed-point value type shared by the softmax
//!   and layer-norm cores.
//! * [`softmax_lut`] — the 256-entry lookup-table softmax with
//!   max-subtraction (paper §III-B, Softmax Core).
//! * [`layernorm_q`] — integer/fixed-point layer normalization (paper §III-B,
//!   LN Core).
//! * [`bitwidth`] — the per-part bit-width configuration of FQ-BERT.
//!
//! # Examples
//!
//! ```
//! use fqbert_quant::QuantParams;
//! use fqbert_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![0.5, -1.0, 0.25, 0.75], &[2, 2])?;
//! let params = QuantParams::for_weights(&w, 4, None)?;
//! let q = params.quantize_tensor_i8(&w);
//! let back = q.dequantize(1.0 / params.scale());
//! assert!(w.allclose(&back, 0.5 / params.scale() + 1e-6));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod bias;
pub mod bitwidth;
pub mod clip;
pub mod error;
pub mod fixedpoint;
pub mod layernorm_q;
pub mod observer;
pub mod requant;
pub mod scheme;
pub mod softmax_lut;

pub use bias::quantize_bias;
pub use bitwidth::{LayerBits, PartBits, QuantConfig, LAYER_SITES, LAYER_SITE_NAMES};
pub use clip::tune_clip_threshold;
pub use error::QuantError;
pub use fixedpoint::Fixed;
pub use layernorm_q::QuantizedLayerNorm;
pub use observer::{EmaObserver, MinMaxObserver};
pub use requant::Requantizer;
pub use scheme::QuantParams;
pub use softmax_lut::SoftmaxLut;

/// Convenience result alias for quantization operations.
pub type Result<T> = std::result::Result<T, QuantError>;
