//! Activation-range observers.
//!
//! The paper derives activation scales from an exponential moving average of
//! the per-batch maximum absolute activation (Eq. 3). [`EmaObserver`]
//! implements exactly that; [`MinMaxObserver`] keeps the global min/max and
//! is used for one-shot post-training calibration.

use crate::{QuantError, QuantParams, Result};
use fqbert_tensor::Tensor;

/// Exponential-moving-average observer of the maximum absolute activation.
///
/// # Examples
///
/// ```
/// use fqbert_quant::EmaObserver;
/// use fqbert_tensor::Tensor;
///
/// let mut obs = EmaObserver::new(0.9);
/// obs.observe(&Tensor::from_vec(vec![1.0, -2.0], &[2])?);
/// obs.observe(&Tensor::from_vec(vec![0.5, -1.0], &[2])?);
/// assert!(obs.running_max() > 1.0 && obs.running_max() <= 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmaObserver {
    decay: f32,
    running_max: f32,
    observations: u64,
}

impl EmaObserver {
    /// Creates an observer with the given EMA decay (typically 0.9–0.99).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not in `(0, 1)`.
    pub fn new(decay: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&decay) && decay > 0.0,
            "EMA decay must be in (0, 1), got {decay}"
        );
        Self {
            decay,
            running_max: 0.0,
            observations: 0,
        }
    }

    /// Updates the running maximum with one batch of activations.
    pub fn observe(&mut self, activations: &Tensor) {
        let batch_max = activations.abs_max().unwrap_or(0.0);
        self.observe_value(batch_max);
    }

    /// Updates the running maximum with a precomputed batch maximum.
    pub fn observe_value(&mut self, batch_max: f32) {
        if self.observations == 0 {
            self.running_max = batch_max;
        } else {
            self.running_max = self.decay * self.running_max + (1.0 - self.decay) * batch_max;
        }
        self.observations += 1;
    }

    /// Current EMA of the maximum absolute activation.
    pub fn running_max(&self) -> f32 {
        self.running_max
    }

    /// Number of batches observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Derives activation quantization parameters at the given bit-width
    /// (Eq. 3).
    ///
    /// # Errors
    ///
    /// Returns an error if nothing has been observed yet or the bit-width is
    /// unsupported.
    pub fn quant_params(&self, bits: u32) -> Result<QuantParams> {
        if self.observations == 0 || self.running_max <= 0.0 {
            return Err(QuantError::DegenerateRange {
                abs_max: self.running_max,
            });
        }
        QuantParams::for_activations(self.running_max, bits)
    }
}

/// Observer tracking the global minimum and maximum values seen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    observations: u64,
}

impl MinMaxObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            observations: 0,
        }
    }

    /// Updates the range with one batch of values.
    pub fn observe(&mut self, values: &Tensor) {
        if values.numel() == 0 {
            return;
        }
        self.min = self.min.min(values.min().expect("non-empty"));
        self.max = self.max.max(values.max().expect("non-empty"));
        self.observations += 1;
    }

    /// Observed minimum.
    pub fn min(&self) -> f32 {
        self.min
    }

    /// Observed maximum.
    pub fn max(&self) -> f32 {
        self.max
    }

    /// Largest absolute value observed.
    pub fn abs_max(&self) -> f32 {
        self.min.abs().max(self.max.abs())
    }

    /// Derives symmetric quantization parameters from the observed range.
    ///
    /// # Errors
    ///
    /// Returns an error if nothing has been observed or the range is zero.
    pub fn quant_params(&self, bits: u32) -> Result<QuantParams> {
        if self.observations == 0 || self.abs_max() <= 0.0 {
            return Err(QuantError::DegenerateRange {
                abs_max: if self.observations == 0 {
                    0.0
                } else {
                    self.abs_max()
                },
            });
        }
        QuantParams::for_activations(self.abs_max(), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[data.len()]).unwrap()
    }

    #[test]
    fn ema_first_observation_initialises_directly() {
        let mut obs = EmaObserver::new(0.9);
        obs.observe(&t(&[3.0, -1.0]));
        assert_eq!(obs.running_max(), 3.0);
        assert_eq!(obs.observations(), 1);
    }

    #[test]
    fn ema_smooths_subsequent_observations() {
        let mut obs = EmaObserver::new(0.5);
        obs.observe_value(4.0);
        obs.observe_value(2.0);
        assert!((obs.running_max() - 3.0).abs() < 1e-6);
        obs.observe_value(2.0);
        assert!((obs.running_max() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn ema_converges_to_stationary_max() {
        let mut obs = EmaObserver::new(0.9);
        for _ in 0..200 {
            obs.observe_value(5.0);
        }
        assert!((obs.running_max() - 5.0).abs() < 1e-3);
    }

    #[test]
    fn ema_quant_params_requires_observations() {
        let obs = EmaObserver::new(0.9);
        assert!(obs.quant_params(8).is_err());
        let mut obs = obs;
        obs.observe(&t(&[1.0]));
        assert!(obs.quant_params(8).is_ok());
    }

    #[test]
    #[should_panic(expected = "EMA decay")]
    fn invalid_decay_panics() {
        let _ = EmaObserver::new(1.5);
    }

    #[test]
    fn minmax_tracks_extremes() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&t(&[1.0, -3.0]));
        obs.observe(&t(&[2.0, 0.5]));
        assert_eq!(obs.min(), -3.0);
        assert_eq!(obs.max(), 2.0);
        assert_eq!(obs.abs_max(), 3.0);
        let p = obs.quant_params(8).unwrap();
        assert!((p.scale() - 127.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn minmax_empty_is_error() {
        let obs = MinMaxObserver::new();
        assert!(obs.quant_params(8).is_err());
    }
}
