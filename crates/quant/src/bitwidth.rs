//! Per-part bit-width configuration of FQ-BERT.
//!
//! Table II of the paper ablates which parts of BERT are quantized
//! (weights/activations, scale factors, softmax, layer norm); Fig. 3 sweeps
//! the weight bit-width. [`QuantConfig`] captures both axes: the bit-width of
//! every part and a set of switches controlling which parts are quantized at
//! all.

/// The parts of the model that FQ-BERT quantizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartBits {
    /// Linear-layer and embedding weights.
    Weights,
    /// Activations flowing between layers.
    Activations,
    /// Bias vectors (always 32-bit integers when quantized).
    Biases,
    /// Requantization scale factors.
    Scales,
    /// Softmax numerator and output.
    Softmax,
    /// Layer-normalization parameters and arithmetic.
    LayerNorm,
}

/// Bit-width and enablement configuration for fully quantized BERT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Weight bit-width (4 in the paper's final configuration).
    pub weight_bits: u32,
    /// Activation bit-width (8 in the paper).
    pub activation_bits: u32,
    /// Bias bit-width (32 in the paper).
    pub bias_bits: u32,
    /// Softmax numerator/output bit-width (8 in the paper).
    pub softmax_bits: u32,
    /// Layer-norm parameter bit-width (8 in the paper).
    pub layer_norm_bits: u32,
    /// Whether weight clip thresholds are tuned (CLIP vs NO_CLIP in Fig. 3).
    pub tune_weight_clip: bool,
    /// Quantize weights and activations (first row of Table II).
    pub quantize_weights_activations: bool,
    /// Quantize the requantization scale factors (second row of Table II).
    pub quantize_scales: bool,
    /// Quantize softmax (third row of Table II).
    pub quantize_softmax: bool,
    /// Quantize layer normalization (fourth row of Table II).
    pub quantize_layer_norm: bool,
}

impl QuantConfig {
    /// The paper's final FQ-BERT configuration: 4-bit weights, 8-bit
    /// activations, everything quantized, tuned clipping.
    pub fn fq_bert() -> Self {
        Self {
            weight_bits: 4,
            activation_bits: 8,
            bias_bits: 32,
            softmax_bits: 8,
            layer_norm_bits: 8,
            tune_weight_clip: true,
            quantize_weights_activations: true,
            quantize_scales: true,
            quantize_softmax: true,
            quantize_layer_norm: true,
        }
    }

    /// An 8/8 configuration (Q8BERT-like), used for comparison experiments.
    pub fn w8a8() -> Self {
        Self {
            weight_bits: 8,
            ..Self::fq_bert()
        }
    }

    /// The unquantized FP32 baseline.
    pub fn float_baseline() -> Self {
        Self {
            weight_bits: 32,
            activation_bits: 32,
            bias_bits: 32,
            softmax_bits: 32,
            layer_norm_bits: 32,
            tune_weight_clip: false,
            quantize_weights_activations: false,
            quantize_scales: false,
            quantize_softmax: false,
            quantize_layer_norm: false,
        }
    }

    /// Returns a copy with a different weight bit-width (Fig. 3 sweeps).
    pub fn with_weight_bits(mut self, bits: u32) -> Self {
        self.weight_bits = bits;
        self
    }

    /// Returns a copy with weight-clip tuning switched on or off.
    pub fn with_clip(mut self, tune: bool) -> Self {
        self.tune_weight_clip = tune;
        self
    }

    /// The bit-width assigned to a given part under this configuration.
    pub fn bits(&self, part: PartBits) -> u32 {
        match part {
            PartBits::Weights => self.weight_bits,
            PartBits::Activations => self.activation_bits,
            PartBits::Biases => self.bias_bits,
            PartBits::Scales => 32,
            PartBits::Softmax => self.softmax_bits,
            PartBits::LayerNorm => self.layer_norm_bits,
        }
    }

    /// Whether a given part is quantized at all under this configuration.
    pub fn is_quantized(&self, part: PartBits) -> bool {
        match part {
            PartBits::Weights | PartBits::Activations | PartBits::Biases => {
                self.quantize_weights_activations
            }
            PartBits::Scales => self.quantize_scales,
            PartBits::Softmax => self.quantize_softmax,
            PartBits::LayerNorm => self.quantize_layer_norm,
        }
    }

    /// Weight compression ratio relative to FP32 storage, ignoring metadata
    /// (the paper reports 7.94× for the full model including the parts kept
    /// at higher precision; the exact model-level accounting lives in
    /// `fqbert-core`).
    pub fn raw_weight_compression(&self) -> f64 {
        if self.quantize_weights_activations {
            32.0 / self.weight_bits as f64
        } else {
            1.0
        }
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self::fq_bert()
    }
}

/// Names of the six weight-bearing matrix sites of one encoder layer, in
/// dataflow order (Fig. 5): the Q/K/V projections, the attention output
/// projection, and the two FFN matrices. Indexes match
/// [`LayerBits::as_array`].
pub const LAYER_SITE_NAMES: [&str; LAYER_SITES] = ["q", "k", "v", "attn_output", "ffn1", "ffn2"];

/// Number of weight-bearing matrix sites per encoder layer.
pub const LAYER_SITES: usize = 6;

/// Per-site weight bit-widths of one encoder layer — the unit of mixed
/// precision. A uniform model assigns the same width everywhere; Q-BERT-style
/// mixed precision (PAPERS.md) assigns each site its own width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerBits {
    /// Query projection weight bits.
    pub q: u32,
    /// Key projection weight bits.
    pub k: u32,
    /// Value projection weight bits.
    pub v: u32,
    /// Attention output projection weight bits.
    pub attn_output: u32,
    /// First FFN projection weight bits.
    pub ffn1: u32,
    /// Second FFN projection weight bits.
    pub ffn2: u32,
}

impl LayerBits {
    /// Every site at the same width.
    pub fn uniform(bits: u32) -> Self {
        Self {
            q: bits,
            k: bits,
            v: bits,
            attn_output: bits,
            ffn1: bits,
            ffn2: bits,
        }
    }

    /// The six widths in [`LAYER_SITE_NAMES`] order.
    pub fn as_array(&self) -> [u32; LAYER_SITES] {
        [
            self.q,
            self.k,
            self.v,
            self.attn_output,
            self.ffn1,
            self.ffn2,
        ]
    }

    /// Builds from the six widths in [`LAYER_SITE_NAMES`] order.
    pub fn from_array(bits: [u32; LAYER_SITES]) -> Self {
        Self {
            q: bits[0],
            k: bits[1],
            v: bits[2],
            attn_output: bits[3],
            ffn1: bits[4],
            ffn2: bits[5],
        }
    }

    /// The width of site `index` (in [`LAYER_SITE_NAMES`] order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= LAYER_SITES`.
    pub fn get(&self, index: usize) -> u32 {
        self.as_array()[index]
    }

    /// Sets the width of site `index` (in [`LAYER_SITE_NAMES`] order).
    ///
    /// # Panics
    ///
    /// Panics if `index >= LAYER_SITES`.
    pub fn set(&mut self, index: usize, bits: u32) {
        let mut a = self.as_array();
        a[index] = bits;
        *self = Self::from_array(a);
    }

    /// Smallest width across the six sites.
    pub fn min_bits(&self) -> u32 {
        self.as_array().into_iter().min().unwrap_or(0)
    }

    /// Largest width across the six sites.
    pub fn max_bits(&self) -> u32 {
        self.as_array().into_iter().max().unwrap_or(0)
    }

    /// `Some(bits)` when every site shares one width, `None` when mixed.
    pub fn uniform_bits(&self) -> Option<u32> {
        let a = self.as_array();
        a[1..].iter().all(|&b| b == a[0]).then_some(a[0])
    }

    /// Checks every site is in the representable weight range (2..=8 bits,
    /// the same range [`QuantConfig`] and the accelerator accept).
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range site.
    pub fn validate(&self) -> Result<(), String> {
        for (name, bits) in LAYER_SITE_NAMES.iter().zip(self.as_array()) {
            if !(2..=8).contains(&bits) {
                return Err(format!(
                    "site `{name}` has weight bits {bits}, expected 2..=8"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fq_bert_defaults_match_paper() {
        let cfg = QuantConfig::fq_bert();
        assert_eq!(cfg.weight_bits, 4);
        assert_eq!(cfg.activation_bits, 8);
        assert_eq!(cfg.bias_bits, 32);
        assert_eq!(cfg.softmax_bits, 8);
        assert_eq!(cfg.layer_norm_bits, 8);
        assert!(cfg.tune_weight_clip);
        assert!(cfg.is_quantized(PartBits::Softmax));
        assert_eq!(QuantConfig::default(), cfg);
    }

    #[test]
    fn float_baseline_disables_everything() {
        let cfg = QuantConfig::float_baseline();
        for part in [
            PartBits::Weights,
            PartBits::Activations,
            PartBits::Biases,
            PartBits::Scales,
            PartBits::Softmax,
            PartBits::LayerNorm,
        ] {
            assert!(!cfg.is_quantized(part));
        }
        assert_eq!(cfg.raw_weight_compression(), 1.0);
    }

    #[test]
    fn bit_width_sweep_builder() {
        let cfg = QuantConfig::fq_bert().with_weight_bits(2).with_clip(false);
        assert_eq!(cfg.bits(PartBits::Weights), 2);
        assert!(!cfg.tune_weight_clip);
        assert_eq!(cfg.raw_weight_compression(), 16.0);
    }

    #[test]
    fn layer_bits_round_trip_and_uniformity() {
        let uniform = LayerBits::uniform(4);
        assert_eq!(uniform.uniform_bits(), Some(4));
        assert_eq!(uniform.min_bits(), 4);
        assert_eq!(uniform.max_bits(), 4);
        assert!(uniform.validate().is_ok());

        let mut mixed = uniform;
        mixed.set(4, 8); // ffn1 → w8
        assert_eq!(mixed.ffn1, 8);
        assert_eq!(mixed.get(4), 8);
        assert_eq!(mixed.uniform_bits(), None);
        assert_eq!(mixed.min_bits(), 4);
        assert_eq!(mixed.max_bits(), 8);
        assert_eq!(LayerBits::from_array(mixed.as_array()), mixed);
    }

    #[test]
    fn layer_bits_validation_rejects_out_of_range_sites() {
        let mut bits = LayerBits::uniform(4);
        bits.k = 1;
        let err = bits
            .validate()
            .expect_err("1-bit weights are not supported");
        assert!(err.contains("`k`"), "{err}");
        bits.k = 16;
        assert!(bits.validate().is_err());
    }

    #[test]
    fn w8a8_profile() {
        let cfg = QuantConfig::w8a8();
        assert_eq!(cfg.weight_bits, 8);
        assert_eq!(cfg.activation_bits, 8);
        assert_eq!(cfg.raw_weight_compression(), 4.0);
    }
}
