//! The metric primitives: [`Counter`], [`Gauge`], [`Histogram`] and the
//! scoped [`Timer`].
//!
//! Everything here is lock-free: recording touches only relaxed atomics, so
//! instrumentation costs a handful of uncontended fetch-adds per event and
//! near zero when idle. Histograms use fixed log2 buckets (bucket 0 holds
//! exactly the value 0; bucket *i* ≥ 1 holds `2^(i-1) ..= 2^i - 1`), which
//! makes `record` branch-free and quantile estimation a cumulative walk
//! with linear interpolation inside the landing bucket, clamped to the
//! observed min/max — exact whenever all samples share one value.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, in-flight work,
/// high-water marks via [`Gauge::set_max`]).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (which may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `value` if it is larger (a high-water mark).
    pub fn set_max(&self, value: i64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A string-valued annotation exported alongside the numeric metrics:
/// which GEMM kernel the engine selected, a build identifier, an active
/// config name. Set-once-or-rarely, never on a per-request path, so a
/// short mutex (poison-recovering, consistent with the crate's panic-free
/// bar) is the right tool rather than atomics.
#[derive(Debug, Default)]
pub struct Label {
    value: Mutex<String>,
}

impl Label {
    /// An empty label.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the label text.
    pub fn set(&self, value: impl Into<String>) {
        *self.value.lock().unwrap_or_else(PoisonError::into_inner) = value.into();
    }

    /// The current label text (empty until first `set`).
    pub fn get(&self) -> String {
        self.value
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Number of log2 buckets: one for zero plus one per bit of a `u64`, so
/// every value has a bucket and `record` never branches on range.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index `value` lands in: 0 for 0, else `floor(log2(v)) + 1`.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive `(lower, upper)` value range of bucket `index`.
/// Out-of-range indices clamp to the last bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        // upper = 2^i - 1, computed as 2^(i-1) + (2^(i-1) - 1) so the
        // top bucket (i = 64) lands on u64::MAX without overflowing.
        i if i < NUM_BUCKETS => (1u64 << (i - 1), (1u64 << (i - 1)) + ((1u64 << (i - 1)) - 1)),
        _ => (1u64 << 63, u64::MAX),
    }
}

/// A fixed log2-bucket histogram of `u64` samples (typically microseconds).
///
/// Recording is lock-free and allocation-free; [`Histogram::snapshot`]
/// produces an immutable [`HistogramSnapshot`] for quantile estimation and
/// export. Under concurrent recording a snapshot is a near-point-in-time
/// view: each atomic is read once, so derived fields may disagree by the
/// handful of events that landed mid-read — harmless for monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest recorded value; `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records its elapsed microseconds into
    /// this histogram when dropped (or explicitly observed).
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            histogram: self,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An immutable view of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(index, bucket)| {
                    let n = bucket.load(Ordering::Relaxed);
                    (n > 0).then(|| {
                        let (lower, upper) = bucket_bounds(index);
                        BucketCount {
                            lower,
                            upper,
                            count: n,
                        }
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value the bucket covers (inclusive).
    pub lower: u64,
    /// Largest value the bucket covers (inclusive).
    pub upper: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

/// An immutable histogram view: totals plus the non-empty buckets, with
/// quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping only after `u64::MAX` total).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// The non-empty buckets, in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// landing bucket, clamped to the observed `[min, max]`. Exact when
    /// every sample shares one value; otherwise within the landing
    /// bucket's width (< 2x) of the true order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the order statistic we estimate, in 1..=count.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for bucket in &self.buckets {
            if cumulative + bucket.count >= rank {
                let into = (rank - cumulative) as f64 / bucket.count as f64;
                let lower = bucket.lower as f64;
                let upper = bucket.upper as f64;
                let estimate = lower + into * (upper - lower);
                return estimate.clamp(self.min as f64, self.max as f64);
            }
            cumulative += bucket.count;
        }
        self.max as f64
    }

    /// The median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// The 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A scoped span: records the elapsed time into its histogram (as whole
/// microseconds) when dropped, so early returns and error paths are timed
/// exactly like successes. [`Timer::observe`] stops it explicitly and
/// returns the elapsed duration; [`Timer::discard`] drops it unrecorded.
#[derive(Debug)]
pub struct Timer<'a> {
    histogram: &'a Histogram,
    start: Instant,
    armed: bool,
}

impl Timer<'_> {
    /// Stops the timer, records the span and returns the elapsed time.
    pub fn observe(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.histogram.record_duration(elapsed);
        self.armed = false;
        elapsed
    }

    /// Abandons the span without recording it.
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.histogram.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_gauges_swing() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);

        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        gauge.set(-5);
        assert_eq!(gauge.get(), -5);
        gauge.set_max(3);
        gauge.set_max(-100);
        assert_eq!(gauge.get(), 3);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // value -> expected bucket index
        for (value, index) in [
            (0u64, 0usize),
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 3),
            (7, 3),
            (8, 4),
            (1023, 10),
            (1024, 11),
            (1025, 11),
            (u64::MAX, 64),
        ] {
            assert_eq!(bucket_index(value), index, "value {value}");
            let (lower, upper) = bucket_bounds(index);
            assert!(
                lower <= value && value <= upper,
                "value {value} outside bucket {index} bounds [{lower}, {upper}]"
            );
        }
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1 << 63, u64::MAX));
        // Adjacent buckets tile the value range without gaps or overlap.
        for index in 0..NUM_BUCKETS - 1 {
            let (_, upper) = bucket_bounds(index);
            let (next_lower, _) = bucket_bounds(index + 1);
            assert_eq!(next_lower, upper + 1, "gap after bucket {index}");
        }
    }

    #[test]
    fn histogram_records_into_the_right_buckets() {
        let hist = Histogram::new();
        for value in [0u64, 1, 1, 2, 3, 900, 1024] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1931);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        let by_lower: Vec<(u64, u64)> = snap.buckets.iter().map(|b| (b.lower, b.count)).collect();
        assert_eq!(by_lower, vec![(0, 1), (1, 2), (2, 2), (512, 1), (1024, 1)]);
    }

    #[test]
    fn quantiles_are_exact_for_constant_samples() {
        let hist = Histogram::new();
        for _ in 0..1000 {
            hist.record(777);
        }
        let snap = hist.snapshot();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 777.0, "q={q}");
        }
    }

    #[test]
    fn quantiles_track_uniform_data_within_a_bucket_width() {
        // 1..=1000 uniformly: the true p50 is 500, p99 is 990. Log2 buckets
        // bound the estimate to the landing bucket, so the estimate must be
        // within a factor of two of truth and ordered.
        let hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let p50 = snap.p50();
        let p95 = snap.p95();
        let p99 = snap.p99();
        assert!((250.0..=1000.0).contains(&p50), "p50={p50}");
        assert!((475.0..=1000.0).contains(&p95), "p95={p95}");
        assert!((495.0..=1000.0).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(snap.quantile(0.0), 1.0);
        assert_eq!(snap.quantile(1.0), 1000.0);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshots_are_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.p99(), 0.0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let counter = Arc::new(Counter::new());
        let hist = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let counter = Arc::clone(&counter);
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        counter.inc();
                        hist.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("recorder thread");
        }
        assert_eq!(counter.get(), 8000);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 8000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 7999);
    }

    #[test]
    fn timers_record_on_drop_and_observe() {
        let hist = Histogram::new();
        {
            let _span = hist.start_timer();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(hist.count(), 1);
        let elapsed = {
            let span = hist.start_timer();
            std::thread::sleep(Duration::from_millis(2));
            span.observe()
        };
        assert!(elapsed >= Duration::from_millis(2));
        assert_eq!(hist.count(), 2);
        hist.start_timer().discard();
        assert_eq!(hist.count(), 2);
        let snap = hist.snapshot();
        assert!(snap.min >= 1000, "recorded microseconds, got {}", snap.min);
    }
}
