//! Offline, dependency-free process metrics for the fqbert serving stack.
//!
//! The crate provides five primitives and a registry:
//!
//! - [`Counter`] — monotonically increasing `u64` (requests, errors, sheds);
//! - [`Gauge`] — signed instantaneous level (queue depth, in-flight shards);
//! - [`Histogram`] — fixed log2-bucket value distribution with
//!   p50/p95/p99 estimation, sized for microsecond latencies but exact for
//!   any `u64` stream's count/sum/min/max;
//! - [`Timer`] — a scoped span that records its elapsed microseconds into a
//!   histogram on drop (or explicitly via [`Timer::observe`]);
//! - [`Label`] — a string-valued annotation (selected GEMM kernel, build
//!   id), set rarely and exported verbatim;
//! - [`Registry`] — a named get-or-create map of the above, exported as a
//!   consistent [`Snapshot`] renderable to one line of JSON.
//!
//! Everything on the record path is a handful of `Relaxed` atomic adds —
//! no locks, no allocation, no syscalls — so instrumentation stays cheap
//! enough to leave on in benchmarks. The registry itself takes a mutex only
//! to look up or create metrics; callers cache the returned `Arc`s.
//! Consistent with the serving crates' invariants, nothing in this crate
//! panics on any input (fqlint rules R3/R4 are enforced over this tree).
//!
//! Naming convention: dot-separated lowercase paths, unit-suffixed where it
//! matters (`model.sst2.queue.wait_us`, `server.connections`). [`Scope`]
//! carries a prefix so components name metrics locally and compose
//! hierarchically; [`Snapshot::merge_prefixed`] folds private registries
//! (e.g. one per engine) into a single wire snapshot.

mod metrics;
mod registry;

pub use metrics::{
    bucket_bounds, bucket_index, BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, Label,
    Timer, NUM_BUCKETS,
};
pub use registry::{Registry, Scope, Snapshot};
