//! The named-metric [`Registry`], hierarchical [`Scope`]s and the
//! exportable [`Snapshot`].
//!
//! The registry's mutex guards only metric *creation and lookup*: callers
//! hold the returned `Arc` and record through lock-free atomics, so the
//! hot path never takes a lock. Snapshots read every metric once and come
//! back in deterministic (sorted-name) order, so two snapshots of the same
//! quiescent registry render byte-identical JSON.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Label};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks the registry map, recovering from poisoning: every locked section
/// leaves the map structurally valid, so a panicking registrant must not
/// take metrics away from every other thread.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Label(Arc<Label>),
}

/// A name → metric map shared by everything that instruments one process
/// (or one server).
///
/// Metric names are dot-separated lowercase paths (`model.sst2.queue.wait_us`);
/// the convention is `<scope>.<metric>[_<unit>]` with `_us` marking
/// microsecond histograms. [`Registry::counter`] and friends get-or-create,
/// so any component may name a metric without coordinating creation order.
/// Asking for an existing name with a *different* metric type returns a
/// fresh detached instance (recordable, but invisible to snapshots) rather
/// than panicking — name collisions are a bug the snapshot makes visible by
/// omission, not a crash.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = lock_clean(&self.metrics);
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(counter) => Arc::clone(counter),
            _ => Arc::new(Counter::new()),
        }
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = lock_clean(&self.metrics);
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = lock_clean(&self.metrics);
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// The label registered under `name`, created on first use.
    pub fn label(&self, name: &str) -> Arc<Label> {
        let mut metrics = lock_clean(&self.metrics);
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Label(Arc::new(Label::new())));
        match entry {
            Metric::Label(label) => Arc::clone(label),
            _ => Arc::new(Label::new()),
        }
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        lock_clean(&self.metrics).keys().cloned().collect()
    }

    /// A consistent view of every registered metric, in sorted-name order.
    pub fn snapshot(&self) -> Snapshot {
        // Clone the Arcs out so metric reads happen outside the lock.
        let metrics: Vec<(String, Metric)> = lock_clean(&self.metrics)
            .iter()
            .map(|(name, metric)| (name.clone(), metric.clone()))
            .collect();
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics {
            match metric {
                Metric::Counter(counter) => snapshot.counters.push((name, counter.get())),
                Metric::Gauge(gauge) => snapshot.gauges.push((name, gauge.get())),
                Metric::Histogram(histogram) => {
                    snapshot.histograms.push((name, histogram.snapshot()));
                }
                Metric::Label(label) => snapshot.labels.push((name, label.get())),
            }
        }
        snapshot
    }
}

/// A name prefix over a shared registry, so one component can hand
/// sub-components their own namespace (`model.sst2` → `model.sst2.queue.*`)
/// without threading strings everywhere.
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Arc<Registry>,
    prefix: String,
}

impl Scope {
    /// A scope over `registry`; an empty `prefix` scopes nothing.
    pub fn new(registry: Arc<Registry>, prefix: impl Into<String>) -> Self {
        Self {
            registry,
            prefix: prefix.into(),
        }
    }

    /// A scope over a fresh private registry — for components used
    /// standalone, outside any shared telemetry.
    pub fn detached(prefix: impl Into<String>) -> Self {
        Self::new(Arc::new(Registry::new()), prefix)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A child scope: `self.prefix + "." + name`.
    pub fn child(&self, name: &str) -> Scope {
        Scope {
            registry: Arc::clone(&self.registry),
            prefix: self.scoped(name),
        }
    }

    /// The full metric name `prefix.name` (or bare `name` when unscoped).
    pub fn scoped(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// The counter `prefix.name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.scoped(name))
    }

    /// The gauge `prefix.name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.scoped(name))
    }

    /// The histogram `prefix.name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.scoped(name))
    }

    /// The label `prefix.name`, created on first use.
    pub fn label(&self, name: &str) -> Arc<Label> {
        self.registry.label(&self.scoped(name))
    }
}

/// A point-in-time export of a registry: every metric by name, sorted, with
/// histograms pre-summarised for quantile queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, count)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, view)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// `(name, text)` for every string-valued label.
    pub labels: Vec<(String, String)>,
}

impl Snapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// The label named `name`, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Folds `other`'s metrics in with every name prefixed by
    /// `prefix.` — how a server merges per-engine private registries into
    /// one wire snapshot. Re-sorts so rendering stays deterministic.
    pub fn merge_prefixed(&mut self, other: &Snapshot, prefix: &str) {
        let scoped = |name: &str| -> String {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        for (name, value) in &other.counters {
            self.counters.push((scoped(name), *value));
        }
        for (name, value) in &other.gauges {
            self.gauges.push((scoped(name), *value));
        }
        for (name, view) in &other.histograms {
            self.histograms.push((scoped(name), view.clone()));
        }
        for (name, text) in &other.labels {
            self.labels.push((scoped(name), text.clone()));
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self.labels.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Renders the snapshot as one line of JSON:
    ///
    /// ```json
    /// {"counters":{"name":1},"gauges":{"name":-2},
    ///  "histograms":{"name":{"count":3,"sum":30,"min":9,"max":11,
    ///    "mean":10.0,"p50":10.0,"p95":11.0,"p99":11.0,
    ///    "buckets":[[8,15,3]]}},"labels":{"name":"text"}}
    /// ```
    ///
    /// Buckets are `[lower, upper, count]` triples of the non-empty log2
    /// buckets. The output is deterministic (sorted names) and contains no
    /// raw newlines, so it drops straight into a line-delimited protocol.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_key(name, &mut out);
            let _ = write!(out, "{value}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_key(name, &mut out);
            let _ = write!(out, "{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, view)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_key(name, &mut out);
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                view.count,
                view.sum,
                view.min,
                view.max,
                finite(view.mean()),
                finite(view.p50()),
                finite(view.p95()),
                finite(view.p99()),
            );
            for (j, bucket) in view.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{},{}]", bucket.lower, bucket.upper, bucket.count);
            }
            out.push_str("]}");
        }
        out.push_str("},\"labels\":{");
        for (i, (name, text)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_key(name, &mut out);
            render_string(text, &mut out);
        }
        out.push_str("}}");
        out
    }
}

/// A finite JSON-safe rendering of `value` (NaN/inf become 0 — they cannot
/// arise from histogram math, but JSON must never see them).
fn finite(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// Renders `"name":` with minimal string escaping (metric names are
/// code-chosen identifiers, but a stray quote must not corrupt the frame).
fn render_key(name: &str, out: &mut String) {
    escape_into(name, out);
    out.push(':');
}

/// Renders a label value as a JSON string with the same minimal escaping.
fn render_string(text: &str, out: &mut String) {
    escape_into(text, out);
}

fn escape_into(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let registry = Registry::new();
        registry.counter("requests").add(3);
        registry.counter("requests").add(4);
        assert_eq!(registry.counter("requests").get(), 7);
        registry.gauge("depth").set(9);
        assert_eq!(registry.gauge("depth").get(), 9);
        registry.histogram("wait_us").record(5);
        assert_eq!(registry.histogram("wait_us").count(), 1);
        registry.label("kernel").set("avx2");
        assert_eq!(registry.label("kernel").get(), "avx2");
        assert_eq!(
            registry.names(),
            vec![
                "depth".to_string(),
                "kernel".into(),
                "requests".into(),
                "wait_us".into()
            ]
        );
    }

    #[test]
    fn type_clashes_yield_detached_metrics_not_panics() {
        let registry = Registry::new();
        registry.counter("x").inc();
        // Asking for `x` as a gauge must not panic or corrupt the counter.
        registry.gauge("x").set(99);
        registry.histogram("x").record(1);
        registry.label("x").set("detached");
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("x"), Some(1));
        assert_eq!(snapshot.gauge("x"), None);
        assert!(snapshot.histogram("x").is_none());
        assert_eq!(snapshot.label("x"), None);
    }

    #[test]
    fn scopes_prefix_names_hierarchically() {
        let registry = Arc::new(Registry::new());
        let root = Scope::new(Arc::clone(&registry), "");
        assert_eq!(root.scoped("requests"), "requests");
        let model = Scope::new(Arc::clone(&registry), "model.sst2");
        model.counter("requests").inc();
        let queue = model.child("queue");
        queue.histogram("wait_us").record(10);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("model.sst2.requests"), Some(1));
        assert_eq!(
            snapshot
                .histogram("model.sst2.queue.wait_us")
                .map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn snapshots_merge_with_prefixes_and_stay_sorted() {
        let server = Registry::new();
        server.counter("server.requests").add(5);
        let engine = Registry::new();
        engine.histogram("engine.classify_us").record(100);
        engine.counter("engine.calls").inc();
        engine.label("engine.kernel").set("avx2");
        let mut merged = server.snapshot();
        merged.merge_prefixed(&engine.snapshot(), "model.sst2");
        assert_eq!(merged.counter("server.requests"), Some(5));
        assert_eq!(merged.counter("model.sst2.engine.calls"), Some(1));
        assert_eq!(merged.label("model.sst2.engine.kernel"), Some("avx2"));
        assert_eq!(
            merged
                .histogram("model.sst2.engine.classify_us")
                .map(|h| h.count),
            Some(1)
        );
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_json_is_deterministic_single_line() {
        let registry = Registry::new();
        registry.counter("b").add(2);
        registry.counter("a").add(1);
        registry.gauge("depth").set(-3);
        let hist = registry.histogram("lat_us");
        for v in [9u64, 10, 11] {
            hist.record(v);
        }
        registry.label("kernel").set("avx2");
        let json = registry.snapshot().to_json();
        assert!(!json.contains('\n'));
        assert_eq!(json, registry.snapshot().to_json());
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"b\":2"));
        assert!(json.contains("\"depth\":-3"));
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("\"buckets\":[[8,15,3]]"));
        assert!(json.contains("\"kernel\":\"avx2\""));
        // Counters render before gauges before histograms before labels.
        let (ci, gi, hi, li) = (
            json.find("counters").expect("counters"),
            json.find("gauges").expect("gauges"),
            json.find("histograms").expect("histograms"),
            json.find("labels").expect("labels"),
        );
        assert!(ci < gi && gi < hi && hi < li);
    }

    #[test]
    fn label_values_are_escaped_in_json() {
        let registry = Registry::new();
        registry.label("build").set("a\"b\\c\nd");
        let json = registry.snapshot().to_json();
        assert!(json.contains("\"build\":\"a\\\"b\\\\c\\u000ad\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn concurrent_registration_and_snapshotting_hold_up() {
        let registry = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        registry.counter("shared").inc();
                        registry.histogram("h").record(i);
                        if i % 100 == 0 {
                            let _ = registry.snapshot();
                        }
                        registry.counter(&format!("thread.{t}")).inc();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("worker");
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("shared"), Some(4000));
        assert_eq!(snapshot.histogram("h").map(|h| h.count), Some(4000));
        for t in 0..8 {
            assert_eq!(snapshot.counter(&format!("thread.{t}")), Some(500));
        }
    }
}
