//! Property tests proving the BIM datapath and PE pipeline bit-exact.

use fqbert_accel::bim::{exact_dot, Bim};
use fqbert_accel::config::BimVariant;
use fqbert_accel::pe::{OperandMode, ProcessingElement, ProcessingUnit};
use fqbert_quant::Requantizer;
use proptest::prelude::*;

fn i4() -> impl Strategy<Value = i8> {
    -8i8..=7
}

fn i8_full() -> impl Strategy<Value = i8> {
    -128i8..=127
}

proptest! {
    #[test]
    fn bim_8x4_is_exact(
        len in 1usize..200,
        m_half in 1usize..16,
        seed_a in proptest::collection::vec(i8_full(), 1..200),
        seed_w in proptest::collection::vec(i4(), 1..200),
    ) {
        let a: Vec<i8> = (0..len).map(|i| seed_a[i % seed_a.len()]).collect();
        let w: Vec<i8> = (0..len).map(|i| seed_w[i % seed_w.len()]).collect();
        for variant in [BimVariant::TypeA, BimVariant::TypeB] {
            let bim = Bim::new(2 * m_half, variant);
            let (sum, cycles) = bim.dot_8x4(&a, &w);
            prop_assert_eq!(sum, exact_dot(&a, &w));
            prop_assert_eq!(cycles, (len as u64).div_ceil(2 * m_half as u64));
        }
    }

    #[test]
    fn bim_8x8_both_variants_are_exact_and_identical(
        len in 1usize..200,
        m_half in 1usize..16,
        seed_a in proptest::collection::vec(i8_full(), 1..200),
        seed_w in proptest::collection::vec(i8_full(), 1..200),
    ) {
        let a: Vec<i8> = (0..len).map(|i| seed_a[i % seed_a.len()]).collect();
        let w: Vec<i8> = (0..len).map(|i| seed_w[i % seed_w.len()]).collect();
        let type_a = Bim::new(2 * m_half, BimVariant::TypeA).dot_8x8(&a, &w);
        let type_b = Bim::new(2 * m_half, BimVariant::TypeB).dot_8x8(&a, &w);
        prop_assert_eq!(type_a.0, exact_dot(&a, &w));
        prop_assert_eq!(type_b.0, type_a.0);
        prop_assert_eq!(type_a.1, type_b.1);
    }

    #[test]
    fn pe_requantized_output_matches_reference(
        scale_milli in 1u32..2000,
        bias in -10_000i32..10_000,
        a in proptest::collection::vec(i8_full(), 1..128),
        w in proptest::collection::vec(i4(), 1..128),
    ) {
        let len = a.len().min(w.len());
        let a = &a[..len];
        let w = &w[..len];
        let scale = scale_milli as f64 / 1000.0;
        let requant = Requantizer::from_scale(scale, 8).unwrap();
        let pe = ProcessingElement::new(8, BimVariant::TypeA);
        let out = pe.dot(a, w, bias, &requant, OperandMode::Act8Weight4);
        let reference = requant.apply(exact_dot(a, w) + i64::from(bias)).clamp(-127, 127) as i8;
        prop_assert_eq!(out.code, reference);
    }

    #[test]
    fn pu_matvec_matches_reference_engine(
        rows in 1usize..12,
        cols in 1usize..64,
        n_pes in 1usize..8,
        seed in proptest::collection::vec(i8_full(), 1..64),
    ) {
        let x: Vec<i8> = (0..cols).map(|i| seed[i % seed.len()]).collect();
        let weights: Vec<Vec<i8>> = (0..rows)
            .map(|r| (0..cols).map(|c| ((r * 5 + c * 3) % 15) as i8 - 7).collect())
            .collect();
        let biases: Vec<i32> = (0..rows as i32).map(|r| r * 11 - 20).collect();
        let requant = Requantizer::from_scale(0.03, 8).unwrap();
        let pu = ProcessingUnit::new(n_pes, 8, BimVariant::TypeA);
        let (codes, _cycles) = pu.matvec(&x, &weights, &biases, &requant, OperandMode::Act8Weight4);
        for (r, row) in weights.iter().enumerate() {
            let expected = requant
                .apply(exact_dot(&x, row) + i64::from(biases[r]))
                .clamp(-127, 127) as i8;
            prop_assert_eq!(codes[r], expected);
        }
    }
}
