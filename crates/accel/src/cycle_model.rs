//! End-to-end latency model of the accelerator (Tables III and IV).
//!
//! Combines the per-layer schedule from [`crate::scheduler`] with the number
//! of encoder layers and the fixed per-inference overheads (activation
//! transfer between the CPU and the FPGA, initial weight prefetch of the
//! first tile) to produce the latency figures the paper reports.

use crate::config::AcceleratorConfig;
use crate::dataflow::EncoderShape;
use crate::memory::DdrModel;
use crate::scheduler::{ScheduleTrace, Scheduler};

/// Per-component cycle breakdown of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Cycles the PE array is busy across all layers.
    pub pe_cycles: u64,
    /// Cycles spent by the softmax core (overlapped).
    pub softmax_cycles: u64,
    /// Cycles spent by the LN core (overlapped).
    pub ln_cycles: u64,
    /// DMA cycles streaming weights (overlapped).
    pub dma_cycles: u64,
    /// PE stall cycles waiting for weights.
    pub dma_stall_cycles: u64,
    /// Cycles moving activations between host and FPGA.
    pub host_io_cycles: u64,
}

/// Latency estimate for one full inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Critical-path cycles of the whole inference.
    pub total_cycles: u64,
    /// Latency in milliseconds at the configured clock.
    pub latency_ms: f64,
    /// Per-layer critical path cycles.
    pub cycles_per_layer: u64,
    /// Number of encoder layers.
    pub layers: usize,
    /// Component breakdown.
    pub breakdown: LatencyBreakdown,
    /// Schedule trace of a single representative layer (for Fig. 5).
    pub layer_trace: ScheduleTrace,
    /// Effective throughput in giga-MACs per second.
    pub effective_gmacs_per_sec: f64,
}

impl LatencyReport {
    /// Frames (inferences) per second implied by the latency.
    pub fn fps(&self) -> f64 {
        1e3 / self.latency_ms
    }
}

/// Estimates the inference latency of a BERT encoder stack of `layers` layers
/// of the given shape on the accelerator configuration.
pub fn estimate_latency(
    config: &AcceleratorConfig,
    shape: &EncoderShape,
    layers: usize,
) -> LatencyReport {
    let scheduler = Scheduler::new(config.clone());
    let trace = scheduler.schedule_layer(shape);
    let ddr = DdrModel::from_config(config);

    // Host ↔ FPGA activation transfer: the embedding output goes in once and
    // the final hidden state comes back once (int8 activations).
    let act_bytes = (shape.seq_len * shape.hidden) as u64;
    let host_io_cycles = 2 * ddr.transfer_cycles(act_bytes, 1);

    // In steady state consecutive layers overlap their trailing softmax/LN
    // work with the next layer's matrix stages, so the per-layer period is
    // the PE critical path; the trailing non-PE work is paid once at the end.
    let cycles_per_layer = trace.pe_critical_cycles;
    let trailing_cycles = trace.total_cycles - trace.pe_critical_cycles;
    let total_cycles = cycles_per_layer * layers as u64 + trailing_cycles + host_io_cycles;
    let latency_ms = total_cycles as f64 / config.frequency_hz * 1e3;

    let macs_per_layer: u64 = crate::dataflow::layer_macs(shape);
    let effective_gmacs_per_sec =
        (macs_per_layer * layers as u64) as f64 / (latency_ms / 1e3) / 1e9;

    LatencyReport {
        total_cycles,
        latency_ms,
        cycles_per_layer,
        layers,
        breakdown: LatencyBreakdown {
            pe_cycles: trace.pe_busy_cycles * layers as u64,
            softmax_cycles: trace.softmax_cycles * layers as u64,
            ln_cycles: trace.ln_cycles * layers as u64,
            dma_cycles: trace.dma_cycles * layers as u64,
            dma_stall_cycles: trace.dma_stall_cycles * layers as u64,
            host_io_cycles,
        },
        layer_trace: trace,
        effective_gmacs_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_base_latency(config: &AcceleratorConfig) -> f64 {
        estimate_latency(config, &EncoderShape::bert_base(), 12).latency_ms
    }

    #[test]
    fn zcu102_n8_m16_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu102_n8_m16());
        assert!(
            (ms - 43.89).abs() / 43.89 < 0.05,
            "ZCU102 (8,16) latency {ms} ms deviates from 43.89 ms"
        );
    }

    #[test]
    fn zcu102_n16_m8_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu102_n16_m8());
        assert!(
            (ms - 45.35).abs() / 45.35 < 0.05,
            "ZCU102 (16,8) latency {ms} ms deviates from 45.35 ms"
        );
    }

    #[test]
    fn zcu111_latency_matches_table_iii() {
        let ms = bert_base_latency(&AcceleratorConfig::zcu111_n16_m16());
        assert!(
            (ms - 23.79).abs() / 23.79 < 0.05,
            "ZCU111 latency {ms} ms deviates from 23.79 ms"
        );
    }

    #[test]
    fn ordering_of_configurations_is_preserved() {
        let a = bert_base_latency(&AcceleratorConfig::zcu102_n8_m16());
        let b = bert_base_latency(&AcceleratorConfig::zcu102_n16_m8());
        let c = bert_base_latency(&AcceleratorConfig::zcu111_n16_m16());
        assert!(a < b, "(8,16) must beat (16,8): {a} vs {b}");
        assert!(c < a, "ZCU111 must beat ZCU102: {c} vs {a}");
    }

    #[test]
    fn latency_scales_linearly_with_layers() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let shape = EncoderShape::bert_base();
        let six = estimate_latency(&cfg, &shape, 6);
        let twelve = estimate_latency(&cfg, &shape, 12);
        let ratio = twelve.latency_ms / six.latency_ms;
        assert!((1.9..2.1).contains(&ratio));
    }

    #[test]
    fn report_breakdown_is_consistent() {
        let report = estimate_latency(
            &AcceleratorConfig::zcu111_n16_m16(),
            &EncoderShape::bert_base(),
            12,
        );
        assert_eq!(report.layers, 12);
        assert!(report.fps() > 0.0);
        assert!(report.effective_gmacs_per_sec > 100.0);
        assert!(report.breakdown.pe_cycles <= report.total_cycles);
        assert_eq!(report.breakdown.dma_stall_cycles, 0);
    }

    #[test]
    fn shorter_sequences_are_faster() {
        let cfg = AcceleratorConfig::zcu102_n8_m16();
        let mut short_shape = EncoderShape::bert_base();
        short_shape.seq_len = 64;
        let short = estimate_latency(&cfg, &short_shape, 12);
        let long = estimate_latency(&cfg, &EncoderShape::bert_base(), 12);
        assert!(short.latency_ms < long.latency_ms);
    }
}
